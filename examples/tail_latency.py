#!/usr/bin/env python3
"""The killer microsecond as a tail-latency story.

The paper's metric is throughput (work IPC), but the phrase "killer
microsecond" comes from datacenter tail-latency concerns.  This
example measures the *thread-visible* access latency distribution --
from dev_access issue to data ready -- under each mechanism, showing
where each one's time actually goes:

* on-demand: every access eats the full device latency;
* prefetch: the scheduler round hides most of it, but when thread
  count is short of the latency-hiding requirement, the residual shows
  up as a fat tail on the load;
* software queues: the protocol (descriptor fetch, response writes,
  polling) inflates even the median well past the device's 1 us.

Run:  python examples/tail_latency.py
"""

from repro import AccessMechanism, DeviceConfig, MicrobenchSpec, SystemConfig
from repro.host.system import System
from repro.units import us
from repro.workloads.microbench import install_microbench


def measure(mechanism, threads):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=200), threads)
    system.run_window(us(30), us(120))
    return system.access_latency


def main() -> None:
    print("Thread-visible dev_access latency at 1 us device latency")
    print(f"{'configuration':28s} {'n':>6s} {'p50':>9s} {'p99':>9s} {'max':>9s}")
    for mechanism, threads in (
        (AccessMechanism.ON_DEMAND, 1),
        (AccessMechanism.PREFETCH, 4),
        (AccessMechanism.PREFETCH, 10),
        (AccessMechanism.PREFETCH, 16),
        (AccessMechanism.SOFTWARE_QUEUE, 16),
        (AccessMechanism.KERNEL_QUEUE, 16),
    ):
        stat = measure(mechanism, threads)
        label = f"{mechanism.value}, {threads} threads"
        print(
            f"{label:28s} {stat.count:>6d}"
            f" {stat.percentile(50) / 1e6:>7.2f}us"
            f" {stat.percentile(99) / 1e6:>7.2f}us"
            f" {stat.maximum / 1e6:>7.2f}us"
        )
    print()
    print("Note how prefetch's *observed* latency stays ~1 us -- the win is")
    print("that the thread is descheduled for almost all of it, so the core")
    print("retires other threads' work instead of stalling.")


if __name__ == "__main__":
    main()
