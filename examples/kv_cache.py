#!/usr/bin/env python3
"""A Memcached-style key-value cache backed by microsecond storage.

Builds a chained hash table in the emulated device, runs GET streams
through each access mechanism, verifies every returned value against
the deterministic value function, and compares per-GET latency.

Run:  python examples/kv_cache.py
"""

from repro import AccessMechanism, BackingStore, DeviceConfig, SystemConfig
from repro.host.system import System
from repro.units import to_ns
from repro.workloads.memcached import (
    MemcachedParams,
    install_memcached,
    make_get_keys,
    value_word,
)


def run_gets(mechanism, backing, threads):
    params = MemcachedParams(items=2048, buckets=2048, gets_per_thread=32)
    config = SystemConfig(
        mechanism=mechanism,
        backing=backing,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    results = install_memcached(system, params, threads)
    ticks = system.run_to_completion(limit_ticks=10**12)

    checked = 0
    for (core, slot), values in results.items():
        keys = make_get_keys(params, thread_seed=core * 1000 + slot)
        for key, value in zip(keys, values):
            assert value is not None, f"GET miss for populated key {key}"
            for line, word in enumerate(value):
                assert word == value_word(key, line * 8), "value corrupted"
            checked += 1
    total_gets = sum(len(values) for values in results.values())
    return ticks / total_gets, checked


def main() -> None:
    print(f"{'configuration':42s} {'ns / GET':>10s} {'verified':>9s}")
    baseline_ns, checked = run_gets(
        AccessMechanism.ON_DEMAND, BackingStore.DRAM, threads=1
    )
    print(f"{'DRAM baseline, 1 thread':42s} {to_ns(baseline_ns):>10.0f} {checked:>9d}")

    for mechanism, threads in (
        (AccessMechanism.ON_DEMAND, 1),
        (AccessMechanism.PREFETCH, 10),
        (AccessMechanism.SOFTWARE_QUEUE, 16),
    ):
        per_get, checked = run_gets(mechanism, BackingStore.DEVICE, threads)
        label = f"1us device, {mechanism.value}, {threads} threads"
        print(f"{label:42s} {to_ns(per_get):>10.0f} {checked:>9d}")

    print()
    print("Every GET returned the exact stored bytes on every mechanism;")
    print("the mechanisms differ only in how much latency they hide.")


if __name__ == "__main__":
    main()
