#!/usr/bin/env python3
"""Graph analytics on microsecond-latency storage.

Stores a Graph500-style graph in the emulated device and runs a
parallel BFS through the prefetch-based access API, then checks the
result against a pure-Python reference traversal and reports the
slowdown relative to an all-in-DRAM baseline.

Run:  python examples/graph_analytics.py
"""

from collections import deque

from repro import AccessMechanism, BackingStore, DeviceConfig, SystemConfig
from repro.host.system import System
from repro.units import to_us
from repro.workloads.bfs import BfsParams, generate_graph, install_bfs


def reference_distances(adjacency, source):
    """Plain BFS, the correctness oracle."""
    distance = [-1] * len(adjacency)
    distance[source] = 0
    frontier = deque([source])
    while frontier:
        vertex = frontier.popleft()
        for neighbor in adjacency[vertex]:
            if distance[neighbor] < 0:
                distance[neighbor] = distance[vertex] + 1
                frontier.append(neighbor)
    return distance


def run_traversal(mechanism, backing, threads, params):
    config = SystemConfig(
        mechanism=mechanism,
        backing=backing,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    runs = install_bfs(system, params, threads)
    ticks = system.run_to_completion(limit_ticks=10**12)
    return runs[0], ticks


def main() -> None:
    params = BfsParams(vertices=1024, average_degree=16, work_count=50)
    adjacency = generate_graph(params)
    expected = reference_distances(adjacency, params.source)

    print(f"graph: {params.vertices} vertices, "
          f"{sum(len(n) for n in adjacency)} directed edges")

    baseline_run, baseline_ticks = run_traversal(
        AccessMechanism.ON_DEMAND, BackingStore.DRAM, 1, params
    )
    assert baseline_run.distance == expected, "baseline traversal wrong"
    print(f"DRAM baseline (1 thread):        {to_us(baseline_ticks):9.1f} us")

    for threads in (1, 4, 8, 16):
        run, ticks = run_traversal(
            AccessMechanism.PREFETCH, BackingStore.DEVICE, threads, params
        )
        assert run.distance == expected, "device traversal wrong"
        ratio = baseline_ticks / ticks
        print(
            f"1us device, prefetch, {threads:2d} threads: {to_us(ticks):9.1f} us"
            f"   ({ratio:.2f}x of baseline, {run.level} levels)"
        )

    print()
    print("Every traversal computed identical distances; threading hides")
    print("a growing share of the microsecond latency, up to the LFB cap.")


if __name__ == "__main__":
    main()
