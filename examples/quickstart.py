#!/usr/bin/env python3
"""Quickstart: measure one microsecond-latency device configuration.

Builds the paper's platform (Xeon-like host + 1 us PCIe device), runs
the microbenchmark under each access mechanism, and prints the
normalized work IPC -- the headline metric of "Taming the Killer
Microsecond" (MICRO 2018).

Run:  python examples/quickstart.py
"""

from repro import (
    AccessMechanism,
    DeviceConfig,
    MicrobenchSpec,
    SystemConfig,
)
from repro.harness import MeasureWindow, normalized_microbench


def main() -> None:
    spec = MicrobenchSpec(work_count=200)
    window = MeasureWindow(warmup_us=30, measure_us=100)
    device = DeviceConfig(total_latency_us=1.0)

    print("Microbenchmark, work-count 200, 1 us device, 10 threads/core")
    print(f"{'mechanism':18s} {'normalized work IPC':>20s} {'in-flight peak':>15s}")
    for mechanism in (
        AccessMechanism.ON_DEMAND,
        AccessMechanism.PREFETCH,
        AccessMechanism.SOFTWARE_QUEUE,
        AccessMechanism.KERNEL_QUEUE,
    ):
        threads = 1 if mechanism is AccessMechanism.ON_DEMAND else 10
        config = SystemConfig(
            mechanism=mechanism, threads_per_core=threads, device=device
        )
        normalized, result = normalized_microbench(config, spec, window)
        in_flight = max(result.report["lfb_max_per_core"])
        print(f"{mechanism.value:18s} {normalized:>20.3f} {in_flight:>15d}")

    print()
    print("Reading the table:")
    print(" * on-demand loads collapse -- the ROB fills behind the miss;")
    print(" * prefetch + user-level threading reaches DRAM parity, pinned")
    print("   by the 10 line-fill buffers per core;")
    print(" * software queues scale past the LFBs but pay ~2x in software")
    print("   overhead; kernel queues pay microseconds per access.")

    # -- and the paper's remedy, in two lines of config -----------------------
    from repro import CpuConfig, DeviceAttachment, UncoreConfig

    fixed = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=24,
        cpu=CpuConfig(lfb_entries=20),                # 20 x latency_us
        uncore=UncoreConfig(dram_queue_entries=48),
        device=DeviceConfig(
            total_latency_us=1.0,
            attachment=DeviceAttachment.MEMORY_BUS,   # section V-B's hint
        ),
    )
    normalized, _ = normalized_microbench(fixed, spec, window)
    print()
    print(f"with sized queues + memory-bus attach: {normalized:.3f}x DRAM --")
    print("'conventional architectures can effectively hide")
    print(" microsecond-level latencies' (section VII).")


if __name__ == "__main__":
    main()
