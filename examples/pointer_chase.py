#!/usr/bin/env python3
"""Serial dependence chains: what nothing can hide — and what can.

The paper's motivation (section I): microsecond latencies are deadly
"especially in the presence of pointer-based serial dependence chains".
Within one chain, even the prefetch mechanism is helpless — the next
address is unknown until the current load returns.  Across chains,
user-level threading recovers all the parallelism: each thread walks
its own chain, and every context switch overlaps another chain's hop.

Run:  python examples/pointer_chase.py
"""

from repro import AccessMechanism, DeviceConfig, SystemConfig
from repro.host.system import System
from repro.units import to_us
from repro.workloads.pointer_chase import PointerChaseParams, install_pointer_chase

PARAMS = PointerChaseParams(nodes=256, hops_per_thread=48, work_count=100)


def run(mechanism, threads):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_pointer_chase(system, PARAMS, threads)
    ticks = system.run_to_completion(limit_ticks=10**12)
    total_hops = threads * PARAMS.hops_per_thread
    return to_us(ticks), total_hops


def main() -> None:
    print(f"{PARAMS.hops_per_thread} hops/thread through random cyclic "
          f"chains, 1 us device")
    print(f"{'configuration':28s} {'time':>10s} {'hops':>6s} {'ns/hop':>8s}")
    for mechanism, threads in (
        (AccessMechanism.ON_DEMAND, 1),
        (AccessMechanism.PREFETCH, 1),
        (AccessMechanism.PREFETCH, 4),
        (AccessMechanism.PREFETCH, 10),
        (AccessMechanism.SOFTWARE_QUEUE, 10),
    ):
        elapsed_us, hops = run(mechanism, threads)
        label = f"{mechanism.value}, {threads} threads"
        print(f"{label:28s} {elapsed_us:>8.1f}us {hops:>6d} "
              f"{elapsed_us * 1000 / hops:>8.0f}")
    print()
    print("One thread: ~1000 ns/hop no matter the mechanism (serial chain).")
    print("Ten threads: ~100 ns/hop — the latency is hidden across chains,")
    print("which is the paper's entire point.")


if __name__ == "__main__":
    main()
