#!/usr/bin/env python3
"""The paper's remedy: size the hardware queues to the latency.

Section V-B's back-of-the-envelope rule: per-core queues need about
``20 x latency_us`` entries, and chip-level shared queues about
``20 x latency_us x cores``.  This example sweeps the line-fill buffer
count and the chip-level queue and shows the prefetch mechanism
climbing to (and past) DRAM parity once the queues stop binding --
"conventional architectures can effectively hide microsecond-level
latencies".

Run:  python examples/queue_sizing.py
"""

import dataclasses

from repro import (
    AccessMechanism,
    CpuConfig,
    DeviceConfig,
    MicrobenchSpec,
    SystemConfig,
    UncoreConfig,
)
from repro.harness import MeasureWindow, normalized_microbench


def sweep_lfb(latency_us: float) -> None:
    print(f"\nPer-core queue (LFB) sweep, {latency_us:g} us device, one core:")
    print(f"{'LFBs':>6s} {'threads':>8s} {'normalized work IPC':>21s}")
    rule = int(20 * latency_us)
    for lfbs in (10, 20, rule, 2 * rule):
        threads = max(12, lfbs + 4)
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=threads,
            cpu=CpuConfig(lfb_entries=lfbs),
            uncore=UncoreConfig(pcie_queue_entries=max(14, 4 * lfbs)),
            device=DeviceConfig(total_latency_us=latency_us),
        )
        normalized, _ = normalized_microbench(
            config, MicrobenchSpec(work_count=200),
            MeasureWindow(warmup_us=40, measure_us=120),
        )
        tag = "  <- stock Xeon" if lfbs == 10 else ""
        print(f"{lfbs:>6d} {threads:>8d} {normalized:>21.3f}{tag}")


def sweep_chip_queue() -> None:
    cores = 8
    latency_us = 1.0
    print(f"\nChip-level queue sweep, {latency_us:g} us device, {cores} cores, "
          f"16 threads/core (normalized to the 1-core DRAM baseline):")
    print(f"{'chip queue':>11s} {'normalized work IPC':>21s}")
    rule = int(20 * latency_us * cores)
    for entries in (14, 40, rule, 2 * rule):
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            cores=cores,
            threads_per_core=16,
            cpu=CpuConfig(lfb_entries=20),
            uncore=UncoreConfig(pcie_queue_entries=entries),
            device=DeviceConfig(total_latency_us=latency_us),
        )
        normalized, _ = normalized_microbench(
            config, MicrobenchSpec(work_count=200),
            MeasureWindow(warmup_us=40, measure_us=120),
        )
        tag = "  <- stock Xeon" if entries == 14 else ""
        print(f"{entries:>11d} {normalized:>21.3f}{tag}")


def main() -> None:
    print("Rule of thumb (section V-B): ~20 in-flight accesses per core per")
    print("microsecond of device latency; chip queues scaled by core count.")
    sweep_lfb(1.0)
    sweep_lfb(4.0)
    sweep_chip_queue()


if __name__ == "__main__":
    main()
