#!/usr/bin/env python3
"""Cross-validate the simulator against the closed-form envelope.

The paper's section V-B reasons in envelopes ("each microsecond of
latency can be hidden by 10-20 in-flight accesses per core"); this
repository implements those envelopes as formulas
(`repro.harness.analytic`) and runs them against the discrete-event
simulator — two independent derivations that must agree.

Run:  python examples/validate_model.py
"""

from repro import AccessMechanism, DeviceConfig, MicrobenchSpec, SystemConfig
from repro.harness.analytic import (
    predict_on_demand_ipc,
    predict_prefetch_ipc,
    predict_swq_peak_ipc,
)
from repro.harness.experiment import MeasureWindow, run_microbench

WINDOW = MeasureWindow(warmup_us=25, measure_us=80)


def row(label, measured, predicted):
    delta = (measured / predicted - 1) * 100 if predicted else float("nan")
    print(f"{label:44s} {measured:>9.4f} {predicted:>10.4f} {delta:>+7.1f}%")


def main() -> None:
    print(f"{'configuration':44s} {'simulated':>9s} {'envelope':>10s} {'delta':>8s}")

    for work in (100, 500, 2000):
        spec = MicrobenchSpec(work_count=work)
        config = SystemConfig(
            mechanism=AccessMechanism.ON_DEMAND,
            device=DeviceConfig(total_latency_us=1.0),
        )
        measured = run_microbench(config, spec, WINDOW).work_ipc
        row(
            f"on-demand, work={work}",
            measured,
            predict_on_demand_ipc(config, spec),
        )

    spec = MicrobenchSpec(work_count=200)
    for threads, latency_us in ((4, 1.0), (10, 1.0), (16, 1.0), (16, 4.0)):
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=threads,
            device=DeviceConfig(total_latency_us=latency_us),
        )
        measured = run_microbench(config, spec, WINDOW).work_ipc
        row(
            f"prefetch, {threads} threads, {latency_us:g}us",
            measured,
            predict_prefetch_ipc(config, spec, threads),
        )

    for reads in (1, 4):
        spec = MicrobenchSpec(work_count=200, reads_per_batch=reads)
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE,
            threads_per_core=32,
            device=DeviceConfig(total_latency_us=1.0),
        )
        measured = run_microbench(config, spec, WINDOW).work_ipc
        row(
            f"software-queue peak, {reads}-read",
            measured,
            predict_swq_peak_ipc(config, spec),
        )

    print()
    print("Every simulated point lands within a few percent of the")
    print("independent closed-form envelope — the queueing story of the")
    print("paper, derived twice.")


if __name__ == "__main__":
    main()
