#!/usr/bin/env python3
"""The paper's two-run replay methodology, end to end.

The FPGA's on-board DRAM is too slow to serve random reads at device
rate, so the paper (section IV-A) records each experiment's access
sequence, preloads it over PCIe with a DMA engine, and *streams* it
ahead of the host's requests during the measured second run.

This example: (1) records a trace during a functional run, (2) models
the DMA preload, (3) re-runs in replay mode and shows that every
response met its latency deadline -- then (4) shows what the paper
avoided, an emulator serving on-demand from on-board DRAM, whose
random-access path cannot keep up.

Run:  python examples/replay_methodology.py
"""

from repro import AccessMechanism, DeviceConfig, MicrobenchSpec, SystemConfig
from repro.config import DeviceMode, OnboardDramConfig
from repro.device.emulator import DmaEngine
from repro.host.system import System
from repro.units import to_us, us
from repro.workloads.microbench import install_microbench


def build(threads, spec):
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_microbench(system, spec, threads)
    return system


def main() -> None:
    threads = 10
    spec = MicrobenchSpec(work_count=200, iterations=300)

    # -- Run 1: functional, with trace recording -------------------------------
    system = build(threads, spec)
    system.device.start_recording()
    system.run_to_completion(limit_ticks=10**11)
    traces = system.device.stop_recording()
    recorded = sum(len(trace) for trace in traces.values())
    print(f"run 1 (record): {recorded} accesses recorded")

    # -- DMA preload of the recorded traces ------------------------------------
    loader_system = build(threads, spec)
    engine = DmaEngine(
        loader_system.sim,
        loader_system.link,
        loader_system.device.stream_channel,
    )

    def preload_all():
        total = 0
        for trace in traces.values():
            total += yield from engine.preload(trace)
        return total

    load_ticks = loader_system.sim.run(loader_system.sim.process(preload_all()))
    print(
        f"preload: {engine.bytes_loaded} bytes over PCIe + on-board DRAM "
        f"in {to_us(load_ticks):.1f} us (simulated)"
    )

    # -- Run 2: replay mode (the measured run) ---------------------------------
    system = build(threads, spec)
    system.device.load_traces(traces, streamed=True)
    ticks = system.run_to_completion(limit_ticks=10**11)
    replay = system.device.replay_modules[0]
    delay = system.device.delay
    print(
        f"run 2 (replay): {to_us(ticks):.1f} us, "
        f"{replay.matches} window matches "
        f"({replay.in_order_matches} in order, "
        f"{replay.reordered_matches} reordered), "
        f"{replay.spurious_requests} spurious, "
        f"{delay.deadline_misses} deadline misses"
    )

    # -- The design the paper rejected: on-demand from on-board DRAM ------------
    slow = OnboardDramConfig(latency_ns=200.0, bandwidth_bytes_per_s=6.4e9)
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
        onboard_dram=slow,
    )
    system = System(config)
    install_microbench(system, spec, threads)
    # Arm replay with EMPTY traces: every request misses the window and
    # falls back to the on-demand module's on-board DRAM reads.
    from repro.device.replay import AccessTrace

    system.device.load_traces(
        {core: AccessTrace() for core in range(1)}, streamed=False
    )
    ticks = system.run_to_completion(limit_ticks=10**11)
    print(
        f"on-demand-only emulator: {to_us(ticks):.1f} us for the same work, "
        f"{system.device.delay.deadline_misses} deadline misses "
        f"(why the paper built replay)"
    )


if __name__ == "__main__":
    main()
