"""Shared helpers for the figure-regeneration benchmark suite.

Each benchmark regenerates one of the paper's figures, prints it as a
text table (run pytest with ``-s`` to see them), asserts the paper's
qualitative claims about it, and appends the series to
``benchmarks/results/`` as CSV for external plotting.

Grid resolution: set ``REPRO_BENCH_SCALE=full`` for the paper's full
grids (slower); the default ``quick`` grids preserve every claim-bearing
point.
"""

import os
import pathlib

import pytest

from repro.harness.figures import FigureResult
from repro.harness.report import render_table, to_csv

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    value = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if value not in ("quick", "full"):
        raise ValueError(f"REPRO_BENCH_SCALE must be quick or full, got {value!r}")
    return value


@pytest.fixture()
def publish():
    """Print the figure table and persist its CSV."""

    def _publish(figure: FigureResult) -> None:
        print()
        print(render_table(figure))
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{figure.figure_id}.csv"
        path.write_text(to_csv(figure))

    return _publish
