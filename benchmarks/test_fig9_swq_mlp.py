"""Figure 9: impact of MLP on software-managed queues.

Paper: "the peak performance of the application-managed queues on a
workload with MLP of 2.0 is 45% relative to the DRAM baseline; going
to an MLP of 4.0 ... only 35%"; with four cores, higher MLP "puts
greater strain on the PCIe bandwidth", peaking earlier and lower.
"""

import pytest

from repro.harness.figures import fig9


def test_fig9_swq_mlp(benchmark, scale, publish):
    figure = benchmark.pedantic(fig9, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    one = figure.get("1core/1-read")
    two = figure.get("1core/2-read")
    four = figure.get("1core/4-read")

    # Single-core peaks: ~50% / ~45% / ~35% (we accept the ordering
    # with the 1-read anchor pinned).
    assert one.peak() == pytest.approx(0.5, abs=0.07)
    assert one.peak() > two.peak() > four.peak()
    assert four.peak() > 0.2

    # Four cores: relative MLP penalty persists, and the MLP-4 curve
    # saturates at lower thread counts (PCIe strain).
    q1 = figure.get("4core/1-read")
    q4 = figure.get("4core/4-read")
    assert q1.peak() > q4.peak()
    assert q4.y_at(16) > 0.9 * q4.peak()  # already saturated below 16
    assert q1.y_at(8) < 0.85 * q1.peak()  # 1-read still climbing at 8
