"""Figure 8: multicore software-managed queues.

Paper: "the application-managed queues have no such limitations and
achieve linear performance improvement as core count increases.
Unfortunately, at eight cores, the system encounters a request-rate
bottleneck of the PCIe interface" -- small TLPs waste the link, and
only ~half the 4 GB/s moves useful data.
"""

import pytest

from repro.harness.figures import fig8


def test_fig8_multicore_swq(benchmark, scale, publish):
    figure = benchmark.pedantic(fig8, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    for latency in ("1us", "4us"):
        one = figure.get(f"{latency}/1core")
        two = figure.get(f"{latency}/2core")
        four = figure.get(f"{latency}/4core")
        eight = figure.get(f"{latency}/8core")
        # Linear scaling through four cores (no 14-entry cap here).
        assert two.peak() == pytest.approx(2 * one.peak(), rel=0.12)
        assert four.peak() == pytest.approx(4 * one.peak(), rel=0.12)
        # Eight cores fall visibly short of 8x: the PCIe request-rate
        # wall (every access costs a response write + completion write
        # + descriptor-read share in small TLPs).
        assert eight.peak() > 1.3 * four.peak()
        assert eight.peak() < 0.95 * 2 * four.peak()
