"""Ablation: PCIe vs memory-interconnect device attachment (§V-B).

"It appears that shared hardware queues on the DRAM access path are
larger than on the PCIe path.  Therefore, integrating microsecond-
latency devices on the memory interconnect in conjunction with larger
per-core LFB queues may be a step in the right direction."
"""

import pytest

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceAttachment,
    DeviceConfig,
    SystemConfig,
    UncoreConfig,
)
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=40.0, measure_us=120.0)
SPEC = MicrobenchSpec(work_count=200)


def run_point(attachment, cores, lfbs, threads, bus_queue=48):
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        cores=cores,
        threads_per_core=threads,
        cpu=CpuConfig(lfb_entries=lfbs),
        uncore=UncoreConfig(dram_queue_entries=bus_queue),
        device=DeviceConfig(total_latency_us=1.0, attachment=attachment),
    )
    value, _ = normalized_microbench(config, SPEC, WINDOW)
    return value


def sweep(scale):
    figure = FigureResult(
        "ablation-attachment",
        "PCIe vs memory-bus attachment, prefetch at 1us, 8 cores",
        xlabel="threads per core",
        ylabel="normalized work IPC (vs 1-core baseline)",
    )
    grid = (2, 4, 8, 16) if scale == "full" else (4, 16)
    variants = (
        # Stock PCIe attach: 10 LFBs, 14-entry chip queue.
        ("pcie/stock", DeviceAttachment.PCIE, 10, 48),
        # Memory-bus attach, otherwise stock: the deeper (48-entry)
        # DRAM-style queue becomes the binding resource.
        ("membus/stock", DeviceAttachment.MEMORY_BUS, 10, 48),
        # The full section V-B recipe: 20x-latency LFBs AND a
        # 20 x latency x cores shared queue.
        ("membus/sized", DeviceAttachment.MEMORY_BUS, 20, 160),
    )
    for label, attachment, lfbs, bus_queue in variants:
        line = figure.new_series(label)
        for threads in grid:
            line.add(threads, run_point(attachment, 8, lfbs, threads, bus_queue))
    return figure


def test_memory_bus_attachment_lifts_the_chip_queue_wall(
    benchmark, scale, publish
):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    pcie = figure.get("pcie/stock").peak()
    membus = figure.get("membus/stock").peak()
    sized = figure.get("membus/sized").peak()
    # The DRAM-path queue (48) more than triples the PCIe path's 14.
    assert membus > 2.5 * pcie
    # The full sizing recipe approaches linear 8-core scaling (~8x the
    # single-core DRAM baseline).
    assert sized > 6.0
    assert sized > 1.4 * membus
