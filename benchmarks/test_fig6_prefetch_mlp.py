"""Figure 6: 1 us prefetch-based access at MLP 1 / 2 / 4.

Paper: "the 2- and 4-read variants gain just as much performance from
the first several threads ... while the 1-read case can scale to 10
threads before filling up the LFBs, the 2-read system tops out at 5
threads, and the 4-read system peaks at 3 threads"; "the LFB limit is
more problematic for applications with inherent MLP, severely limiting
their performance compared to the DRAM baseline."
"""

import pytest

from repro.harness.figures import fig6


def test_fig6_prefetch_mlp(benchmark, scale, publish):
    figure = benchmark.pedantic(fig6, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    one = figure.get("1-read")
    two = figure.get("2-read")
    four = figure.get("4-read")

    # Early threads help all variants about equally.
    assert two.y_at(2) == pytest.approx(one.y_at(2), rel=0.15)
    assert four.y_at(2) == pytest.approx(one.y_at(2), rel=0.2)

    # Top-out points: 10 / 5 / 3 threads.
    assert one.y_at(16) == pytest.approx(one.y_at(10), rel=0.1)
    assert one.y_at(10) > 1.5 * one.y_at(5)
    assert two.y_at(10) == pytest.approx(two.y_at(5), rel=0.1)
    assert four.y_at(8) == pytest.approx(four.y_at(3), rel=0.15)

    # Severe relative loss versus the matching-MLP baseline.
    assert one.peak() > two.peak() > four.peak()
    assert four.peak() < 0.4
