"""Figure A (beyond the paper): open-loop tail latency vs offered load.

The paper's figure 8 sweeps *closed-loop* thread counts, which cannot
show SLO tails: offered load collapses exactly when the system slows
down.  This benchmark regenerates the open-loop companion figure --
p50/p99/p999 end-to-end sojourn vs offered Poisson load on the fig8
multicore SWQ configuration -- and checks the paper's section V-B
queue-sizing rule (~20 x latency_us entries per core) against an
undersized ring at the tail.

The run is fully deterministic (seeded arrivals, discrete-event
timeline), so the committed ``benchmarks/service_baseline.json`` is an
*exact* gate: any drift in the p99 numbers means the model changed,
and either the change is a bug or the baseline must be regenerated
alongside a MODEL_VERSION bump.  The outcome lands in
``benchmarks/results/BENCH_service.json`` for PR-over-PR tracking.
"""

import json
import pathlib

from repro.harness.figures import figA_slo, queue_rule_report
from repro.harness.sweep import MODEL_VERSION
from repro.obs.runlog import git_sha

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "service_baseline.json"


def test_figA_open_loop_slo(benchmark, scale, publish):
    figure = benchmark.pedantic(figA_slo, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    report = queue_rule_report(figure)

    # Quantile ordering within every policy/core combination.
    labels = {line.label: line for line in figure.series}
    prefixes = {label.rsplit("/", 1)[0] for label in labels}
    for prefix in prefixes:
        p50 = labels[f"{prefix}/p50"]
        p99 = labels[f"{prefix}/p99"]
        p999 = labels[f"{prefix}/p999"]
        for (x, lo), (_, mid), (_, hi) in zip(
            p50.points, p99.points, p999.points
        ):
            assert lo <= mid <= hi, f"{prefix} quantiles disordered at {x}"

    # The load-latency shape is the figure's story: an undersized ring
    # serializes bursts, so its p99 climbs steeply with offered load; a
    # rule-sized ring absorbs them, so its p99 stays nearly flat.
    for label, line in labels.items():
        if not label.endswith("/p99"):
            continue
        first, last = line.points[0][1], line.points[-1][1]
        if label.startswith("under-rule/"):
            assert last > 1.8 * first, f"{label} tail did not climb: {line.points}"
        else:
            assert last < 1.3 * first, f"{label} tail not flat: {line.points}"

    # Acceptance: the ~20 x latency_us x cores sizing rule holds under
    # open-loop Poisson load -- the rule-sized ring's p99 never loses
    # to the under-provisioned ring's.
    assert report["holds"], f"queue-sizing rule violated: {report}"

    # The gap is material at the highest load, not a rounding tie: an
    # undersized ring serializes bursts and visibly fattens the tail.
    for cores, entry in report["per_cores"].items():
        assert entry["under-rule"] > 1.5 * entry["rule-sized"], (
            f"{cores} cores: expected a clear tail win for the "
            f"rule-sized ring, got {entry}"
        )

    payload = {
        "schema": "repro-service-bench-v1",
        "git_sha": git_sha(),
        "model_version": MODEL_VERSION,
        "figure": "figA_slo",
        "scale": scale,
        "queue_rule": report,
        "p99_us": {
            label: line.points[-1][1]
            for label, line in sorted(labels.items())
            if label.endswith("/p99")
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_service.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    # Exact determinism gate against the committed baseline.  Quick
    # scale only: the baseline is committed for the CI grid.
    baseline = json.loads(BASELINE_PATH.read_text())
    if scale == baseline["scale"] and MODEL_VERSION == baseline["model_version"]:
        assert payload["p99_us"] == baseline["p99_us"], (
            "service p99 drifted from the committed baseline; if the "
            "model change is intentional, bump MODEL_VERSION and "
            "regenerate benchmarks/service_baseline.json"
        )
