"""Figure 7: application-managed queues vs prefetch-based access.

Paper: "for higher latency, when the prefetch-based access encounters
the LFB limit, the application-managed queues continue to gain
performance with increasing thread count"; "the queue management
overhead ... limits the peak performance of the application-managed
queues to just 50% of the DRAM baseline"; peaks are reached "at 10
threads and 1us, or 24 threads and 4us".
"""

import pytest

from repro.harness.figures import fig7


def test_fig7_swq_vs_prefetch(benchmark, scale, publish):
    figure = benchmark.pedantic(fig7, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    swq1 = figure.get("swq/1us")
    swq4 = figure.get("swq/4us")
    pf1 = figure.get("prefetch/1us")
    pf4 = figure.get("prefetch/4us")

    # SWQ peak ~50% of the DRAM baseline, at both latencies.
    assert swq1.peak() == pytest.approx(0.5, abs=0.07)
    assert swq4.peak() == pytest.approx(0.5, abs=0.07)

    # Prefetch at 1us beats SWQ outright (LFBs suffice).
    assert pf1.peak() > 1.8 * swq1.peak()

    # At 4us, prefetch is pinned by the LFBs while SWQ keeps gaining
    # with thread count and overtakes it.
    assert pf4.y_at(32) == pytest.approx(pf4.y_at(10), rel=0.1)
    assert swq4.y_at(24) > 2 * swq4.y_at(10)
    assert swq4.y_at(32) > pf4.y_at(32)

    # SWQ 1us saturates by ~16 threads; 4us needs ~24-32.
    assert swq1.y_at(16) > 0.9 * swq1.peak()
    assert swq4.y_at(16) < 0.75 * swq4.peak()
    assert swq4.y_at(24) > 0.85 * swq4.peak()
