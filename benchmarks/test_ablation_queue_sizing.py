"""Ablation: the paper's queue-sizing rule (section V-B implications).

"Each microsecond of latency can be effectively hidden by 10-20
in-flight device accesses per core.  Therefore, the per-core queues
should be provisioned for approximately 20 x expected-device-latency-
in-microseconds parallel accesses.  Chip-level shared queues should
support 20 x latency x cores-per-chip."
"""

import pytest

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceConfig,
    SystemConfig,
    UncoreConfig,
)
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=40.0, measure_us=120.0)
SPEC = MicrobenchSpec(work_count=200)


def run_point(lfbs, chip_queue, threads, latency_us, cores=1):
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        cores=cores,
        threads_per_core=threads,
        cpu=CpuConfig(lfb_entries=lfbs),
        uncore=UncoreConfig(pcie_queue_entries=chip_queue),
        device=DeviceConfig(total_latency_us=latency_us),
    )
    value, _ = normalized_microbench(config, SPEC, WINDOW)
    return value


def sweep_lfb(scale):
    figure = FigureResult(
        "ablation-lfb",
        "Per-core queue (LFB) sizing vs the 20x-latency rule",
        xlabel="LFB entries",
        ylabel="normalized work IPC",
    )
    for latency_us in (1.0, 4.0):
        line = figure.new_series(f"{latency_us:g}us")
        rule = int(20 * latency_us)
        sizes = (10, rule // 2, rule, 2 * rule) if scale == "full" else (10, rule)
        for lfbs in sorted(set(sizes)):
            line.add(lfbs, run_point(lfbs, max(14, 4 * lfbs), lfbs + 4, latency_us))
    return figure


def sweep_chip(scale):
    figure = FigureResult(
        "ablation-chipq",
        "Chip-level queue sizing, 8 cores at 1us",
        xlabel="chip queue entries",
        ylabel="normalized work IPC (vs 1-core baseline)",
    )
    line = figure.new_series("1us/8core")
    rule = 20 * 1 * 8
    sizes = (14, 40, rule, 2 * rule) if scale == "full" else (14, rule)
    for entries in sizes:
        line.add(
            entries,
            run_point(20, entries, threads=16, latency_us=1.0, cores=8),
        )
    return figure


def test_lfb_sweep(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep_lfb, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    for latency_us in (1.0, 4.0):
        series = figure.get(f"{latency_us:g}us")
        rule = int(20 * latency_us)
        stock = series.y_at(10)
        sized = series.y_at(rule)
        # The rule restores DRAM parity (and some) at both latencies.
        assert sized > 0.95
        if latency_us > 1:
            assert stock < 0.35  # stock hardware is far from parity


def test_chip_queue_sweep(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep_chip, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    series = figure.get("1us/8core")
    stock = series.y_at(14)
    sized = series.y_at(160)
    # 8 cores: the sized queue unlocks > 3x the stock aggregate.
    assert sized > 3 * stock
