"""Table I: the taxonomy of latency-hiding mechanisms.

The paper's only table is qualitative.  This "bench" regenerates it
(printed with ``-s``), verifies that every claimed model component
actually exists in the codebase, and spot-checks that each *paradigm*
demonstrably functions in the model.
"""

from repro.taxonomy import TABLE_I, render_table_i, resolve


def test_table1(benchmark):
    text = benchmark.pedantic(render_table_i, rounds=1, iterations=1)
    print()
    print(text)

    # Structure matches the paper: three paradigms, HW and SW rows.
    paradigms = {entry.paradigm for entry in TABLE_I}
    assert paradigms == {"Caching", "Bulk transfer", "Overlapping"}
    for paradigm in paradigms:
        layers = {e.layer for e in TABLE_I if e.paradigm == paradigm}
        assert layers == {"HW", "SW"}, paradigm

    # Every implemented_by reference resolves to a real object.
    for entry in TABLE_I:
        if entry.implemented_by is not None:
            assert resolve(entry.implemented_by) is not None, entry
        else:
            assert entry.note, f"{entry.mechanism}: scope exclusion needs a why"

    # Each paradigm demonstrably works in the model.
    from repro.config import CacheConfig
    from repro.cpu.cache import L1Cache

    cache = L1Cache(CacheConfig())
    cache.install(0x0)
    assert cache.lookup(0x0)  # caching

    from repro.device.replay import AccessTrace

    assert AccessTrace.ENTRY_BYTES > 64  # bulk transfers carry full lines

    from repro.runtime.driver import CoreRuntime  # overlapping machinery

    assert CoreRuntime is not None
