"""Ablation: the hardware stride prefetcher (section IV-A).

"Hardware prefetching is also disabled to avoid interference with the
software prefetch mechanism."  Measured here:

* unmodified on-demand code on a *sequential* scan: the stride
  prefetcher runs ahead of demand and claws back real performance --
  the one case where stock hardware partially tames the microsecond;
* the software-prefetch mechanism: the stride prefetcher adds nothing
  (it competes for the same ten LFBs) -- the interference the paper
  avoids by disabling it;
* a random-access workload (Bloom probes): the stride prefetcher
  never trains and stays silent.
"""

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import FigureResult
from repro.host.driver import PlatformConfig
from repro.host.system import System
from repro.units import us
from repro.workloads.bloom import BloomParams, install_bloom
from repro.workloads.microbench import MicrobenchSpec, install_microbench

WINDOW = MeasureWindow(warmup_us=30.0, measure_us=100.0)


def run_mechanism(mechanism, threads, hw_prefetch):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    platform = PlatformConfig(hardware_prefetcher=hw_prefetch)
    return run_microbench(
        config, MicrobenchSpec(work_count=200), WINDOW, platform=platform
    ).work_ipc


def bloom_coverage():
    system = System(
        SystemConfig(mechanism=AccessMechanism.ON_DEMAND, threads_per_core=1),
        platform=PlatformConfig(hardware_prefetcher=True),
    )
    install_bloom(system, BloomParams(queries_per_thread=48), 1)
    system.run_to_completion(limit_ticks=10**12)
    return system.cores[0].memsys.hw_prefetcher


def sweep(scale):
    figure = FigureResult(
        "ablation-hwpf",
        "Hardware stride prefetcher on vs off, 1us device",
        xlabel="variant (0=off, 1=on)",
        ylabel="work IPC (absolute)",
    )
    for label, mechanism, threads in (
        ("on-demand/sequential", AccessMechanism.ON_DEMAND, 1),
        ("sw-prefetch/10thr", AccessMechanism.PREFETCH, 10),
    ):
        line = figure.new_series(label)
        for hw_prefetch in (False, True):
            line.add(int(hw_prefetch), run_mechanism(mechanism, threads, hw_prefetch))
    return figure


def test_hw_prefetcher_interference(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    on_demand = figure.get("on-demand/sequential")
    # Sequential on-demand code genuinely benefits (the microbenchmark
    # walks distinct lines in order, a stride the prefetcher learns).
    assert on_demand.y_at(1) > 1.7 * on_demand.y_at(0)

    software = figure.get("sw-prefetch/10thr")
    # The software mechanism gains nothing from the hardware unit --
    # they fight over the same line-fill buffers.
    assert software.y_at(1) <= 1.02 * software.y_at(0)

    # Random probes never train the stride detector.
    prefetcher = bloom_coverage()
    assert prefetcher.observed > 100
    assert prefetcher.issued < 0.05 * prefetcher.observed
