"""Extension bench: device writes (the paper's future work, §VII).

"Because writes do not have return values, are often off the critical
path, and do not prevent context switching by blocking at the head of
the reorder buffer, their latency can be more easily hidden by later
instructions of the same thread without requiring prefetch
instructions."

This bench measures that conjecture on the reproduced platform: the
prefetch microbenchmark with 0-4 posted writes per iteration keeps
nearly all of its read-only throughput, until the write rate runs into
drain-path bandwidth.
"""

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=30.0, measure_us=100.0)


def sweep(scale):
    figure = FigureResult(
        "future-writes",
        "Posted writes per iteration vs prefetch throughput at 1us",
        xlabel="writes per iteration",
        ylabel="work IPC (absolute)",
    )
    writes_grid = (0, 1, 2, 4) if scale == "full" else (0, 1, 4)
    for mechanism, threads in (
        (AccessMechanism.PREFETCH, 10),
        (AccessMechanism.SOFTWARE_QUEUE, 16),
    ):
        line = figure.new_series(f"{mechanism.value}/{threads}thr")
        for writes in writes_grid:
            config = SystemConfig(
                mechanism=mechanism,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=1.0),
            )
            spec = MicrobenchSpec(work_count=200, writes_per_batch=writes)
            line.add(writes, run_microbench(config, spec, WINDOW).work_ipc)
    return figure


def test_posted_writes_hide_behind_the_same_thread(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    prefetch = figure.get("prefetch/10thr")
    # One posted write per read costs < 10% of throughput.
    assert prefetch.y_at(1) > 0.9 * prefetch.y_at(0)
    # Even 4 writes per read keep the mechanism within ~25%.
    assert prefetch.y_at(4) > 0.75 * prefetch.y_at(0)
    # SWQ writes cost an enqueue each, so they bite harder -- but the
    # thread still never waits on them.
    swq = figure.get("software-queue/16thr")
    assert swq.y_at(1) > 0.6 * swq.y_at(0)
