"""Figure 5: multicore prefetch-based access.

Paper: "with a few threads per core, the multi-core performance scales
linearly"; multicore exceeds the single-core LFB cap; but "the on-chip
interconnect ... has another hardware queue which is shared among the
cores" with a measured maximum occupancy of 14, which caps the
aggregate.
"""

import pytest

from repro.harness.figures import fig5


def test_fig5_multicore_prefetch(benchmark, scale, publish):
    figure = benchmark.pedantic(fig5, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    for latency in ("1us", "4us"):
        one = figure.get(f"{latency}/1core")
        two = figure.get(f"{latency}/2core")
        four = figure.get(f"{latency}/4core")
        eight = figure.get(f"{latency}/8core")
        # Linear scaling at low thread counts.
        assert two.y_at(1) == pytest.approx(2 * one.y_at(1), rel=0.1)
        assert four.y_at(1) == pytest.approx(4 * one.y_at(1), rel=0.1)
        # The shared 14-entry queue caps the aggregate: every
        # multicore curve converges to the same ceiling, ~1.4x the
        # single-core (10-LFB) plateau.
        ceiling = two.peak()
        assert four.peak() == pytest.approx(ceiling, rel=0.08)
        assert eight.peak() == pytest.approx(ceiling, rel=0.08)
        assert ceiling == pytest.approx(1.4 * one.peak(), rel=0.12)
