"""Ablation: the emulator's replay design (section IV-A).

"The complexity of this design is necessary to ensure that the
internal device logic does not become the limiting factor when we
increase the number of parallel device requests."  An emulator serving
on-demand from its slow on-board DRAM misses response deadlines as
parallelism grows; the streamed replay design does not.
"""

import pytest

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.device.replay import AccessTrace
from repro.harness.figures import FigureResult
from repro.host.system import System
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def run_emulator(threads, mode):
    """Returns (deadline_miss_fraction, completion_ticks)."""
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=threads,
        device=DeviceConfig(total_latency_us=1.0),
    )
    spec = MicrobenchSpec(work_count=200, iterations=150)

    if mode == "replay":
        recorder = System(config)
        install_microbench(recorder, spec, threads)
        recorder.device.start_recording()
        recorder.run_to_completion(limit_ticks=10**11)
        traces = recorder.device.stop_recording()

    system = System(config)
    install_microbench(system, spec, threads)
    if mode == "replay":
        system.device.load_traces(traces, streamed=True)
    elif mode == "on-demand-only":
        system.device.load_traces({0: AccessTrace()}, streamed=False)
    ticks = system.run_to_completion(limit_ticks=10**11)
    served = system.device.requests_served
    return system.device.delay.deadline_misses / served, ticks


def sweep(scale):
    figure = FigureResult(
        "ablation-emulator",
        "Emulator deadline misses: streamed replay vs on-demand-only",
        xlabel="threads",
        ylabel="fraction of responses missing the 1us deadline",
    )
    grid = (1, 4, 10) if scale == "full" else (1, 10)
    for mode in ("replay", "on-demand-only"):
        line = figure.new_series(mode)
        for threads in grid:
            fraction, _ = run_emulator(threads, mode)
            line.add(threads, fraction)
    return figure


def test_replay_design_meets_deadlines(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    # The paper's design: essentially no deadline misses at any
    # parallelism.
    assert figure.get("replay").peak() < 0.01
    # The rejected design: the on-board DRAM random-access path cannot
    # produce data inside the delay budget.
    assert figure.get("on-demand-only").y_at(10) > 0.9
