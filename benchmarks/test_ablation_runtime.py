"""Ablations on the software runtime (sections III-A and IV-B).

* Context-switch cost: "we were able to reduce the context switch
  overheads from 2 microseconds in the original Pth library to 20-50
  nanoseconds" -- with stock-Pth switching, prefetch-based access
  cannot hide microsecond latencies.
* Kernel-managed queues: per-access overheads of "tens ... of
  microseconds ... dwarf the access latency", which is why the paper
  drops them from evaluation.
* Prefetch drop-vs-queue policy: if the core silently dropped
  prefetches at full LFBs, oversubscribed thread counts would collapse
  instead of plateauing.
"""

import pytest

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceConfig,
    SystemConfig,
    ThreadingConfig,
)
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=40.0, measure_us=120.0)
SPEC = MicrobenchSpec(work_count=200)


def sweep_switch_cost(scale):
    figure = FigureResult(
        "ablation-switch",
        "Context-switch cost (optimized Pth vs stock), prefetch at 1us",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    grid = (4, 8, 10, 16) if scale == "full" else (10, 16)
    for label, switch_ns in (("20ns", 20.0), ("35ns", 35.0), ("stock-2us", 2000.0)):
        line = figure.new_series(label)
        for threads in grid:
            config = SystemConfig(
                mechanism=AccessMechanism.PREFETCH,
                threads_per_core=threads,
                threading=ThreadingConfig(context_switch_ns=switch_ns),
                device=DeviceConfig(total_latency_us=1.0),
            )
            value, _ = normalized_microbench(config, SPEC, WINDOW)
            line.add(threads, value)
    return figure


def test_switch_cost(benchmark, scale, publish):
    figure = benchmark.pedantic(
        sweep_switch_cost, args=(scale,), rounds=1, iterations=1
    )
    publish(figure)
    assert figure.get("20ns").peak() > 0.95
    assert figure.get("35ns").peak() > 0.95
    # A stock 2 us switch costs more than the latency it hides.
    assert figure.get("stock-2us").peak() < 0.15


def sweep_kernel_queue(scale):
    figure = FigureResult(
        "ablation-kernel-queue",
        "Kernel-managed vs application-managed queues at 1us",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    grid = (8, 16, 32) if scale == "full" else (16, 32)
    for label, mechanism in (
        ("application", AccessMechanism.SOFTWARE_QUEUE),
        ("kernel", AccessMechanism.KERNEL_QUEUE),
    ):
        line = figure.new_series(label)
        for threads in grid:
            config = SystemConfig(
                mechanism=mechanism,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=1.0),
            )
            value, _ = normalized_microbench(config, SPEC, WINDOW)
            line.add(threads, value)
    return figure


def test_kernel_queue_dominated(benchmark, scale, publish):
    figure = benchmark.pedantic(
        sweep_kernel_queue, args=(scale,), rounds=1, iterations=1
    )
    publish(figure)
    assert figure.get("kernel").peak() < 0.3 * figure.get("application").peak()


def sweep_prefetch_policy(scale):
    figure = FigureResult(
        "ablation-prefetch-policy",
        "Prefetch policy at full LFBs (queue in RS vs silent drop), 1us",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    grid = (8, 10, 12, 16) if scale == "full" else (10, 16)
    for label, drop in (("queue", False), ("drop", True)):
        line = figure.new_series(label)
        for threads in grid:
            config = SystemConfig(
                mechanism=AccessMechanism.PREFETCH,
                threads_per_core=threads,
                cpu=CpuConfig(prefetch_drop_when_full=drop),
                device=DeviceConfig(total_latency_us=1.0),
            )
            value, _ = normalized_microbench(config, SPEC, WINDOW)
            line.add(threads, value)
    return figure


def test_prefetch_policy(benchmark, scale, publish):
    figure = benchmark.pedantic(
        sweep_prefetch_policy, args=(scale,), rounds=1, iterations=1
    )
    publish(figure)
    # At 10 threads both policies saturate the LFBs identically.
    assert figure.get("drop").y_at(10) == pytest.approx(
        figure.get("queue").y_at(10), rel=0.1
    )
    # Oversubscribed, the drop policy collapses; queueing stays flat
    # (the paper's measured plateau).
    assert figure.get("queue").y_at(16) > 0.9 * figure.get("queue").y_at(10)
    assert figure.get("drop").y_at(16) < 0.5 * figure.get("drop").y_at(10)
