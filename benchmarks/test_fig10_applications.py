"""Figure 10: the application case studies (BFS, Bloom, Memcached,
plus the 4-read microbenchmark), four panels at 1 us.

Paper: single-core prefetch reaches "between 35% to 65% of the DRAM
baseline" (a); single-core SWQ "only 20% to 50%" (b); eight-core
prefetch is "fundamentally prevented" from scaling by the 14-entry
queue (c); eight-core SWQ peaks "between 1.2x to 2.0x of the DRAM
baseline performance of a single core" (d); and "the application
behavior is very similar to the microbenchmark behavior in the
presence of MLP".
"""

import pytest

from repro.harness.applications import APPLICATIONS
from repro.harness.figures import fig10


def test_fig10_applications(benchmark, scale, publish):
    figure = benchmark.pedantic(fig10, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    max_threads = max(x for x, _ in figure.get("a/bfs").points)

    # Panel (a): single-core prefetch lands in the paper's band at the
    # LFB limit.
    for app in APPLICATIONS:
        peak = figure.get(f"a/{app}").peak()
        assert 0.25 <= peak <= 1.1, (app, peak)

    # Panel (b): single-core SWQ is well below prefetch at low thread
    # counts (software overhead per access); at high thread counts the
    # 4-read apps may cross over, exactly as in Figure 7's 4us curves.
    for app in APPLICATIONS:
        assert figure.get(f"b/{app}").y_at(4) < 0.8 * figure.get(f"a/{app}").y_at(4)
        assert figure.get(f"b/{app}").peak() < 0.5  # the paper's 20-50% band

    # Panel (c): eight-core prefetch is capped by the 14-entry chip
    # queue -- no app scales anywhere near 8x its single-core peak.
    for app in APPLICATIONS:
        eight = figure.get(f"c/{app}").peak()
        one = figure.get(f"a/{app}").peak()
        assert eight < 3 * one, (app, eight, one)

    # Panel (d): eight-core SWQ scales past the prefetch ceiling for
    # the batched (4-read-like) applications and exceeds the 1-thread
    # DRAM baseline.
    for app in ("bloom", "memcached", "microbench-4read"):
        assert figure.get(f"d/{app}").peak() > 0.8, app
        assert (
            figure.get(f"d/{app}").peak()
            > 2.2 * figure.get(f"b/{app}").peak()
        )

    # The 4-read microbenchmark tracks the batched applications: Bloom
    # (a pure 4-read workload) behaves like it in every panel.
    for panel in ("a", "b", "d"):
        bloom = figure.get(f"{panel}/bloom").y_at(max_threads)
        micro = figure.get(f"{panel}/microbench-4read").y_at(max_threads)
        assert bloom == pytest.approx(micro, rel=0.45), (panel, bloom, micro)
