"""Figure 4: 1 us prefetch-based access with various work counts.

Paper: "with more work, fewer threads are needed to hide the device
latency and match the performance of the DRAM baseline."
"""

from repro.harness.figures import fig4


def threads_to_reach(series, fraction):
    """First thread count whose normalized IPC reaches ``fraction``."""
    for x, y in series.points:
        if y >= fraction:
            return x
    return float("inf")


def test_fig4_prefetch_with_various_work_counts(benchmark, scale, publish):
    figure = benchmark.pedantic(fig4, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    works = sorted(
        int(series.label.split("=")[1]) for series in figure.series
    )
    crossover = {
        work: threads_to_reach(figure.get(f"work={work}"), 0.9) for work in works
    }
    # More work per access -> parity at fewer threads (non-increasing).
    ordered = [crossover[work] for work in works]
    assert all(a >= b for a, b in zip(ordered, ordered[1:]))
    # The largest work-count reaches parity with just a few threads.
    assert crossover[works[-1]] <= 4
    # The smallest never gets there: its per-access demand exceeds what
    # 10 LFBs deliver, so it plateaus below the baseline.
    assert crossover[works[0]] == float("inf")
    assert figure.get(f"work={works[0]}").peak() < 0.7
    # Work-counts of 200+ all reach the baseline eventually.
    for work in works[1:]:
        assert figure.get(f"work={work}").peak() > 0.9
    # Before anyone saturates (1-2 threads), more work per access is
    # uniformly better.  (Saturated values are NOT ordered by work:
    # as work grows, both device and baseline become compute-bound and
    # every curve converges toward 1.)
    for x in (1, 2):
        values = [figure.get(f"work={w}").y_at(x) for w in works]
        assert all(a <= b + 0.03 for a, b in zip(values, values[1:])), x
