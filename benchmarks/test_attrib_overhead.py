"""Attribution benchmark: spans cost when on, bit-for-bit free when off.

The span ledger (:mod:`repro.obs.spans`) extends the observability
layer's promise: a service run with ``spans=False`` pays nothing --
the hot-path hooks are ``span is None`` checks (SIM404 enforces the
guard shape statically) and no ledger object exists.  This module
measures the open-loop SLO scenario's wall time with spans off vs on,
asserts the two runs produce bit-for-bit identical model outputs
(the spans-on payload minus its attribution block equals the spans-off
payload), re-checks the golden fig3 series with the span layer merged,
and writes the outcome to ``benchmarks/results/BENCH_attrib.json`` for
PR-over-PR tracking.

Like ``test_obs_overhead.py``, absolute wall times are incomparable
across machines, so the committed gates are the exact-equality
passivity checks; the wall-ratio assertions are sanity bounds, with a
tighter ratio enforced only under ``REPRO_KERNEL_BENCH_ENFORCE``.
Helpers are duplicated rather than imported: ``benchmarks/`` is not a
package.
"""

import json
import os
import pathlib
import statistics
import time

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.harness.experiment import MeasureWindow
from repro.harness.figures import fig3
from repro.harness.regression import figure_to_dict
from repro.harness.service import ServiceParams, run_service
from repro.harness.sweep import MODEL_VERSION, SweepEngine
from repro.obs.runlog import git_sha
from repro.obs.spans import PID_SPANS_TID, SEGMENTS, emit_exemplar_trace
from repro.obs.tracer import TraceConfig, Tracer
from repro.obs.validate import validate_trace
from repro.workloads.loadgen import ArrivalSpec, KeySpec, OpenLoopSpec

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
GOLDEN_FIG3 = (
    pathlib.Path(__file__).parent.parent
    / "tests"
    / "golden"
    / "fig3_quick_prepr2.json"
)

#: One figA_slo-style grid point: rule-sized SWQ ring under open-loop
#: Poisson load, long enough for a populated exemplar reservoir.
CORES = 2
WINDOW = MeasureWindow(warmup_us=20.0, measure_us=200.0)
PID_BENCH = 41


def _config() -> SystemConfig:
    return SystemConfig(
        mechanism=AccessMechanism.SOFTWARE_QUEUE,
        cores=CORES,
        threads_per_core=8,
        device=DeviceConfig(total_latency_us=1.0),
        swq=SwqConfig(ring_entries=32),
    )


def _params(spans: bool) -> ServiceParams:
    return ServiceParams(
        open_loop=OpenLoopSpec(
            arrivals=ArrivalSpec(rate_per_us=0.3),
            keys=KeySpec(theta=0.0),
        ),
        workers_per_core=8,
        spans=spans,
    )


def _run_mode(spans: bool):
    return run_service(_config(), _params(spans), WINDOW)


def _time_mode(spans: bool, reps: int = 5):
    walls = []
    result = None
    for _ in range(reps):
        started = time.perf_counter()
        result = _run_mode(spans)
        walls.append(time.perf_counter() - started)
    return statistics.median(walls), result


def test_attrib_overhead_writes_bench_json():
    """Time spans-off vs spans-on on the SLO scenario; the off path
    must be deterministic and the on path model-passive."""
    _run_mode(True)  # warm both code paths before timing

    wall_off, result_off = _time_mode(False)
    wall_on, result_on = _time_mode(True)

    # Spans-off determinism: two runs, one payload.
    assert result_off.payload() == _run_mode(False).payload()
    assert result_off.attribution is None and result_off.exemplars is None

    # Model passivity: attribution observes the run, never steers it.
    # The spans-on payload minus its attribution block is bit-for-bit
    # the spans-off payload.
    payload_on = dict(result_on.payload())
    attribution = payload_on.pop("attribution")
    payload_on.pop("exemplars")
    assert payload_on == result_off.payload()

    # Conservation at aggregate: segments tile every sojourn exactly
    # (attribution() itself raises SpanConservationError otherwise).
    conservation = attribution["conservation"]
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    assert conservation["checked"] == conservation["closed"]
    # Windowed populations line up: the attribution table covers
    # exactly the measurement window's completions (raw ``closed``
    # also counts post-window drain, so it can only be larger).
    assert attribution["requests"] == result_on.completions
    assert conservation["closed"] >= result_on.completions
    assert set(attribution["segments"]) == set(SEGMENTS)

    payload = {
        "schema": "repro-attrib-bench-v1",
        "git_sha": git_sha(),
        "model_version": MODEL_VERSION,
        "workload": (
            f"open-loop SLO point ({_config().describe()}, "
            f"0.3 req/us/core, {WINDOW.warmup_us:g}+{WINDOW.measure_us:g} "
            "us window)"
        ),
        "modes": {
            "spans-off": {"wall_s": wall_off},
            "spans-on": {"wall_s": wall_on},
        },
        "overhead_on_vs_off": wall_on / wall_off,
        "passive": True,
        "conservation": conservation,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_attrib.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # Sanity: per-request span bookkeeping is a few dict ops per hop,
    # not a second simulation.
    assert payload["overhead_on_vs_off"] < 10
    if os.environ.get("REPRO_KERNEL_BENCH_ENFORCE"):
        assert payload["overhead_on_vs_off"] < 3, (
            f"span bookkeeping overhead regressed: "
            f"{payload['overhead_on_vs_off']:.2f}x vs spans-off"
        )


def test_exemplar_trees_render_as_valid_chrome_trace():
    """The retained exemplars round-trip through JSON and render as
    validator-clean Chrome-trace async spans."""
    result = _run_mode(True)
    exemplars = json.loads(json.dumps(result.exemplars))
    assert len(exemplars["slowest"]) >= 3
    assert set(exemplars["stratified"]) == {"p50", "p90", "p99"}
    for tree in exemplars["slowest"]:
        names = [name for name, _begin, _end in tree["segments"]]
        assert set(names) <= set(SEGMENTS)

    tracer = Tracer(TraceConfig(tracks=frozenset({"spans"})))
    emitted = emit_exemplar_trace(tracer, exemplars, PID_BENCH)
    assert emitted >= 3
    assert validate_trace(tracer.to_dict()) == []
    events = tracer.events
    async_ids = {
        event["id"] for event in events if event.get("ph") in ("b", "e")
    }
    assert len(async_ids) == emitted
    assert all(
        event["tid"] == PID_SPANS_TID
        for event in events
        if event.get("ph") in ("b", "e")
    )


def test_span_layer_is_passive_on_golden_fig3():
    """Acceptance gate: with the span layer merged (and its modules
    imported), the closed-loop golden figure is bit-for-bit unchanged."""
    figure = fig3("quick", engine=SweepEngine(jobs=1, use_cache=False))
    assert figure_to_dict(figure) == json.loads(GOLDEN_FIG3.read_text())
