"""Meta-benchmark: what observability costs, and that "off" is free.

The observability layer (metrics registry, tracer hooks, invariant
sanitizer) is built on the promise that a run with everything disabled
pays nothing -- the hooks are ``None`` checks on hot paths.  This
module measures the fig3 scenario's events/sec with observability off
vs metrics / invariants / both enabled and writes the outcome to
``benchmarks/results/BENCH_obs.json`` for PR-over-PR tracking.

The regression gate is machine-independent: absolute wall times are
incomparable across machines, so the "disabled path is still fast"
check re-runs the kernel-vs-frozen-reference event-loop speedup
measurement (the ``event_loop`` entry of
``benchmarks/kernel_baseline.json``) with the observability modules
imported, and requires it to stay within 2% of that baseline's
enforced floor.  Helpers are duplicated from
``test_simulator_throughput.py`` rather than imported: ``benchmarks/``
is not a package, so cross-module imports there depend on pytest's
sys.path mode.
"""

import json
import os
import pathlib
import statistics
import time

from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.sweep import MODEL_VERSION
from repro.obs.runlog import git_sha
from repro.obs.scenarios import trace_scenario
from repro.sim import Simulator, Store, collect_kernel_stats
from repro.sim import _reference

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "kernel_baseline.json"

#: The fig3 quick-look workload: the paper's headline scenario on a
#: short window, so four modes x several reps stay benchmark-sized.
WINDOW = MeasureWindow(warmup_us=5.0, measure_us=20.0)

_MODES = {
    "disabled": {},
    "metrics": {"collect_metrics": True},
    "invariants": {"check_invariants": True},
    "metrics+invariants": {"collect_metrics": True, "check_invariants": True},
}


def _run_mode(scenario, **kwargs):
    with collect_kernel_stats() as kernel:
        result = run_microbench(
            scenario.config, scenario.spec, WINDOW, **kwargs
        )
    return result, kernel.stats()


def _time_mode(scenario, reps=5, **kwargs):
    walls = []
    result = stats = None
    for _ in range(reps):
        started = time.perf_counter()
        result, stats = _run_mode(scenario, **kwargs)
        walls.append(time.perf_counter() - started)
    return statistics.median(walls), result, stats


def _event_loop(simulator_cls, store_cls, items=10_000):
    """Same canonical kernel workload as test_simulator_throughput."""
    sim = simulator_cls()
    store = store_cls(sim, capacity=16)

    def producer():
        for i in range(items):
            yield store.put(i)

    def consumer():
        total = 0
        for _ in range(items):
            total += yield store.get()
        return total

    sim.process(producer())
    done = sim.process(consumer())
    return sim.run(done)


def _paired_speedup(fn_ref, fn_new, repeats=15):
    """Median of per-pair wall ratios (frequency-drift robust).  GC is
    disabled around the timed region, mirroring the kernel-bench
    harness (``--benchmark-disable-gc`` covers only fixture-timed
    tests)."""
    import gc

    ratios = []
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            fn_ref()
            ref_s = time.perf_counter() - started
            started = time.perf_counter()
            fn_new()
            new_s = time.perf_counter() - started
            ratios.append(ref_s / new_s)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(ratios)


def test_obs_overhead_writes_bench_json():
    """Measure fig3-scenario events/sec per observability mode; every
    mode must produce bit-for-bit the same simulation results."""
    scenario = trace_scenario("fig3")
    _run_mode(scenario)  # warm code paths before timing

    modes = {}
    reference_result = None
    for mode, kwargs in _MODES.items():
        wall, result, stats = _time_mode(scenario, **kwargs)
        modes[mode] = {
            "wall_s": wall,
            "events_fired": stats["events_fired"],
            "events_per_sec": stats["events_fired"] / wall,
        }
        if reference_result is None:
            reference_result = result
        else:
            # Observers are passive: identical model outputs in every mode.
            assert result.work_ipc == reference_result.work_ipc
            assert result.stats.accesses == reference_result.stats.accesses
            assert (
                stats["events_fired"] >= modes["disabled"]["events_fired"]
            )

    disabled = modes["disabled"]["events_per_sec"]
    payload = {
        "schema": "repro-obs-bench-v1",
        "git_sha": git_sha(),
        "model_version": MODEL_VERSION,
        "workload": (
            f"fig3 scenario ({scenario.config.describe()}, "
            f"{WINDOW.warmup_us:g}+{WINDOW.measure_us:g} us window)"
        ),
        "modes": modes,
        "overhead_vs_disabled": {
            mode: disabled / data["events_per_sec"]
            for mode, data in modes.items()
            if mode != "disabled"
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
    # Sanity only (absolute ratios are noisy on shared machines): the
    # fully-instrumented mode must not be catastrophically slower.
    assert payload["overhead_vs_disabled"]["metrics+invariants"] < 10


def test_disabled_path_keeps_kernel_speedup_within_2pct():
    """Acceptance gate: with the observability layer imported but
    disabled, the kernel's speedup over the frozen reference stays
    within 2% of the PR 2 benchmark floor.  Wall-clock-independent:
    both kernels run back to back on this machine."""
    run_new = lambda: _event_loop(Simulator, Store)
    run_ref = lambda: _event_loop(_reference.Simulator, _reference.Store)
    assert run_new() == run_ref() == sum(range(10_000))

    speedup = _paired_speedup(run_ref, run_new)
    assert speedup >= 0.98 * 1.3, (
        f"kernel speedup collapsed with obs layer loaded: {speedup:.2f}x"
    )
    if os.environ.get("REPRO_KERNEL_BENCH_ENFORCE"):
        baseline = json.loads(BASELINE_PATH.read_text())
        loop_base = baseline["workloads"]["event_loop"]["speedup_vs_reference"]
        floor = 0.98 * max(1.5, 0.7 * loop_base)
        assert speedup >= floor, (
            f"disabled-path regression: {speedup:.2f}x vs reference, "
            f"2%-tolerance floor {floor:.2f}x"
        )
