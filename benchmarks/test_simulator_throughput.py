"""Meta-benchmark: wall-clock throughput of the simulator itself.

Not a paper figure -- this guards against performance regressions in
the discrete-event kernel, which every experiment's runtime depends
on, and against regressions in the sweep engine's caching (a warm
figure rerun must perform zero simulations).  The kernel benchmarks
use pytest-benchmark's normal timing loop; the sweep checks time two
explicit runs because their contract is about the *second* run.
"""

import json
import os
import pathlib
import time

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import fig3
from repro.harness.sweep import MODEL_VERSION, SweepEngine
from repro.obs.runlog import git_sha
from repro.sim import Simulator, Store, collect_kernel_stats
from repro.sim import _reference
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=40.0)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "kernel_baseline.json"


def _series(figure):
    return [(series.label, series.points) for series in figure.series]


def test_sweep_parallel_matches_serial_bit_for_bit(tmp_path):
    """Acceptance: figN(scale="quick") is identical between jobs=1 and
    jobs>1 execution, point by point."""
    serial = fig3(
        "quick", engine=SweepEngine(jobs=1, cache_dir=tmp_path / "serial")
    )
    parallel = fig3(
        "quick", engine=SweepEngine(jobs=4, cache_dir=tmp_path / "parallel")
    )
    assert _series(serial) == _series(parallel)


def test_sweep_warm_cache_runs_zero_simulations(tmp_path):
    """Acceptance: a repeated warm-cache figure run performs zero
    simulations (cache-hit counters) and is dramatically faster."""
    cache_dir = tmp_path / "cache"
    cold_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    cold = fig3("quick", engine=cold_engine)
    cold_s = time.perf_counter() - started
    assert cold_engine.last_stats["simulated"] == cold_engine.last_stats["unique"]

    warm_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    warm = fig3("quick", engine=warm_engine)
    warm_s = time.perf_counter() - started

    assert warm_engine.last_stats["simulated"] == 0
    assert (
        warm_engine.last_stats["cache_hits"]
        == warm_engine.last_stats["unique"]
    )
    assert warm_engine.stats()["cache_misses"] == 0
    assert _series(warm) == _series(cold)
    assert warm_s < cold_s / 5


def _event_loop(simulator_cls, store_cls, items=10_000):
    """The canonical kernel workload: a producer/consumer pair
    exchanging ``items`` values through a bounded Store."""
    sim = simulator_cls()
    store = store_cls(sim, capacity=16)

    def producer():
        for i in range(items):
            yield store.put(i)

    def consumer():
        total = 0
        for _ in range(items):
            total += yield store.get()
        return total

    sim.process(producer())
    done = sim.process(consumer())
    return sim.run(done)


def _paired_speedup(fn_ref, fn_new, repeats=15):
    """Speedup of ``fn_new`` over ``fn_ref``, robust to frequency drift.

    The reps alternate ref/new so clock-speed drift hits both sides of
    each pair equally, and the estimate is the *median of per-pair
    ratios* -- a single slow outlier rep cannot move it the way it
    moves a best-of-N comparison.  Returns (speedup, best_ref, best_new).
    """
    import statistics

    ratios = []
    best_ref = best_new = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn_ref()
        ref_s = time.perf_counter() - started
        started = time.perf_counter()
        fn_new()
        new_s = time.perf_counter() - started
        ratios.append(ref_s / new_s)
        best_ref = min(best_ref, ref_s)
        best_new = min(best_new, new_s)
    return statistics.median(ratios), best_ref, best_new


def test_event_loop_throughput(benchmark):
    """Raw kernel: a producer/consumer pair exchanging 10k items."""
    result = benchmark(lambda: _event_loop(Simulator, Store))
    assert result == sum(range(10_000))


def test_kernel_speedup_vs_reference_writes_bench_json():
    """Acceptance: the fast-path kernel sustains >=2x the events/sec of
    the frozen pre-optimization kernel (``repro.sim._reference``).

    Both kernels run the identical workload back to back on the same
    machine, so the ratio is immune to the CPU-frequency drift that
    makes absolute wall times incomparable across runs.  The outcome is
    written to ``benchmarks/results/BENCH_kernel.json`` so the perf
    trajectory is tracked PR-over-PR; CI compares it against the
    committed ``benchmarks/kernel_baseline.json``.
    """
    run_new = lambda: _event_loop(Simulator, Store)
    run_ref = lambda: _event_loop(_reference.Simulator, _reference.Store)
    # Warm both code paths before timing.
    assert run_new() == run_ref() == sum(range(10_000))

    speedup, ref_wall, new_wall = _paired_speedup(run_ref, run_new)
    with collect_kernel_stats() as kernel:
        _event_loop(Simulator, Store)
    stats = kernel.stats()
    events = stats["events_fired"]

    baseline = json.loads(BASELINE_PATH.read_text())
    payload = {
        "schema": "repro-kernel-bench-v2",
        # Provenance: which commit and model produced these numbers.
        "git_sha": git_sha(),
        "model_version": MODEL_VERSION,
        "workload": "event_loop (producer/consumer, 10k items, Store cap 16)",
        "reference": {
            "wall_s": ref_wall,
            "events_per_sec": events / ref_wall,
        },
        "current": {
            "wall_s": new_wall,
            "events_per_sec": events / new_wall,
            "events_fired": events,
            "heap_pushes": stats["heap_pushes"],
            "heap_pops": stats["heap_pops"],
            "runq_bypasses": stats["runq_bypasses"],
            "bypass_ratio": kernel.bypass_ratio,
        },
        "speedup_vs_reference": speedup,
        "speedup_estimator": "median of per-pair wall ratios (15 pairs)",
        "baseline_speedup_vs_reference": baseline["speedup_vs_reference"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Soft floor everywhere (noise-proof); the full gate -- >=2x over the
    # reference and within 30% of the committed baseline's events/sec
    # ratio -- is enforced where timing is controlled (CI sets
    # REPRO_KERNEL_BENCH_ENFORCE=1).
    assert speedup >= 1.3, f"kernel speedup collapsed: {speedup:.2f}x"
    if os.environ.get("REPRO_KERNEL_BENCH_ENFORCE"):
        floor = max(2.0, 0.7 * baseline["speedup_vs_reference"])
        assert speedup >= floor, (
            f"events/sec regression: {speedup:.2f}x vs reference, floor "
            f"{floor:.2f}x (baseline {baseline['speedup_vs_reference']:.2f}x)"
        )


def test_prefetch_system_throughput(benchmark):
    """A full platform simulating 50 us of a 10-thread prefetch run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=10,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100


def test_swq_system_throughput(benchmark):
    """A full platform simulating 50 us of a 16-thread SWQ run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE,
            threads_per_core=16,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100
