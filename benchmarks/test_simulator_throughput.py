"""Meta-benchmark: wall-clock throughput of the simulator itself.

Not a paper figure -- this guards against performance regressions in
the discrete-event kernel, which every experiment's runtime depends
on, and against regressions in the sweep engine's caching (a warm
figure rerun must perform zero simulations).  The kernel benchmarks
use pytest-benchmark's normal timing loop; the sweep checks time two
explicit runs because their contract is about the *second* run.
"""

import json
import os
import pathlib
import time

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import fig3
from repro.harness.sweep import MODEL_VERSION, SweepEngine
from repro.obs.runlog import git_sha
from repro.sim import Simulator, Store, collect_kernel_stats
from repro.sim import _reference
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=40.0)

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BASELINE_PATH = pathlib.Path(__file__).parent / "kernel_baseline.json"


def _series(figure):
    return [(series.label, series.points) for series in figure.series]


def test_sweep_parallel_matches_serial_bit_for_bit(tmp_path):
    """Acceptance: figN(scale="quick") is identical between jobs=1 and
    jobs>1 execution, point by point."""
    serial = fig3(
        "quick", engine=SweepEngine(jobs=1, cache_dir=tmp_path / "serial")
    )
    parallel = fig3(
        "quick", engine=SweepEngine(jobs=4, cache_dir=tmp_path / "parallel")
    )
    assert _series(serial) == _series(parallel)


def test_sweep_warm_cache_runs_zero_simulations(tmp_path):
    """Acceptance: a repeated warm-cache figure run performs zero
    simulations (cache-hit counters) and is dramatically faster."""
    cache_dir = tmp_path / "cache"
    cold_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    cold = fig3("quick", engine=cold_engine)
    cold_s = time.perf_counter() - started
    assert cold_engine.last_stats["simulated"] == cold_engine.last_stats["unique"]

    warm_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    warm = fig3("quick", engine=warm_engine)
    warm_s = time.perf_counter() - started

    assert warm_engine.last_stats["simulated"] == 0
    assert (
        warm_engine.last_stats["cache_hits"]
        == warm_engine.last_stats["unique"]
    )
    assert warm_engine.stats()["cache_misses"] == 0
    assert _series(warm) == _series(cold)
    assert warm_s < cold_s / 5


def _event_loop(simulator_cls, store_cls, items=10_000):
    """The canonical kernel workload: a producer/consumer pair
    exchanging ``items`` values through a bounded Store."""
    sim = simulator_cls()
    store = store_cls(sim, capacity=16)

    def producer():
        for i in range(items):
            yield store.put(i)

    def consumer():
        total = 0
        for _ in range(items):
            total += yield store.get()
        return total

    sim.process(producer())
    done = sim.process(consumer())
    return sim.run(done)


def _timer_churn(
    simulator_cls,
    batches=2_500,
    per_batch=192,
    step=512,
    quantum=512,
    spread=3_000_000,
):
    """The timed-path stress workload: a driver posts batches of bare
    (no-waiter) timeouts with grid-quantized pseudo-random delays.

    Every event goes through the timed tier -- no same-tick bypass, no
    process resume per event -- so the scheduler's push/advance cost is
    the whole profile.  Delays land on a ``quantum`` grid and the driver
    steps by a multiple of it, so distinct batches collide on absolute
    ticks and the due batches exercise the calendar's FIFO ordering,
    not just its clock advance.  Pending depth reaches ~560k entries,
    deep enough that the dense (calendar-wheel) mode engages.
    """
    sim = simulator_cls()
    rng = 0x2545F491
    delays = []
    for _ in range(per_batch):
        rng = (rng * 1103515245 + 12345) & 0x7FFFFFFF
        delays.append(quantum + (rng % spread // quantum) * quantum)

    def driver():
        timeout = sim.timeout
        for _ in range(batches):
            for delay in delays:
                timeout(delay)
            yield timeout(step)

    sim.process(driver())
    sim.run()
    return sim


def _paired_speedup(fn_ref, fn_new, repeats=15):
    """Speedup of ``fn_new`` over ``fn_ref``, robust to frequency drift.

    The reps alternate ref/new so clock-speed drift hits both sides of
    each pair equally, and the estimate is the *median of per-pair
    ratios* -- a single slow outlier rep cannot move it the way it
    moves a best-of-N comparison.  GC is disabled around the timed
    region (these are plain tests, so ``--benchmark-disable-gc`` does
    not cover them) -- with ~560k live tuples pending in the churn
    workload, collector traversals otherwise dominate the measurement.
    Returns (speedup, best_ref, best_new).
    """
    import gc
    import statistics

    ratios = []
    best_ref = best_new = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            started = time.perf_counter()
            fn_ref()
            ref_s = time.perf_counter() - started
            started = time.perf_counter()
            fn_new()
            new_s = time.perf_counter() - started
            ratios.append(ref_s / new_s)
            best_ref = min(best_ref, ref_s)
            best_new = min(best_new, new_s)
            gc.collect()
    finally:
        if was_enabled:
            gc.enable()
    return statistics.median(ratios), best_ref, best_new


def test_event_loop_throughput(benchmark):
    """Raw kernel: a producer/consumer pair exchanging 10k items."""
    result = benchmark(lambda: _event_loop(Simulator, Store))
    assert result == sum(range(10_000))


def test_timer_churn_throughput(benchmark):
    """Raw kernel: the timed-path stress workload (bare timer batches)."""
    sim = benchmark.pedantic(
        lambda: _timer_churn(Simulator), rounds=3, iterations=1
    )
    assert sim.kernel_stats()["heap_pops"] == sim.kernel_stats()["heap_pushes"]


def test_kernel_speedup_vs_reference_writes_bench_json():
    """Acceptance: the calendar-queue kernel sustains >=3.5x the
    events/sec of the frozen pre-optimization kernel
    (``repro.sim._reference``) on the timed-path workload, without
    giving back the PR 2 same-tick-bypass win on the event loop.

    Both kernels run the identical workload back to back on the same
    machine, so the ratio is immune to the CPU-frequency drift that
    makes absolute wall times incomparable across runs.  The outcome is
    written to ``benchmarks/results/BENCH_kernel.json`` -- stamped with
    the scheduler's own counters, so the perf trajectory *and* the
    scheduler's behavior (spills, migrations, batch sizes, mode
    switches) are tracked PR-over-PR; CI compares the speedups against
    the committed ``benchmarks/kernel_baseline.json``.
    """
    run_new_loop = lambda: _event_loop(Simulator, Store)
    run_ref_loop = lambda: _event_loop(_reference.Simulator, _reference.Store)
    run_new_churn = lambda: _timer_churn(Simulator)
    run_ref_churn = lambda: _timer_churn(_reference.Simulator)
    # Warm all code paths before timing.
    assert run_new_loop() == run_ref_loop() == sum(range(10_000))
    run_new_churn(), run_ref_churn()

    loop_speedup, loop_ref_wall, loop_new_wall = _paired_speedup(
        run_ref_loop, run_new_loop
    )
    # The churn pair is ~3 s per rep on the reference side: 5 pairs keep
    # the median estimator while staying benchmark-sized.
    churn_speedup, churn_ref_wall, churn_new_wall = _paired_speedup(
        run_ref_churn, run_new_churn, repeats=5
    )

    with collect_kernel_stats() as kernel:
        _event_loop(Simulator, Store)
    loop_stats = kernel.stats()
    scheduler = _timer_churn(Simulator).kernel_stats()
    scheduler.pop("pending_events")
    churn_events = scheduler["events_fired"]

    baseline = json.loads(BASELINE_PATH.read_text())
    payload = {
        "schema": "repro-kernel-bench-v3",
        # Provenance: which commit and model produced these numbers.
        "git_sha": git_sha(),
        "model_version": MODEL_VERSION,
        # Headline: the timed path, where the calendar queue lives.
        "speedup_vs_reference": churn_speedup,
        "speedup_estimator": "median of per-pair wall ratios",
        "workloads": {
            "event_loop": {
                "workload": (
                    "event_loop (producer/consumer, 10k items, Store cap 16)"
                ),
                "speedup_vs_reference": loop_speedup,
                "reference": {
                    "wall_s": loop_ref_wall,
                    "events_per_sec": loop_stats["events_fired"]
                    / loop_ref_wall,
                },
                "current": {
                    "wall_s": loop_new_wall,
                    "events_per_sec": loop_stats["events_fired"]
                    / loop_new_wall,
                    "events_fired": loop_stats["events_fired"],
                    "heap_pushes": loop_stats["heap_pushes"],
                    "heap_pops": loop_stats["heap_pops"],
                    "runq_bypasses": loop_stats["runq_bypasses"],
                    "bypass_ratio": kernel.bypass_ratio,
                },
            },
            "timer_churn": {
                "workload": (
                    "timer_churn (2500 batches x 192 bare grid-quantized "
                    "timers, ~560k peak pending)"
                ),
                "speedup_vs_reference": churn_speedup,
                "reference": {
                    "wall_s": churn_ref_wall,
                    "events_per_sec": churn_events / churn_ref_wall,
                },
                "current": {
                    "wall_s": churn_new_wall,
                    "events_per_sec": churn_events / churn_new_wall,
                    "scheduler": scheduler,
                },
            },
        },
        "baseline_speedup_vs_reference": baseline["speedup_vs_reference"],
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    # Soft floors everywhere (noise-proof); the full gate -- >=3.5x on
    # the timed path, within 30% of each committed baseline ratio -- is
    # enforced where timing is controlled (CI sets
    # REPRO_KERNEL_BENCH_ENFORCE=1).
    assert churn_speedup >= 1.3, (
        f"timed-path speedup collapsed: {churn_speedup:.2f}x"
    )
    assert loop_speedup >= 1.0, (
        f"event-loop speedup collapsed: {loop_speedup:.2f}x"
    )
    if os.environ.get("REPRO_KERNEL_BENCH_ENFORCE"):
        churn_base = baseline["workloads"]["timer_churn"][
            "speedup_vs_reference"
        ]
        churn_floor = max(3.5, 0.7 * churn_base)
        assert churn_speedup >= churn_floor, (
            f"timed-path regression: {churn_speedup:.2f}x vs reference, "
            f"floor {churn_floor:.2f}x (baseline {churn_base:.2f}x)"
        )
        loop_base = baseline["workloads"]["event_loop"][
            "speedup_vs_reference"
        ]
        loop_floor = max(1.5, 0.7 * loop_base)
        assert loop_speedup >= loop_floor, (
            f"event-loop regression: {loop_speedup:.2f}x vs reference, "
            f"floor {loop_floor:.2f}x (baseline {loop_base:.2f}x)"
        )


def test_prefetch_system_throughput(benchmark):
    """A full platform simulating 50 us of a 10-thread prefetch run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=10,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100


def test_swq_system_throughput(benchmark):
    """A full platform simulating 50 us of a 16-thread SWQ run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE,
            threads_per_core=16,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100
