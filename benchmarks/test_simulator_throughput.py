"""Meta-benchmark: wall-clock throughput of the simulator itself.

Not a paper figure -- this guards against performance regressions in
the discrete-event kernel, which every experiment's runtime depends
on.  Unlike the figure benchmarks (pedantic, one round), these use
pytest-benchmark's normal timing loop.
"""

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.sim import Simulator, Store
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=40.0)


def test_event_loop_throughput(benchmark):
    """Raw kernel: a producer/consumer pair exchanging 10k items."""

    def run():
        sim = Simulator()
        store = Store(sim, capacity=16)

        def producer():
            for i in range(10_000):
                yield store.put(i)

        def consumer():
            total = 0
            for _ in range(10_000):
                total += yield store.get()
            return total

        sim.process(producer())
        done = sim.process(consumer())
        return sim.run(done)

    result = benchmark(run)
    assert result == sum(range(10_000))


def test_prefetch_system_throughput(benchmark):
    """A full platform simulating 50 us of a 10-thread prefetch run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=10,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100


def test_swq_system_throughput(benchmark):
    """A full platform simulating 50 us of a 16-thread SWQ run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE,
            threads_per_core=16,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100
