"""Meta-benchmark: wall-clock throughput of the simulator itself.

Not a paper figure -- this guards against performance regressions in
the discrete-event kernel, which every experiment's runtime depends
on, and against regressions in the sweep engine's caching (a warm
figure rerun must perform zero simulations).  The kernel benchmarks
use pytest-benchmark's normal timing loop; the sweep checks time two
explicit runs because their contract is about the *second* run.
"""

import time

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import fig3
from repro.harness.sweep import SweepEngine
from repro.sim import Simulator, Store
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=10.0, measure_us=40.0)


def _series(figure):
    return [(series.label, series.points) for series in figure.series]


def test_sweep_parallel_matches_serial_bit_for_bit(tmp_path):
    """Acceptance: figN(scale="quick") is identical between jobs=1 and
    jobs>1 execution, point by point."""
    serial = fig3(
        "quick", engine=SweepEngine(jobs=1, cache_dir=tmp_path / "serial")
    )
    parallel = fig3(
        "quick", engine=SweepEngine(jobs=4, cache_dir=tmp_path / "parallel")
    )
    assert _series(serial) == _series(parallel)


def test_sweep_warm_cache_runs_zero_simulations(tmp_path):
    """Acceptance: a repeated warm-cache figure run performs zero
    simulations (cache-hit counters) and is dramatically faster."""
    cache_dir = tmp_path / "cache"
    cold_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    cold = fig3("quick", engine=cold_engine)
    cold_s = time.perf_counter() - started
    assert cold_engine.last_stats["simulated"] == cold_engine.last_stats["unique"]

    warm_engine = SweepEngine(jobs=1, cache_dir=cache_dir)
    started = time.perf_counter()
    warm = fig3("quick", engine=warm_engine)
    warm_s = time.perf_counter() - started

    assert warm_engine.last_stats["simulated"] == 0
    assert (
        warm_engine.last_stats["cache_hits"]
        == warm_engine.last_stats["unique"]
    )
    assert warm_engine.stats()["cache_misses"] == 0
    assert _series(warm) == _series(cold)
    assert warm_s < cold_s / 5


def test_event_loop_throughput(benchmark):
    """Raw kernel: a producer/consumer pair exchanging 10k items."""

    def run():
        sim = Simulator()
        store = Store(sim, capacity=16)

        def producer():
            for i in range(10_000):
                yield store.put(i)

        def consumer():
            total = 0
            for _ in range(10_000):
                total += yield store.get()
            return total

        sim.process(producer())
        done = sim.process(consumer())
        return sim.run(done)

    result = benchmark(run)
    assert result == sum(range(10_000))


def test_prefetch_system_throughput(benchmark):
    """A full platform simulating 50 us of a 10-thread prefetch run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.PREFETCH,
            threads_per_core=10,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100


def test_swq_system_throughput(benchmark):
    """A full platform simulating 50 us of a 16-thread SWQ run."""

    def run():
        config = SystemConfig(
            mechanism=AccessMechanism.SOFTWARE_QUEUE,
            threads_per_core=16,
            device=DeviceConfig(total_latency_us=1.0),
        )
        return run_microbench(config, MicrobenchSpec(work_count=200), WINDOW)

    result = benchmark(run)
    assert result.stats.accesses > 100
