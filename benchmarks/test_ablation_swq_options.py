"""Ablation: the SWQ interface optimizations (section III-A).

"An application-managed software queue, with a doorbell-request flag
and burst request reads, is in fact the best software-managed queue
design ... we experimented with mechanisms lacking one or both of
these optimizations and found them to be strictly inferior."
"""

import pytest

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=40.0, measure_us=120.0)
SPEC = MicrobenchSpec(work_count=200)

VARIANTS = {
    "both-opts": SwqConfig(),
    "no-doorbell-flag": SwqConfig(doorbell_flag=False),
    "no-burst-reads": SwqConfig(burst_reads=False),
    "neither": SwqConfig(doorbell_flag=False, burst_reads=False),
}


def sweep(scale):
    figure = FigureResult(
        "ablation-swq-opts",
        "SWQ doorbell-flag / burst-read optimizations at 1us",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    threads_grid = (8, 16, 24, 32) if scale == "full" else (16, 32)
    for label, swq in VARIANTS.items():
        line = figure.new_series(label)
        for threads in threads_grid:
            config = SystemConfig(
                mechanism=AccessMechanism.SOFTWARE_QUEUE,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=1.0),
                swq=swq,
            )
            value, _ = normalized_microbench(config, SPEC, WINDOW)
            line.add(threads, value)
    return figure


def test_swq_optimizations_are_strictly_superior(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    best = figure.get("both-opts").peak()
    for label in ("no-doorbell-flag", "no-burst-reads", "neither"):
        assert figure.get(label).peak() <= best * 1.02, label
    # Dropping both is clearly worse, not a wash.
    assert figure.get("neither").peak() < 0.9 * best
