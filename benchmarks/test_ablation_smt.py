"""Ablation: SMT for on-demand accesses (section III-B).

"SMT offers an additional benefit for on-demand accesses by allowing a
core to make progress in one context while another context is blocked
on a long-latency access ... however, the number of hardware contexts
is limited (with only two contexts per core available in the majority
of today's commodity server hardware), limiting the utility of this
mechanism."

SMT doubles on-demand throughput -- and still leaves it an order of
magnitude from the DRAM baseline, which takes 10+ contexts' worth of
parallelism to reach (the prefetch mechanism's whole point).
"""

import pytest

from repro.config import AccessMechanism, CpuConfig, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.figures import FigureResult
from repro.workloads.microbench import MicrobenchSpec

WINDOW = MeasureWindow(warmup_us=30.0, measure_us=100.0)
SPEC = MicrobenchSpec(work_count=200)


def run_smt(contexts, mechanism=AccessMechanism.ON_DEMAND, threads=1):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=threads,
        cpu=CpuConfig(smt_contexts=contexts),
        device=DeviceConfig(total_latency_us=1.0),
    )
    return run_microbench(config, SPEC, WINDOW).work_ipc


def sweep(scale):
    figure = FigureResult(
        "ablation-smt",
        "SMT contexts vs on-demand device access at 1us",
        xlabel="hardware contexts",
        ylabel="work IPC (absolute)",
    )
    line = figure.new_series("on-demand")
    contexts_grid = (1, 2, 4) if scale == "full" else (1, 2)
    for contexts in contexts_grid:
        line.add(contexts, run_smt(contexts))
    reference = figure.new_series("prefetch/10-threads (1 context)")
    reference.add(1, run_smt(1, AccessMechanism.PREFETCH, threads=10))
    return figure


def test_smt_helps_on_demand_but_not_enough(benchmark, scale, publish):
    figure = benchmark.pedantic(sweep, args=(scale,), rounds=1, iterations=1)
    publish(figure)
    on_demand = figure.get("on-demand")
    # Two contexts roughly double on-demand throughput...
    assert on_demand.y_at(2) == pytest.approx(2 * on_demand.y_at(1), rel=0.15)
    # ...but remain far below what prefetch + 10 user threads achieve
    # on a single context.
    prefetch = figure.get("prefetch/10-threads (1 context)").y_at(1)
    assert prefetch > 4 * on_demand.y_at(2)
