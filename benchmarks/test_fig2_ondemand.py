"""Figure 2: on-demand access of the microsecond-latency device.

Paper: "the performance drop is abysmal ... only when there is a large
amount of work per device access (e.g., 5,000 instructions), the
performance impact is partially abated."
"""

from repro.harness.figures import fig2


def test_fig2_on_demand_access(benchmark, scale, publish):
    figure = benchmark.pedantic(fig2, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    for latency in ("1us", "2us", "4us"):
        series = figure.get(latency)
        # Abysmal at realistic work counts...
        assert series.y_at(10) < 0.15
        # ...partially abated only at 5000 instructions per access...
        assert series.y_at(5000) > 3 * series.y_at(10)
        # ...yet still below the DRAM baseline.
        assert series.peak() < 0.8
        # Monotonically improving with work-count.
        ys = series.ys()
        assert all(a <= b + 0.02 for a, b in zip(ys, ys[1:]))

    # Longer device latency is uniformly worse.
    for work in (10, 5000):
        assert (
            figure.get("1us").y_at(work)
            > figure.get("2us").y_at(work)
            > figure.get("4us").y_at(work)
        )
