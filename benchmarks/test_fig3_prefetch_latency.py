"""Figure 3: prefetch-based access with various latencies.

Paper: performance rises with thread count; "at 10 threads and 1us
device latency, the performance is similar to running the application
with data in DRAM" (marginally better); "after reaching 10 threads,
additional threads do not improve performance" (the LFB limit);
"longer device latencies result in a shallower slope".
"""

import pytest

from repro.harness.figures import fig3


def test_fig3_prefetch_with_various_latencies(benchmark, scale, publish):
    figure = benchmark.pedantic(fig3, args=(scale,), rounds=1, iterations=1)
    publish(figure)

    one_us = figure.get("1us")
    # DRAM parity (marginally above) at 10 threads.
    assert 0.95 < one_us.y_at(10) < 1.25
    # Linear-ish scaling before the limit.
    assert one_us.y_at(8) > 7 * one_us.y_at(1)
    # Plateau after 10 threads.
    assert one_us.y_at(16) == pytest.approx(one_us.y_at(10), rel=0.1)

    # Shallower slopes and proportionally lower plateaus for 2us / 4us.
    for latency, divisor in (("2us", 2), ("4us", 4)):
        series = figure.get(latency)
        assert series.y_at(16) == pytest.approx(
            one_us.y_at(16) / divisor, rel=0.2
        )
        assert series.y_at(4) < one_us.y_at(4)
