"""Setup shim for environments without PEP-517 editable-install support.

All project metadata lives in pyproject.toml; this file only enables
``pip install -e .`` on systems lacking the ``wheel`` package.
"""

from setuptools import setup

setup()
