"""Configuration dataclasses for every modeled component.

Defaults correspond to the paper's testbed: a Xeon E5-2670v3 host
(2.3 GHz, 4-wide, ~192-entry ROB, 10 line-fill buffers per core, a
14-entry shared chip-level queue on the PCIe path and a deeper one on
the DRAM path), a PCIe Gen2 x8 link (4 GB/s per direction, 24-byte TLP
headers, ~800 ns round trip) and the FPGA emulator of section IV.

All configs are frozen; deriving a variant goes through
:func:`dataclasses.replace`, so an experiment sweep can never mutate a
shared config underneath another run.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import types
import typing
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.units import Frequency, ns, us

__all__ = [
    "to_jsonable",
    "from_jsonable",
    "stable_digest",
    "AccessMechanism",
    "BackingStore",
    "DeviceAttachment",
    "CpuConfig",
    "CacheConfig",
    "UncoreConfig",
    "PcieConfig",
    "HostDramConfig",
    "OnboardDramConfig",
    "DeviceConfig",
    "SwqConfig",
    "KernelQueueConfig",
    "ThreadingConfig",
    "SystemConfig",
]


class AccessMechanism(enum.Enum):
    """The device access mechanisms studied in section III."""

    #: Plain loads to a memory-mapped device (section III-B, "On-Demand").
    ON_DEMAND = "on-demand"
    #: prefetcht0 + user-level context switch (Listing 1).
    PREFETCH = "prefetch"
    #: Application-managed in-memory descriptor queues (section III-A).
    SOFTWARE_QUEUE = "software-queue"
    #: Kernel-managed queues (syscall + interrupt); reasoned about in
    #: section III-A and shown dominated in an ablation here.
    KERNEL_QUEUE = "kernel-queue"


class BackingStore(enum.Enum):
    """Where the workload's main data structure lives."""

    #: The microsecond-latency emulated device (over PCIe).
    DEVICE = "device"
    #: Host DRAM -- the paper's baseline ("replace the device access
    #: function with a pointer dereference", section IV-C).
    DRAM = "dram"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


def to_jsonable(value: object) -> object:
    """A canonical JSON-able form of a config/spec object.

    Frozen config dataclasses, enums, and plain containers reduce to
    primitives deterministically, so the same configuration always
    serializes to the same JSON text -- the property the sweep engine's
    content-addressed result cache is built on.  Unknown types are a
    :class:`~repro.errors.ConfigError` rather than a silent
    ``repr``-based fallback, because a lossy key would let two
    different configurations share a cache entry.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field_.name: to_jsonable(getattr(value, field_.name))
            for field_ in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_jsonable(item) for key, item in sorted(value.items())}
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigError(
        f"cannot canonicalize a {type(value).__name__} for stable hashing"
    )


def from_jsonable(target: object, data: object) -> object:
    """Inverse of :func:`to_jsonable`: rebuild ``target`` from ``data``.

    ``target`` is a type annotation -- a frozen config dataclass, an
    enum, ``Optional[...]`` of either, a ``list``/``tuple`` of them, or
    a JSON primitive type.  This is what lets a sweep worker on another
    host reconstruct an executable job from the JSON description the
    work queue stores (see :mod:`repro.harness.coordinator`): the
    round trip ``from_jsonable(T, to_jsonable(x))`` returns an object
    equal to ``x`` for every config/spec type in the repo.

    Unknown shapes raise :class:`~repro.errors.ConfigError` -- a job
    that cannot be reconstructed faithfully must never execute with
    silently dropped fields, for the same reason :func:`to_jsonable`
    refuses lossy keys.
    """
    origin = typing.get_origin(target)
    if origin is typing.Union or origin is types.UnionType:
        members = [
            member
            for member in typing.get_args(target)
            if member is not type(None)
        ]
        if data is None:
            return None
        if len(members) == 1:
            return from_jsonable(members[0], data)
        raise ConfigError(
            f"cannot reconstruct ambiguous union {target!r}"
        )
    if target is object or target is typing.Any:
        return data
    if origin in (list, tuple) or target in (list, tuple):
        if not isinstance(data, (list, tuple)):
            raise ConfigError(
                f"expected a sequence for {target!r}, got {type(data).__name__}"
            )
        args = typing.get_args(target)
        if origin is tuple or target is tuple:
            if len(args) == 2 and args[1] is Ellipsis:
                item_types = [args[0]] * len(data)
            elif args:
                item_types = list(args)
            else:
                item_types = [object] * len(data)
            return tuple(
                from_jsonable(item_type, item)
                for item_type, item in zip(item_types, data)
            )
        item_type = args[0] if args else object
        return [from_jsonable(item_type, item) for item in data]
    if isinstance(target, type) and issubclass(target, enum.Enum):
        return target(data)
    if dataclasses.is_dataclass(target) and isinstance(target, type):
        if not isinstance(data, dict):
            raise ConfigError(
                f"expected a mapping for {target.__name__}, "
                f"got {type(data).__name__}"
            )
        hints = typing.get_type_hints(target)
        kwargs = {}
        for field_ in dataclasses.fields(target):
            if field_.name in data:
                kwargs[field_.name] = from_jsonable(
                    hints[field_.name], data[field_.name]
                )
        return target(**kwargs)
    if target in (int, float, bool, str) or data is None:
        return data
    raise ConfigError(
        f"cannot reconstruct a {target!r} from JSON data"
    )


def stable_digest(*parts: object) -> str:
    """SHA-256 over the canonical JSON of ``parts`` (stable across
    processes and Python versions, unlike ``hash()``)."""
    payload = json.dumps(
        [to_jsonable(part) for part in parts],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CpuConfig:
    """An approximate out-of-order core (Xeon E5-2670v3 defaults)."""

    frequency_ghz: float = 2.3
    dispatch_width: int = 4
    rob_entries: int = 192
    #: Sustained IPC of the microbenchmark's dependent "work" block
    #: (section IV-C: "limit its IPC to ~1.4 on a 4-wide machine").
    work_ipc: float = 1.4
    #: Macro-op granularity: work blocks dispatch/retire in chunks of
    #: this many instructions (model fidelity knob, not a HW feature).
    work_chunk_instructions: int = 16
    #: Line-fill buffers (MSHRs) per core; tracks outstanding misses
    #: and prefetches.  "All state-of-the-art Xeon server processors
    #: have at most 10 LFBs per core" (section V-B).
    lfb_entries: int = 10
    #: Hardware SMT contexts (the paper disables hyperthreading; an
    #: ablation here re-enables it).
    smt_contexts: int = 1
    #: Store-buffer entries per core: posted writes retire at dispatch
    #: and drain in the background (section VII: write latency "can be
    #: more easily hidden by later instructions of the same thread").
    store_buffer_entries: int = 42
    #: What a software prefetch does when every LFB is busy: wait in
    #: the reservation station until one frees (False, default -- the
    #: behaviour that yields the paper's flat >10-thread plateau) or
    #: get silently dropped (True, an ablation).
    prefetch_drop_when_full: bool = False

    def __post_init__(self) -> None:
        _require(self.frequency_ghz > 0, "frequency must be positive")
        _require(self.dispatch_width >= 1, "dispatch width must be >= 1")
        _require(self.rob_entries >= 4, "ROB must have at least 4 entries")
        _require(self.work_ipc > 0, "work IPC must be positive")
        _require(self.work_chunk_instructions >= 1, "work chunk must be >= 1")
        _require(self.lfb_entries >= 1, "need at least one line fill buffer")
        _require(self.store_buffer_entries >= 1, "need at least one store buffer entry")
        _require(self.smt_contexts in (1, 2, 4), "SMT contexts must be 1, 2 or 4")

    @property
    def frequency(self) -> Frequency:
        return Frequency(self.frequency_ghz * 1e9)


@dataclass(frozen=True)
class CacheConfig:
    """A single-level (L1) data cache; deeper levels are folded into
    the DRAM latency, which is what the paper's analysis needs."""

    line_bytes: int = 64
    sets: int = 64
    ways: int = 8
    hit_cycles: int = 4

    def __post_init__(self) -> None:
        _require(self.line_bytes >= 8, "line size must be >= 8 bytes")
        _require(self.line_bytes & (self.line_bytes - 1) == 0, "line size power of 2")
        _require(self.sets >= 1 and self.ways >= 1, "cache geometry must be positive")
        _require(self.hit_cycles >= 1, "hit latency must be >= 1 cycle")

    @property
    def capacity_bytes(self) -> int:
        return self.line_bytes * self.sets * self.ways


@dataclass(frozen=True)
class UncoreConfig:
    """Shared on-chip queues between the cores and the I/O / memory
    controllers.

    The paper measured a maximum of 14 simultaneous accesses on the
    PCIe path ("we have experimentally verified that the maximum
    occupancy of this queue is 14") and at least 48 on the DRAM path
    (section V-B).
    """

    pcie_queue_entries: int = 14
    dram_queue_entries: int = 48
    #: One-way latency between a core's L1 miss path and the edge of
    #: the chip (ring hop + controller), charged each direction.
    hop_ns: float = 10.0

    def __post_init__(self) -> None:
        _require(self.pcie_queue_entries >= 1, "PCIe-path queue must be >= 1")
        _require(self.dram_queue_entries >= 1, "DRAM-path queue must be >= 1")
        _require(self.hop_ns >= 0, "hop latency cannot be negative")


@dataclass(frozen=True)
class PcieConfig:
    """PCIe Gen2 x8: 4 GB/s per direction, 24-byte TLP overhead."""

    bandwidth_bytes_per_s: float = 4e9
    header_bytes: int = 24
    #: One-way propagation (switch + PHY) excluding serialization; the
    #: default yields the paper's ~800 ns round trip for a 64-byte read.
    propagation_ns: float = 385.0
    #: Maximum TLP payload; larger transfers split into multiple TLPs.
    max_payload_bytes: int = 256

    def __post_init__(self) -> None:
        _require(self.bandwidth_bytes_per_s > 0, "bandwidth must be positive")
        _require(self.header_bytes >= 0, "header bytes cannot be negative")
        _require(self.propagation_ns >= 0, "propagation cannot be negative")
        _require(self.max_payload_bytes >= 64, "max payload must be >= 64")


@dataclass(frozen=True)
class HostDramConfig:
    """Host DDR4: the baseline store and the home of SWQ rings.

    The latency is the full random-access path (L1 miss through L2/L3
    lookups to the DRAM array and back), which measures ~100 ns on the
    paper's Haswell generation.
    """

    latency_ns: float = 100.0
    bandwidth_bytes_per_s: float = 25.6e9

    def __post_init__(self) -> None:
        _require(self.latency_ns > 0, "DRAM latency must be positive")
        _require(self.bandwidth_bytes_per_s > 0, "DRAM bandwidth must be positive")


@dataclass(frozen=True)
class OnboardDramConfig:
    """The FPGA's on-board DDR3-800: high latency, low bandwidth.

    Slow enough that on-demand emulation from it would throttle the
    experiment -- the reason the paper built the replay mechanism
    (section IV-A).
    """

    latency_ns: float = 200.0
    bandwidth_bytes_per_s: float = 6.4e9
    #: Replay prefetch FIFO depth (lines streamed ahead of the host).
    stream_depth_lines: int = 64
    #: Trace entries fetched per bulk on-board DRAM read ("the
    #: prerecorded sequence is continuously streamed using bulk
    #: on-board DRAM accesses", section IV-A).  Bulk reads amortize the
    #: DRAM access latency; without them the stream cannot keep up.
    stream_burst_entries: int = 16

    def __post_init__(self) -> None:
        _require(self.latency_ns > 0, "on-board DRAM latency must be positive")
        _require(self.bandwidth_bytes_per_s > 0, "bandwidth must be positive")
        _require(self.stream_depth_lines >= 1, "stream depth must be >= 1")
        _require(self.stream_burst_entries >= 1, "stream burst must be >= 1")


class DeviceAttachment(enum.Enum):
    """Which interconnect the device sits on.

    The paper's evaluation uses PCIe; its implications section suggests
    the memory interconnect instead: "shared hardware queues on the
    DRAM access path are larger than on the PCIe path -- therefore,
    integrating microsecond-latency devices on the memory interconnect
    ... may be a step in the right direction" (section V-B).
    """

    #: PCIe Gen2 x8, behind the 14-entry chip-level queue (the paper's
    #: testbed).
    PCIE = "pcie"
    #: Attached like a DRAM channel (QPI/DDR-style): deeper shared
    #: queues, no TLP overhead.
    MEMORY_BUS = "memory-bus"


class DeviceMode(enum.Enum):
    """How the emulator produces response data."""

    #: Serve data directly from the functional backing store (our
    #: simulator is fast enough; default for experiments).
    FUNCTIONAL = "functional"
    #: Serve from a pre-recorded trace via the replay modules, with
    #: on-demand fallback -- the paper's actual methodology.
    REPLAY = "replay"


@dataclass(frozen=True)
class DeviceConfig:
    """The emulated microsecond-latency storage device."""

    #: Target end-to-end latency of an uncontended cache-line read,
    #: from the load leaving the core to data arriving back.  The paper
    #: configures the FPGA delay to include the PCIe round trip; we do
    #: the same (the delay module subtracts the modeled path latency).
    total_latency_us: float = 1.0
    mode: DeviceMode = DeviceMode.FUNCTIONAL
    attachment: DeviceAttachment = DeviceAttachment.PCIE
    #: Sliding-window size of the replay module's associative lookup.
    replay_window: int = 64
    #: Exposed BAR size (per-core partitions are carved out of this).
    bar_bytes: int = 1 << 32

    def __post_init__(self) -> None:
        _require(self.total_latency_us > 0, "device latency must be positive")
        _require(self.replay_window >= 1, "replay window must be >= 1")
        _require(self.bar_bytes >= 1 << 20, "BAR must be at least 1 MiB")

    @property
    def total_latency_ticks(self) -> int:
        return us(self.total_latency_us)


@dataclass(frozen=True)
class SwqConfig:
    """Application-managed software queue parameters (sections III-A,
    IV-A): descriptor rings in host memory, per-core doorbells, burst
    descriptor fetch, and a doorbell-request flag."""

    descriptor_bytes: int = 16
    completion_bytes: int = 16
    ring_entries: int = 256
    #: Device fetches descriptors in bursts of this many (paper: 8).
    fetch_burst: int = 8
    #: Outstanding burst DMA reads the fetcher keeps in flight ("the
    #: request fetcher continuously performs DMA reads of the request
    #: queue", section IV-A): pipelining hides the PCIe round trip of
    #: descriptor fetches.
    fetch_pipeline: int = 2
    #: Enable the doorbell-request-flag optimization (the fetcher keeps
    #: reading until the ring is empty; the host rings again only when
    #: the flag is set).  The paper found designs without it strictly
    #: inferior; an ablation here shows why.
    doorbell_flag: bool = True
    #: Enable burst descriptor reads (vs one descriptor per DMA read).
    burst_reads: bool = True
    #: Software cost of enqueuing a request: descriptor build + store,
    #: write fence, ring-index update, doorbell-flag check.  Serialized
    #: code; see ThreadingConfig.overhead_ipc.  Calibrated so the
    #: mechanism's single-core peak is ~50% of the DRAM baseline at
    #: MLP 1 (Figure 7).
    enqueue_instructions: int = 190
    #: Marginal cost of each additional descriptor enqueued in the same
    #: batch (the fence, index update, and flag check amortize --
    #: "even when the accesses are batched before a context switch" the
    #: overhead still "increases with the number of device accesses",
    #: section V-C).
    enqueue_batch_instructions: int = 50
    #: Software cost of consuming one completion entry (scan + match).
    completion_instructions: int = 45
    #: Software cost of waking the blocked thread once its batch of
    #: completions is in (ready-queue insertion, state restore).
    wakeup_instructions: int = 130
    #: Software cost of one empty poll of the completion queue.
    poll_instructions: int = 45
    #: Core-visible cost of an uncached MMIO doorbell write.
    doorbell_ns: float = 60.0

    def __post_init__(self) -> None:
        _require(self.descriptor_bytes >= 8, "descriptor must be >= 8 bytes")
        _require(self.completion_bytes >= 4, "completion must be >= 4 bytes")
        _require(self.ring_entries >= 2, "ring must have >= 2 entries")
        _require(self.ring_entries & (self.ring_entries - 1) == 0, "ring power of 2")
        _require(self.fetch_burst >= 1, "fetch burst must be >= 1")
        _require(self.fetch_pipeline >= 1, "fetch pipeline must be >= 1")
        _require(self.enqueue_instructions >= 0, "costs cannot be negative")
        _require(self.enqueue_batch_instructions >= 0, "costs cannot be negative")
        _require(self.completion_instructions >= 0, "costs cannot be negative")
        _require(self.wakeup_instructions >= 0, "costs cannot be negative")
        _require(self.poll_instructions >= 0, "costs cannot be negative")
        _require(self.doorbell_ns >= 0, "doorbell cost cannot be negative")


@dataclass(frozen=True)
class KernelQueueConfig:
    """Kernel-managed queues: syscall, kernel context switch, interrupt.

    The paper (section III-A) estimates tens of microseconds per access
    and drops the mechanism from evaluation; we keep it for the
    ablation bench.
    """

    syscall_ns: float = 500.0
    kernel_switch_ns: float = 2000.0
    interrupt_ns: float = 1500.0

    def __post_init__(self) -> None:
        _require(self.syscall_ns >= 0, "costs cannot be negative")
        _require(self.kernel_switch_ns >= 0, "costs cannot be negative")
        _require(self.interrupt_ns >= 0, "costs cannot be negative")

    @property
    def per_access_ticks(self) -> int:
        """Kernel overhead serialized onto one access (request side +
        completion side, each with a context switch)."""
        return ns(
            self.syscall_ns + 2 * self.kernel_switch_ns + self.interrupt_ns
        )


@dataclass(frozen=True)
class ThreadingConfig:
    """The user-level threading runtime (modified GNU Pth, IV-B)."""

    #: Cost of one user-mode context switch including scheduler work.
    #: "We were able to reduce the context switch overheads ... to
    #: 20-50 nanoseconds" (section IV-B).
    context_switch_ns: float = 35.0
    #: Instructions charged for issuing one prefetch + the access-API
    #: call overhead around it.
    access_call_instructions: int = 6
    #: Sustained IPC of runtime/queue-management code.  Unlike the
    #: microbenchmark's tuned work loop (1.4 on a 4-wide core),
    #: protocol code is serialized by fences, dependent loads, and
    #: branches, so it executes near one instruction per cycle.
    overhead_ipc: float = 1.0

    def __post_init__(self) -> None:
        _require(self.context_switch_ns >= 0, "switch cost cannot be negative")
        _require(self.access_call_instructions >= 0, "cost cannot be negative")
        _require(self.overhead_ipc > 0, "overhead IPC must be positive")


@dataclass(frozen=True)
class SystemConfig:
    """Everything needed to build a complete simulated platform."""

    cores: int = 1
    threads_per_core: int = 1
    mechanism: AccessMechanism = AccessMechanism.ON_DEMAND
    backing: BackingStore = BackingStore.DEVICE
    cpu: CpuConfig = field(default_factory=CpuConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    uncore: UncoreConfig = field(default_factory=UncoreConfig)
    pcie: PcieConfig = field(default_factory=PcieConfig)
    host_dram: HostDramConfig = field(default_factory=HostDramConfig)
    onboard_dram: OnboardDramConfig = field(default_factory=OnboardDramConfig)
    device: DeviceConfig = field(default_factory=DeviceConfig)
    swq: SwqConfig = field(default_factory=SwqConfig)
    kernel_queue: KernelQueueConfig = field(default_factory=KernelQueueConfig)
    threading: ThreadingConfig = field(default_factory=ThreadingConfig)

    def __post_init__(self) -> None:
        _require(self.cores >= 1, "need at least one core")
        _require(self.threads_per_core >= 1, "need at least one thread per core")
        if self.backing is BackingStore.DRAM:
            _require(
                self.mechanism is AccessMechanism.ON_DEMAND,
                "the DRAM baseline uses plain on-demand loads "
                "(the paper replaces dev_access with a pointer dereference)",
            )

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy with ``changes`` applied (sweep helper)."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> str:
        """One-line human-readable summary for logs and reports."""
        lat = self.device.total_latency_us
        return (
            f"{self.mechanism.value} x{self.cores}core x{self.threads_per_core}thr "
            f"{'DRAM' if self.backing is BackingStore.DRAM else f'{lat:g}us device'}"
        )
