"""Exception hierarchy for the reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class SimulationError(ReproError):
    """Raised for misuse of the discrete-event simulation kernel."""


class ConfigError(ReproError):
    """Raised when a model configuration is invalid or inconsistent."""


class ProtocolError(ReproError):
    """Raised when a device/host protocol invariant is violated.

    Examples: a completion for a request that was never issued, a
    doorbell write to an unmapped register, or a descriptor ring
    overflow.
    """


class AddressError(ReproError):
    """Raised for accesses outside any mapped address region."""


class ReplayError(ReproError):
    """Raised when the replay module cannot serve a request stream."""
