"""PCIe transaction-layer packet (TLP) definitions.

The paper's section V-C bandwidth analysis is an exercise in TLP
accounting: a 64-byte payload carries a 24-byte header (38% overhead),
and the software-queue protocol multiplies the number of TLPs per
useful access (descriptor reads, data writes, completion writes).  We
therefore model every individual TLP.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["TlpKind", "Tlp"]

_tlp_ids = itertools.count()


class TlpKind(enum.Enum):
    """Transaction types used by the emulator's protocols."""

    #: Memory read request (no payload).  Host->device for MMIO loads;
    #: device->host for descriptor DMA reads.
    MEM_READ = "MRd"
    #: Completion with data (payload = data read).
    COMPLETION = "CplD"
    #: Posted memory write (payload = data written).  Host->device for
    #: doorbells; device->host for response data and completion-queue
    #: entries.
    MEM_WRITE = "MWr"


@dataclass
class Tlp:
    """One transaction-layer packet.

    ``payload_bytes`` is the useful data carried; the wire also carries
    the per-TLP header, accounted by the link model.  ``tag`` matches a
    completion to its request.  ``data`` carries functional content
    (line bytes, descriptors) and ``context`` lets the sender attach an
    arbitrary routing/bookkeeping object.
    """

    kind: TlpKind
    address: int
    payload_bytes: int
    tag: int = field(default_factory=lambda: next(_tlp_ids))
    requester: str = ""
    data: Any = None
    context: Any = None
    #: Filled by the link: simulation time the packet entered the wire.
    sent_at: Optional[int] = None

    def __post_init__(self) -> None:
        if self.payload_bytes < 0:
            raise ValueError("payload size cannot be negative")
        if self.kind is TlpKind.MEM_READ and self.payload_bytes != 0:
            raise ValueError("read requests carry no payload")

    def wire_bytes(self, header_bytes: int) -> int:
        """Total bytes this packet occupies on the link."""
        return header_bytes + self.payload_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tlp {self.kind.value} tag={self.tag} addr={self.address:#x} "
            f"payload={self.payload_bytes}B>"
        )
