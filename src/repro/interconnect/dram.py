"""DRAM channel models (host DDR4 and the FPGA's on-board DDR3).

A channel pipelines requests: the data bus serializes transfers at the
configured bandwidth, and each transfer completes a fixed access
latency after its bus slot.  This captures the two properties the
paper's analysis depends on: bounded bandwidth and a fixed random
access latency, with concurrency limited upstream (by the uncore
queue for host DRAM, by the streaming design for on-board DRAM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.sim import Event, Simulator, Store
from repro.sim.trace import TimeWeighted
from repro.units import transfer_ticks

__all__ = ["DramChannel"]


@dataclass
class _DramRequest:
    num_bytes: int
    done: Event
    value: Any
    #: Posted writes complete at the end of their bus slot; reads add
    #: the array access latency.
    include_latency: bool = True


class DramChannel:
    """A bandwidth-limited, fixed-latency memory channel.

    ``access(num_bytes)`` returns an event that fires when the data is
    available.  Requests occupy the data bus FIFO for their transfer
    time; completion fires ``latency`` ticks after the bus slot ends.
    """

    def __init__(
        self,
        sim: Simulator,
        latency_ticks: int,
        bandwidth_bytes_per_s: float,
        name: str = "dram",
    ) -> None:
        if latency_ticks < 0:
            raise ConfigError(f"{name}: negative latency {latency_ticks}")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigError(f"{name}: bandwidth must be positive")
        self.sim = sim
        self.name = name
        self.latency_ticks = latency_ticks
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self._queue: Store = Store(sim, name=f"{name}-q")
        self.utilization = TimeWeighted(f"{name}-util")
        # Anchor at construction so idle time from t=0 counts in the
        # mean (the probe otherwise starts at its first update).
        self.utilization.update(sim.now, 0.0)
        self.bytes_transferred = 0
        self.accesses = 0
        sim.process(self._pump(), name=f"{name}-pump")

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.bytes_transferred", lambda: self.bytes_transferred
        )
        registry.register(f"{prefix}.accesses", lambda: self.accesses)
        registry.register(f"{prefix}.queued", lambda: self.queued)
        registry.register(f"{prefix}.util", self.utilization)

    def access(self, num_bytes: int, value: Any = None) -> Event:
        """Read or write ``num_bytes``; the event fires with ``value``
        when the transfer completes."""
        if num_bytes <= 0:
            raise ConfigError(f"{self.name}: access of {num_bytes} bytes")
        done = Event(self.sim)
        self._queue.put(_DramRequest(num_bytes, done, value))
        return done

    def post_write(self, num_bytes: int) -> Event:
        """A posted write: the event fires once the bus slot ends (the
        caller does not wait for the array update)."""
        if num_bytes <= 0:
            raise ConfigError(f"{self.name}: write of {num_bytes} bytes")
        done = Event(self.sim)
        self._queue.put(_DramRequest(num_bytes, done, None, include_latency=False))
        return done

    def _pump(self):
        while True:
            request = yield self._queue.get()
            self.utilization.update(self.sim.now, 1.0)
            yield self.sim.timeout(
                transfer_ticks(request.num_bytes, self.bandwidth_bytes_per_s)
            )
            self.utilization.update(self.sim.now, 0.0)
            self.bytes_transferred += request.num_bytes
            self.accesses += 1
            latency = self.latency_ticks if request.include_latency else 0
            self.sim._schedule_value(request.done, latency, request.value)

    @property
    def queued(self) -> int:
        return len(self._queue)
