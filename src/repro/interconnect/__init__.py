"""Interconnect models: PCIe link, host DRAM, FPGA on-board DRAM."""

from repro.interconnect.dram import DramChannel
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieDirection, PcieLink

__all__ = ["DramChannel", "Tlp", "TlpKind", "PcieDirection", "PcieLink"]
