"""A PCIe link model: two simplex byte-serialized channels.

Each direction serializes packets FIFO at the configured bandwidth and
delivers them after a fixed propagation delay.  Per-TLP header bytes
are charged on the wire, so protocols that use many small packets (the
software-managed queue of section V-C) pay the paper's observed ~38%+
overhead and saturate the link at a fraction of its payload capacity.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.config import PcieConfig
from repro.errors import ProtocolError
from repro.interconnect.packets import Tlp
from repro.sim import Simulator, Store
from repro.sim.trace import TimeWeighted
from repro.units import ns, transfer_ticks

__all__ = ["PcieDirection", "PcieLink"]

Receiver = Callable[[Tlp], None]


class PcieDirection:
    """One simplex channel (downstream: host->device, or upstream)."""

    def __init__(
        self,
        sim: Simulator,
        config: PcieConfig,
        name: str,
    ) -> None:
        self.sim = sim
        self.config = config
        self.name = name
        self._queue: Store = Store(sim, name=f"{name}-txq")
        self._receiver: Optional[Receiver] = None
        self.utilization = TimeWeighted(f"{name}-util")
        # Anchor the time-weighted mean at construction: the channel is
        # *idle* from t=0, and that idle time belongs in the mean (the
        # probe otherwise starts its clock at the first transmission).
        self.utilization.update(sim.now, 0.0)
        # Accounting for the bandwidth analysis of section V-C.
        self.wire_bytes = 0
        self.payload_bytes = 0
        self.packets = 0
        self.packets_by_kind: dict[str, int] = {}
        # TLP conservation accounting for the invariant monitor:
        # ``tlps_sent == packets serialized + queued + (0|1 in the
        # pump)`` and ``tlps_delivered <= packets`` at any stable tick.
        self.tlps_sent = 0
        self.tlps_delivered = 0
        #: Optional observability hooks (None keeps hot paths untouched).
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid_wire = 0
        self._trace_tid_prop = 0
        sim.process(self._pump(), name=f"pcie-{name}")

    def attach_tracer(
        self, tracer, pid: int, tid_wire: int, tid_prop: int
    ) -> None:
        """Wire tids: serialization slices on ``tid_wire``; in-flight
        propagation (which overlaps across TLPs) on ``tid_prop``."""
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid_wire = tid_wire
        self._trace_tid_prop = tid_prop

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(f"{prefix}.wire_bytes", lambda: self.wire_bytes)
        registry.register(f"{prefix}.payload_bytes", lambda: self.payload_bytes)
        registry.register(f"{prefix}.packets", lambda: self.packets)
        registry.register(f"{prefix}.tlps_sent", lambda: self.tlps_sent)
        registry.register(
            f"{prefix}.tlps_delivered", lambda: self.tlps_delivered
        )
        registry.register(
            f"{prefix}.packets_by_kind", lambda: dict(self.packets_by_kind)
        )
        registry.register(
            f"{prefix}.useful_fraction", lambda: self.useful_fraction()
        )
        registry.register(f"{prefix}.util", self.utilization)

    def set_receiver(self, receiver: Receiver) -> None:
        """Register the single delivery callback for this direction."""
        if self._receiver is not None:
            raise ProtocolError(f"{self.name}: receiver already attached")
        self._receiver = receiver

    def send(self, tlp: Tlp) -> None:
        """Enqueue ``tlp`` for transmission (never blocks the sender --
        posted semantics; backpressure appears as queueing delay)."""
        tlp.sent_at = self.sim.now
        self.tlps_sent += 1
        self._queue.put(tlp)

    def _pump(self):
        propagation = ns(self.config.propagation_ns)
        while True:
            tlp = yield self._queue.get()
            if self._receiver is None:
                raise ProtocolError(f"{self.name}: packet sent with no receiver")
            size = tlp.wire_bytes(self.config.header_bytes)
            serialize_start = self.sim.now
            self.utilization.update(serialize_start, 1.0)
            tracer = self.tracer
            if tracer is not None:
                tracer.counter(
                    "pcie",
                    self._trace_pid,
                    f"{self.name}.txq",
                    serialize_start,
                    {"queued": len(self._queue), "busy": 1},
                )
            yield self.sim.timeout(
                transfer_ticks(size, self.config.bandwidth_bytes_per_s)
            )
            now = self.sim.now
            self.utilization.update(now, 0.0)
            self.wire_bytes += size
            self.payload_bytes += tlp.payload_bytes
            self.packets += 1
            kind = tlp.kind.value
            self.packets_by_kind[kind] = self.packets_by_kind.get(kind, 0) + 1
            if tracer is not None:
                tracer.complete(
                    "pcie",
                    self._trace_pid,
                    self._trace_tid_wire,
                    f"tlp-{kind}",
                    serialize_start,
                    now,
                    args={
                        "wire_bytes": size,
                        "payload_bytes": tlp.payload_bytes,
                        "queued_ticks": serialize_start - tlp.sent_at,
                    },
                )
                tracer.complete(
                    "pcie",
                    self._trace_pid,
                    self._trace_tid_prop,
                    f"prop-{kind}",
                    now,
                    now + propagation,
                )
                tracer.counter(
                    "pcie",
                    self._trace_pid,
                    f"{self.name}.txq",
                    now,
                    {"queued": len(self._queue), "busy": 0},
                )
            delivery = self.sim.timeout(propagation)
            delivery.add_callback(self._deliver(tlp))

    def _deliver(self, tlp: Tlp):
        def callback(_event) -> None:
            assert self._receiver is not None
            self.tlps_delivered += 1
            self._receiver(tlp)

        return callback

    @property
    def queued(self) -> int:
        return len(self._queue)

    def useful_fraction(self) -> float:
        """Payload bytes / wire bytes delivered so far."""
        if self.wire_bytes == 0:
            return 0.0
        return self.payload_bytes / self.wire_bytes


class PcieLink:
    """A full-duplex link: ``downstream`` (host->device) + ``upstream``."""

    def __init__(self, sim: Simulator, config: PcieConfig) -> None:
        self.sim = sim
        self.config = config
        self.downstream = PcieDirection(sim, config, "downstream")
        self.upstream = PcieDirection(sim, config, "upstream")

    def register_metrics(self, registry, prefix: str) -> None:
        self.downstream.register_metrics(registry, f"{prefix}.downstream")
        self.upstream.register_metrics(registry, f"{prefix}.upstream")

    def round_trip_ticks(self, response_payload_bytes: int) -> int:
        """Uncontended round trip of a read: request serialization +
        propagation each way + completion serialization."""
        request = transfer_ticks(
            self.config.header_bytes, self.config.bandwidth_bytes_per_s
        )
        completion = transfer_ticks(
            self.config.header_bytes + response_payload_bytes,
            self.config.bandwidth_bytes_per_s,
        )
        return request + completion + 2 * ns(self.config.propagation_ns)

    def total_payload_bytes(self) -> int:
        return self.downstream.payload_bytes + self.upstream.payload_bytes

    def total_wire_bytes(self) -> int:
        return self.downstream.wire_bytes + self.upstream.wire_bytes
