"""User-level threads and the control effects they yield.

The paper's support software (section IV-B) is a heavily optimized GNU
Pth: cooperative user-level threads multiplexed on each core, with a
20-50 ns context switch.  Here a user thread is a Python generator
driven by its core's runtime process.  A thread may yield:

* any simulation :class:`~repro.sim.Event` -- the thread (and hence
  the core) waits for it; this is how device access code expresses
  hardware waiting;
* :data:`YIELD_CONTROL` -- a cooperative switch: the scheduler charges
  the context-switch cost and runs the next ready thread;
* :class:`BlockOnCompletions` -- (queue mechanisms) deschedule until
  the device has posted ``count`` completions for this thread.

Workload code never yields these directly; it goes through the
mechanism's :class:`~repro.runtime.api.AccessContext`.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional

__all__ = ["YIELD_CONTROL", "BlockOnCompletions", "ThreadState", "UserThread"]


class _YieldControl:
    """Singleton sentinel for a cooperative context switch."""

    _instance: Optional["_YieldControl"] = None

    def __new__(cls) -> "_YieldControl":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<YIELD_CONTROL>"


#: Yield this to hand the core to the next ready thread.
YIELD_CONTROL = _YieldControl()


class BlockOnCompletions:
    """Deschedule until ``count`` completions arrive for this thread.

    The scheduler resumes the thread with the list of
    :class:`~repro.runtime.queuepair.Completion` records.
    """

    __slots__ = ("count",)

    def __init__(self, count: int) -> None:
        if count < 1:
            raise ValueError("must block on at least one completion")
        self.count = count


class ThreadState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class UserThread:
    """One cooperative thread: a generator plus scheduling state."""

    def __init__(self, thread_id: int, body: Generator) -> None:
        self.thread_id = thread_id
        self.body = body
        self.state = ThreadState.READY
        #: Value delivered at next resume (completions, event values).
        self.inbox: Any = None
        #: Completions collected while blocked.
        self.collected: list = []
        #: Completions still awaited before becoming ready again.
        self.awaiting = 0
        self.switches = 0
        self.result: Any = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<UserThread {self.thread_id} {self.state.value}>"
