"""User-level threading runtime and the device-access API."""

from repro.runtime.api import (
    AccessContext,
    KernelQueueContext,
    OnDemandContext,
    PrefetchContext,
    SoftwareQueueContext,
)
from repro.runtime.driver import CoreRuntime, SchedulerCosts
from repro.runtime.queuepair import Completion, Descriptor, QueuePair
from repro.runtime.uthread import (
    BlockOnCompletions,
    ThreadState,
    UserThread,
    YIELD_CONTROL,
)

__all__ = [
    "AccessContext",
    "BlockOnCompletions",
    "Completion",
    "CoreRuntime",
    "Descriptor",
    "KernelQueueContext",
    "OnDemandContext",
    "PrefetchContext",
    "QueuePair",
    "SchedulerCosts",
    "SoftwareQueueContext",
    "ThreadState",
    "UserThread",
    "YIELD_CONTROL",
]
