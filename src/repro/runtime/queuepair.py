"""In-memory descriptor queues for the application-managed interface.

Section IV-A: "the software puts memory access descriptors into an
in-memory Request Queue and waits for the device to update the
corresponding descriptor in an in-memory Completion Queue.  Each
descriptor contains the address to read, and the target address where
the response data is to be stored."

These objects hold the *functional* queue state (what the bytes in
host DRAM would say); all timing -- descriptor DMA reads, response and
completion writes, polling loads -- is charged by the device fetcher,
the host bridge, and the runtime around them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from repro.errors import ProtocolError

__all__ = ["Descriptor", "Completion", "QueuePair"]


@dataclass(frozen=True)
class Descriptor:
    """One request-ring entry."""

    #: The core whose ring this descriptor entered (completions go back
    #: to the same core's completion queue; datasets may be shared
    #: across cores, so the data address says nothing about the origin).
    core_id: int
    #: The user-level thread that issued the access (for wakeup).
    thread_id: int
    #: Device address to read (line-aligned by the API layer).
    device_addr: int
    #: Host-DRAM address the device writes the response line to.
    response_addr: int
    #: Fire-and-forget write: the device applies it without producing
    #: response data or a completion entry.
    is_write: bool = False


@dataclass(frozen=True)
class Completion:
    """One completion-ring entry."""

    thread_id: int
    device_addr: int
    response_addr: int
    #: Functional content of the line delivered to the response buffer.
    data: bytes
    #: Tick at which the completion's DMA write committed in host DRAM
    #: (became host-visible).  Purely observational -- the span layer
    #: uses it to split device time from completion-poll time; -1 means
    #: "not stamped" (completions built outside the emulator path).
    posted_at: int = -1


class QueuePair:
    """One core's request ring + completion ring + doorbell flag.

    The rings are bounded like the real in-memory rings; the host side
    enqueues and polls, the device side batch-reads and posts.
    """

    def __init__(self, core_id: int, entries: int) -> None:
        if entries < 2:
            raise ProtocolError("ring must have at least 2 entries")
        self.core_id = core_id
        self.entries = entries
        self._requests: Deque[Descriptor] = deque()
        self._completions: Deque[Completion] = deque()
        #: Device sets this when its fetcher went idle; the host must
        #: ring the doorbell to restart it (the doorbell-request-flag
        #: optimization of section III-A).
        self.doorbell_needed = True
        # Statistics for the ablation benches.
        self.doorbells_rung = 0
        self.descriptors_enqueued = 0
        self.completions_posted = 0
        self.max_request_depth = 0
        # Credit-conservation accounting for the invariant monitor:
        # enqueued == fetched + pending, posted == consumed + visible.
        self.descriptors_fetched = 0
        self.completions_consumed = 0
        #: Read descriptors submitted but not yet consumed as
        #: completions.  The host must keep this below ``entries`` --
        #: the completion ring is the same depth as the request ring,
        #: so submitting more reads than it can hold would overflow it
        #: (the standard SQ/CQ credit discipline).
        self.reads_outstanding = 0

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(f"{prefix}.doorbells_rung", lambda: self.doorbells_rung)
        registry.register(
            f"{prefix}.descriptors_enqueued", lambda: self.descriptors_enqueued
        )
        registry.register(
            f"{prefix}.completions_posted", lambda: self.completions_posted
        )
        registry.register(
            f"{prefix}.max_request_depth", lambda: self.max_request_depth
        )
        registry.register(
            f"{prefix}.descriptors_fetched", lambda: self.descriptors_fetched
        )
        registry.register(
            f"{prefix}.completions_consumed",
            lambda: self.completions_consumed,
        )

    # -- host side -------------------------------------------------------------

    def enqueue(self, descriptor: Descriptor) -> None:
        """Host: append a request descriptor (ring must not be full)."""
        if len(self._requests) >= self.entries:
            raise ProtocolError(
                f"request ring of core {self.core_id} overflowed "
                f"({self.entries} entries; too many threads per core?)"
            )
        self._requests.append(descriptor)
        self.descriptors_enqueued += 1
        if not descriptor.is_write:
            self.reads_outstanding += 1
        self.max_request_depth = max(self.max_request_depth, len(self._requests))

    def note_doorbell(self) -> None:
        """Host: it has rung the doorbell and cleared the flag."""
        self.doorbell_needed = False
        self.doorbells_rung += 1

    def pop_completion(self) -> Optional[Completion]:
        """Host: consume the oldest visible completion, if any."""
        if self._completions:
            self.completions_consumed += 1
            self.reads_outstanding -= 1
            return self._completions.popleft()
        return None

    @property
    def completions_visible(self) -> int:
        return len(self._completions)

    # -- device side ------------------------------------------------------------

    def device_fetch(self, max_count: int) -> list[Descriptor]:
        """Device: take up to ``max_count`` descriptors from the ring.

        Models the burst DMA read: the entries present in host memory
        at DRAM-read time are what the device observes.
        """
        if max_count < 1:
            raise ProtocolError("fetch burst must be >= 1")
        batch: list[Descriptor] = []
        while self._requests and len(batch) < max_count:
            batch.append(self._requests.popleft())
        self.descriptors_fetched += len(batch)
        return batch

    def device_set_doorbell_flag(self) -> None:
        """Device: request a doorbell before the next enqueue."""
        self.doorbell_needed = True

    def device_post_completion(self, completion: Completion) -> None:
        """Device: make a completion visible to host polling.

        Called by the host bridge when the completion-queue DMA write
        lands in DRAM -- i.e. already timed.
        """
        if len(self._completions) >= self.entries:
            raise ProtocolError(
                f"completion ring of core {self.core_id} overflowed"
            )
        self._completions.append(completion)
        self.completions_posted += 1

    @property
    def requests_pending(self) -> int:
        return len(self._requests)
