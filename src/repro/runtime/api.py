"""The device-access API: one context class per access mechanism.

The paper's library "only requires the application to use the standard
POSIX threads, and to replace pointer dereferences with calls to
dev_access(uint64*)" (section IV-B).  Correspondingly, workload code
here receives an :class:`AccessContext` and calls:

* ``value = yield from ctx.read(addr)`` -- synchronous dev_access;
* ``values = yield from ctx.read_batch(addrs)`` -- the manual batching
  used for the MLP experiments and the applications;
* ``tokens = yield from ctx.read_batch_async(addrs)`` followed by
  ``yield from ctx.work(n, after=tokens)`` -- the microbenchmark's
  "access then dependent work" loop, which lets hardware mechanisms
  overlap across loop iterations where the mechanism allows it;
* ``yield from ctx.work(n)`` -- the benign work loop.

The same workload generator runs unmodified on every mechanism (and on
the DRAM baseline), exactly the property the paper's library design
aims for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import SwqConfig, ThreadingConfig
from repro.cpu.core import LoadToken, OutOfOrderCore
from repro.cpu.uncore import AddressSpace
from repro.errors import ProtocolError
from repro.memory import FlatMemory
from repro.runtime.queuepair import Completion, Descriptor, QueuePair
from repro.runtime.uthread import BlockOnCompletions, YIELD_CONTROL
from repro.sim.trace import LatencyStat
from repro.units import ns

__all__ = [
    "AccessContext",
    "OnDemandContext",
    "PrefetchContext",
    "SoftwareQueueContext",
    "KernelQueueContext",
]


class AccessContext:
    """Common machinery: word extraction, work dispatch, bookkeeping."""

    def __init__(
        self,
        core: OutOfOrderCore,
        thread_id: int,
        space: AddressSpace,
        threading_config: ThreadingConfig,
        world: Optional[FlatMemory] = None,
    ) -> None:
        self.core = core
        self.thread_id = thread_id
        self.space = space
        self.threading_config = threading_config
        #: Functional memory for writes (reads flow data through the
        #: hardware path; writes apply in program order here).
        self.world = world
        self.accesses = 0
        self.writes = 0
        #: Thread-visible access latency (issue to data-ready), shared
        #: across a system's contexts by the builder.  The killer
        #: microsecond is a tail-latency story; this is where the tail
        #: is measured.
        self.access_latency: Optional[LatencyStat] = None
        #: Request-scoped span cursor (:class:`repro.obs.spans.
        #: RequestSpan`) of the request this thread is currently
        #: serving; the service worker points it at the active request
        #: and the mechanism paths stamp layer transitions into it.
        #: ``None`` (the default, and always the case outside span-
        #: enabled service runs) makes every stamp a no-op.
        self.span = None

    def _record_latency(self, started_at: int, tokens: Sequence[LoadToken]) -> None:
        """Record issue-to-data-ready latency once the batch lands."""
        stat = self.access_latency
        if stat is None:
            return
        sim = self.core.sim
        if not tokens:
            # Queue mechanisms: data was present when the thread woke.
            stat.record(sim.now - started_at)
            return
        remaining = len(tokens)

        def on_done(_event) -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                stat.record(sim.now - started_at)

        for token in tokens:
            token.event.add_callback(on_done)

    # -- common -------------------------------------------------------------------

    def work(self, instructions: int, after: Sequence[LoadToken] = ()):
        """The dependent work block; counts toward work IPC.

        Returns the block's completion event (most callers ignore it;
        finite workloads can wait on it before reading the clock).
        """
        deps = [token.event for token in after]
        done = yield from self.core.dispatch_work(instructions, deps=deps)
        return done

    def local_work(self, instructions: int):
        """Non-work instructions (bookkeeping the workload needs but
        the paper's work-IPC metric excludes)."""
        done = yield from self.core.dispatch_work(
            instructions, deps=(), count_as_work=False
        )
        return done

    def yield_control(self):
        """Cooperatively hand the core to the next ready thread."""
        yield YIELD_CONTROL

    def software_cost(self, instructions: int):
        """Charge runtime/protocol code: serialized (fences, dependent
        loads), so it occupies the front end at ``overhead_ipc``."""
        if instructions > 0:
            yield from self.core.busy(
                self.core.cycles(instructions / self.threading_config.overhead_ipc)
            )

    def _call_overhead(self):
        yield from self.software_cost(
            self.threading_config.access_call_instructions
        )

    @staticmethod
    def _word(token: LoadToken) -> int:
        return token.word()

    # -- per-mechanism ---------------------------------------------------------------

    def read_batch_async(self, addrs: Sequence[int]):
        """Start ``len(addrs)`` accesses; return dependence tokens.

        Mechanisms without hardware tokens (software queues) block the
        thread until the data is present and return an empty list.
        """
        raise NotImplementedError

    def read_batch(self, addrs: Sequence[int]):
        """Synchronous batched dev_access: returns the word values."""
        raise NotImplementedError

    def read(self, addr: int):
        """Synchronous dev_access(uint64*)."""
        values = yield from self.read_batch([addr])
        return values[0]

    def read_async(self, addr: int):
        tokens = yield from self.read_batch_async([addr])
        return tokens

    def write(self, addr: int, value: int):
        """Posted dev_store: update memory, account the write's timing.

        Writes are the paper's future-work path (section VII): no
        return value, off the critical path, hidden behind later
        instructions of the same thread.  Functional contents are
        applied in program order at the writing thread; concurrent
        writers to the same word are outside the modeled scope (as in
        the paper, which studies reads).
        """
        if self.world is not None:
            self.world.write_word(addr, value)
        self.writes += 1
        yield from self._timed_write(addr)

    def _timed_write(self, addr: int):
        yield from self.core.issue_store(addr, self.space)


class OnDemandContext(AccessContext):
    """Plain loads against the mapped device (or DRAM: the baseline).

    No prefetching, no threading tricks: the out-of-order core is on
    its own, exactly the configuration of Figure 2 (and, with
    ``space=DRAM``, the paper's baseline pointer dereference).
    """

    def read_batch_async(self, addrs: Sequence[int]):
        started_at = self.core.sim.now
        tokens = []
        for addr in addrs:
            token = yield from self.core.issue_load(addr, self.space)
            tokens.append(token)
        self.accesses += len(addrs)
        self._record_latency(started_at, tokens)
        return tokens

    def read_batch(self, addrs: Sequence[int]):
        # Memory-mapped mechanisms have no SQ/CQ rings: the whole
        # issue-to-data-ready window attributes to the device layer.
        span = self.span
        if span is not None:
            span.mark("device", self.core.sim.now)
        tokens = yield from self.read_batch_async(addrs)
        values = []
        for token in tokens:
            yield from self.core.wait_data(token)
            values.append(self._word(token))
        if span is not None:
            span.mark("work", self.core.sim.now)
        return values


class PrefetchContext(AccessContext):
    """Listing 1: prefetcht0, user-level context switch, then a load
    that is expected to hit in the L1 (or merge with the fill)."""

    def read_batch_async(self, addrs: Sequence[int]):
        started_at = self.core.sim.now
        yield from self._call_overhead()
        for addr in addrs:
            yield from self.core.issue_prefetch(addr, self.space)
        # One context switch after the whole batch (section V-B,
        # "a single context switch after issuing multiple prefetches").
        yield YIELD_CONTROL
        tokens = []
        for addr in addrs:
            token = yield from self.core.issue_load(addr, self.space)
            tokens.append(token)
        self.accesses += len(addrs)
        self._record_latency(started_at, tokens)
        return tokens

    def read_batch(self, addrs: Sequence[int]):
        span = self.span
        if span is not None:
            span.mark("device", self.core.sim.now)
        tokens = yield from self.read_batch_async(addrs)
        values = []
        for token in tokens:
            yield from self.core.wait_data(token)
            values.append(self._word(token))
        if span is not None:
            span.mark("work", self.core.sim.now)
        return values


class SoftwareQueueContext(AccessContext):
    """Application-managed software queues (sections III-A / IV-A).

    Enqueue a descriptor per access (software cost), ring the doorbell
    only when the device's flag asks for it, then deschedule until the
    scheduler's completion polling finds our completions.
    """

    def __init__(
        self,
        core: OutOfOrderCore,
        thread_id: int,
        space: AddressSpace,
        threading_config: ThreadingConfig,
        swq_config: SwqConfig,
        queue_pair: QueuePair,
        doorbell_addr: int,
        response_base: int,
        line_bytes: int = 64,
        world: Optional[FlatMemory] = None,
    ) -> None:
        super().__init__(core, thread_id, space, threading_config, world=world)
        self.swq_config = swq_config
        self.queue_pair = queue_pair
        self.doorbell_addr = doorbell_addr
        self.response_base = response_base
        self.line_bytes = line_bytes
        #: Response buffer capacity in lines (one slot per in-flight
        #: batched read); set by the system builder's allocation.
        self.max_batch = 8
        self._last_completions: list[Completion] = []

    def _response_slot(self, index: int) -> int:
        if index >= self.max_batch:
            raise ProtocolError(
                f"batch of more than {self.max_batch} reads overflows the "
                "thread's response buffer (raise MAX_BATCH)"
            )
        return self.response_base + index * self.line_bytes

    def _enqueue(self, addr: int, slot: int):
        cost = (
            self.swq_config.enqueue_instructions
            if slot == 0
            else self.swq_config.enqueue_batch_instructions
        )
        yield from self.software_cost(cost)
        yield from self._wait_for_ring_space()
        self.queue_pair.enqueue(
            Descriptor(
                core_id=self.queue_pair.core_id,
                thread_id=self.thread_id,
                device_addr=addr,
                response_addr=self._response_slot(slot),
            )
        )
        if self.queue_pair.doorbell_needed or not self.swq_config.doorbell_flag:
            self.queue_pair.note_doorbell()
            yield from self.core.mmio_write(
                self.doorbell_addr, 8, ns(self.swq_config.doorbell_ns)
            )

    def _wait_for_ring_space(self):
        """Spin (yielding the core) while the queue pair is full.

        Real enqueue code tail-checks the ring head; under extreme
        oversubscription the producer waits for the device's fetcher
        to drain entries rather than corrupting the ring.  The second
        condition is the SQ/CQ credit discipline: never keep more
        reads outstanding than the completion ring can hold, or the
        device's completion writes would overflow it (binding when the
        ring is undersized relative to the thread count -- exactly the
        queue-sizing experiments).
        """
        queue_pair = self.queue_pair
        while (
            queue_pair.requests_pending >= queue_pair.entries
            or queue_pair.reads_outstanding >= queue_pair.entries
        ):
            yield from self.software_cost(self.swq_config.poll_instructions)
            yield YIELD_CONTROL

    def read_batch_async(self, addrs: Sequence[int]):
        started_at = self.core.sim.now
        span = self.span
        if span is not None:
            span.mark("sq", started_at)
        for slot, addr in enumerate(addrs):
            yield from self._enqueue(addr, slot)
        if span is not None:
            span.mark("device", self.core.sim.now)
        completions = yield BlockOnCompletions(len(addrs))
        self.accesses += len(addrs)
        self._last_completions = completions
        if span is not None:
            # Device time ends when the last completion's DMA write
            # committed; the remainder until the thread resumed is the
            # completion-poll/wakeup path (``cq``).  The post can land
            # while the thread is still charged submission time (the
            # kernel queue's post-doorbell switch) -- clamp to the
            # request's own timeline: overlapped device work leaves the
            # rest of the wait as pure completion polling.
            posted = -1
            for completion in completions:
                if completion.posted_at > posted:
                    posted = completion.posted_at
            if posted >= 0:
                span.mark("cq", max(posted, span.open_at))
            span.mark("work", self.core.sim.now)
        self._record_latency(started_at, ())
        return []  # data already present; no hardware tokens

    def _timed_write(self, addr: int):
        # A write descriptor: enqueued like a read but fire-and-forget
        # (no response data, no completion entry -- the thread never
        # waits, matching the posted-write semantics of section VII).
        yield from self.software_cost(self.swq_config.enqueue_instructions)
        yield from self._wait_for_ring_space()
        self.queue_pair.enqueue(
            Descriptor(
                core_id=self.queue_pair.core_id,
                thread_id=self.thread_id,
                device_addr=addr,
                response_addr=0,
                is_write=True,
            )
        )
        if self.queue_pair.doorbell_needed or not self.swq_config.doorbell_flag:
            self.queue_pair.note_doorbell()
            yield from self.core.mmio_write(
                self.doorbell_addr, 8, ns(self.swq_config.doorbell_ns)
            )

    def read_batch(self, addrs: Sequence[int]):
        yield from self.read_batch_async(addrs)
        by_addr: dict[int, Completion] = {
            completion.device_addr: completion
            for completion in self._last_completions
        }
        values = []
        for addr in addrs:
            completion = by_addr[addr]
            line_addr = addr - (addr % self.line_bytes)
            values.append(
                FlatMemory.word_from_line(line_addr, completion.data, addr)
            )
        return values


class KernelQueueContext(SoftwareQueueContext):
    """Kernel-managed queues: the SWQ protocol wrapped in system calls.

    Section III-A enumerates the per-access overheads -- system call,
    doorbell, kernel context switch, device queue read/write, interrupt
    handler, final context switch -- "adding up to tens ... of
    microseconds".  The request-side costs are charged here; the
    completion-side (interrupt + switch back) is charged by the
    scheduler's wake path.
    """

    def __init__(self, *args, syscall_ticks: int, kernel_switch_ticks: int, **kwargs):
        super().__init__(*args, **kwargs)
        self.syscall_ticks = syscall_ticks
        self.kernel_switch_ticks = kernel_switch_ticks

    def _enqueue(self, addr: int, slot: int):
        # Trap into the kernel, then run the same enqueue + doorbell
        # path (the kernel always rings: no application-side flag).
        yield from self.core.busy(self.syscall_ticks)
        yield from self.software_cost(self.swq_config.enqueue_instructions)
        yield from self._wait_for_ring_space()
        self.queue_pair.enqueue(
            Descriptor(
                core_id=self.queue_pair.core_id,
                thread_id=self.thread_id,
                device_addr=addr,
                response_addr=self._response_slot(slot),
            )
        )
        self.queue_pair.note_doorbell()
        yield from self.core.mmio_write(
            self.doorbell_addr, 8, ns(self.swq_config.doorbell_ns)
        )
        # The kernel deschedules the calling thread.
        yield from self.core.busy(self.kernel_switch_ticks)
