"""The per-core runtime: scheduler loop driving user-level threads.

Two scheduling policies from section IV-B live here:

* **round robin** (prefetch / on-demand): a thread that yields control
  goes to the back of the ready queue; a thread that waits on a
  hardware event simply stalls the core (the paper's scheduler issues
  the blocking load and lets the MSHR wake it).
* **FIFO with completion polling** (software queues): "the scheduler
  polls the completion queue only when no threads remain in the
  'ready' state; threads are managed in FIFO order".

Context-switch and polling costs are charged on the core's front end;
they are the software overheads whose magnitude separates Figure 3
from Figure 7.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, Optional

from repro.cpu.core import OutOfOrderCore
from repro.errors import SimulationError
from repro.runtime.queuepair import Completion, QueuePair
from repro.runtime.uthread import (
    BlockOnCompletions,
    ThreadState,
    UserThread,
    YIELD_CONTROL,
)
from repro.sim import Event, Process, Simulator

__all__ = ["SchedulerCosts", "CoreRuntime"]


@dataclass(frozen=True)
class SchedulerCosts:
    """Software costs charged by the scheduler."""

    #: One user-mode context switch (scheduler call included).
    switch_ticks: int
    #: Time per (possibly empty) completion-queue poll.
    poll_ticks: int = 0
    #: Time to consume one completion entry (scan + match).
    completion_ticks: int = 0
    #: Time to wake a thread whose completion batch is full.
    wakeup_ticks: int = 0
    #: Extra fixed cost per wakeup (kernel mechanism: interrupt +
    #: kernel context switch).
    wake_busy_ticks: int = 0


class CoreRuntime:
    """Owns one core; multiplexes its user threads."""

    def __init__(
        self,
        sim: Simulator,
        core: OutOfOrderCore,
        costs: SchedulerCosts,
        queue_pair: Optional[QueuePair] = None,
    ) -> None:
        self.sim = sim
        self.core = core
        self.costs = costs
        self.queue_pair = queue_pair
        self.threads: list[UserThread] = []
        self.ready: Deque[UserThread] = deque()
        self.blocked: dict[int, UserThread] = {}
        self.finished = 0
        self.context_switches = 0
        self.empty_polls = 0
        self.opportunistic_polls = 0
        self._slices_since_poll = 0
        self._process: Optional[Process] = None
        #: Optional observability hooks (None keeps hot paths untouched).
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid = 0

    def attach_tracer(self, tracer, pid: int, tid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid = tid

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.context_switches", lambda: self.context_switches
        )
        registry.register(f"{prefix}.empty_polls", lambda: self.empty_polls)
        registry.register(
            f"{prefix}.opportunistic_polls", lambda: self.opportunistic_polls
        )
        registry.register(f"{prefix}.finished_threads", lambda: self.finished)

    # -- setup -----------------------------------------------------------------

    def add_thread(self, body: Generator) -> UserThread:
        """Register a thread (a generator ready to be driven)."""
        if self._process is not None:
            raise SimulationError("cannot add threads after the runtime started")
        thread = UserThread(len(self.threads), body)
        self.threads.append(thread)
        self.ready.append(thread)
        return thread

    def start(self) -> Process:
        """Launch the scheduler; the process fires when every thread
        has finished (never, for free-running workloads)."""
        if self._process is not None:
            raise SimulationError("core runtime started twice")
        self._process = self.sim.process(
            self._run(), name=f"runtime-core{self.core.core_id}"
        )
        return self._process

    # -- scheduler loop -----------------------------------------------------------

    def _run(self):
        while self.finished < len(self.threads):
            if not self.ready:
                if not self.blocked:
                    raise SimulationError(
                        "runtime has unfinished threads but nothing to run"
                    )
                if self.queue_pair is None:
                    raise SimulationError(
                        "threads blocked on completions without a queue pair"
                    )
                yield from self._poll_for_completions()
                continue
            thread = self.ready.popleft()
            thread.state = ThreadState.RUNNING
            tracer = self.tracer
            if tracer is None:
                switched = yield from self._run_slice(thread)
            else:
                slice_start = self.sim.now
                switched = yield from self._run_slice(thread)
                tracer.complete(
                    "sched",
                    self._trace_pid,
                    self._trace_tid,
                    f"uthread{thread.thread_id}",
                    slice_start,
                    self.sim.now,
                    args={"state": thread.state.name},
                )
                tracer.counter(
                    "sched",
                    self._trace_pid,
                    f"core{self.core.core_id}.threads",
                    self.sim.now,
                    {"ready": len(self.ready), "blocked": len(self.blocked)},
                )
            if switched:
                self.context_switches += 1
                yield from self.core.busy(self.costs.switch_ticks)
            # The paper's scheduler polls "only when no threads remain
            # ready"; a real implementation must still poll once per
            # scheduling round while anyone is blocked, or spinning
            # threads (e.g. at a barrier) would starve the blocked ones.
            self._slices_since_poll += 1
            if (
                self.blocked
                and self.queue_pair is not None
                and self._slices_since_poll > len(self.ready)
            ):
                self.opportunistic_polls += 1
                yield from self._poll_once()
        yield from self.core.drain()

    def _run_slice(self, thread: UserThread):
        """Drive one thread until it switches, blocks, or finishes.

        Returns True if a context switch cost should be charged.
        """
        value = thread.inbox
        thread.inbox = None
        body = thread.body
        while True:
            try:
                item = body.send(value)
            except StopIteration as stop:
                thread.state = ThreadState.FINISHED
                thread.result = stop.value
                self.finished += 1
                # Moving to the next thread is still a scheduler call.
                return bool(self.ready or self.blocked)
            if item is YIELD_CONTROL:
                thread.switches += 1
                thread.state = ThreadState.READY
                self.ready.append(thread)
                return True
            if isinstance(item, BlockOnCompletions):
                if len(thread.collected) >= item.count:
                    # Completions already arrived: consume and carry on.
                    value = self._consume(thread, item.count)
                    continue
                thread.awaiting = item.count
                thread.state = ThreadState.BLOCKED
                self.blocked[thread.thread_id] = thread
                return True
            if isinstance(item, Event):
                # Hardware wait: the core stalls with the thread.
                value = yield item
                continue
            raise SimulationError(
                f"thread {thread.thread_id} yielded unsupported item {item!r}"
            )

    @staticmethod
    def _consume(thread: UserThread, count: int) -> list[Completion]:
        taken = thread.collected[:count]
        del thread.collected[:count]
        return taken

    # -- completion polling (software-queue mechanisms) ----------------------------

    def _poll_for_completions(self):
        while not self.ready:
            yield from self._poll_once()

    def _poll_once(self):
        """One poll of the completion queue, consuming all visible
        entries (and their costs)."""
        queue_pair = self.queue_pair
        assert queue_pair is not None
        self._slices_since_poll = 0
        poll_start = self.sim.now
        yield from self.core.busy(max(1, self.costs.poll_ticks))
        found = False
        consumed = 0
        while True:
            completion = queue_pair.pop_completion()
            if completion is None:
                break
            found = True
            consumed += 1
            yield from self.core.busy(self.costs.completion_ticks)
            woke = self._deliver(completion)
            if woke:
                yield from self.core.busy(
                    self.costs.wakeup_ticks + self.costs.wake_busy_ticks
                )
        if not found:
            self.empty_polls += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                "sched",
                self._trace_pid,
                self._trace_tid,
                "cq-poll",
                poll_start,
                self.sim.now,
                args={"completions": consumed},
            )

    def _deliver(self, completion: Completion) -> bool:
        """Route a completion to its thread; True if the thread woke."""
        thread = self._thread_by_id(completion.thread_id)
        thread.collected.append(completion)
        if (
            thread.state is ThreadState.BLOCKED
            and len(thread.collected) >= thread.awaiting
        ):
            thread.inbox = self._consume(thread, thread.awaiting)
            thread.awaiting = 0
            thread.state = ThreadState.READY
            del self.blocked[thread.thread_id]
            self.ready.append(thread)
            return True
        return False

    def _thread_by_id(self, thread_id: int) -> UserThread:
        try:
            return self.threads[thread_id]
        except IndexError:
            raise SimulationError(f"completion for unknown thread {thread_id}")
