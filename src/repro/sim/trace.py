"""Instrumentation helpers: counters, time-weighted stats, histograms.

The experiment harness measures "work IPC" over a steady-state window
(section IV-C of the paper).  These probes support windowed counting:
a probe accumulates only while :attr:`active`; the harness toggles the
flag at simulated times, so activation is exact with respect to event
order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Counter", "TimeWeighted", "LatencyStat", "ProbeSet"]


class Counter:
    """A windowed event counter (e.g. retired work instructions)."""

    __slots__ = ("name", "total", "windowed", "active")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.total = 0
        self.windowed = 0
        self.active = False

    def add(self, amount: int = 1) -> None:
        self.total += amount
        if self.active:
            self.windowed += amount

    def reset_window(self) -> None:
        self.windowed = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name} total={self.total} window={self.windowed}>"


class TimeWeighted:
    """Time-weighted statistic of a piecewise-constant value.

    Used for queue occupancy and link utilization: ``update(now, v)``
    records that the value is ``v`` from ``now`` onward.
    """

    __slots__ = ("name", "_value", "_last", "_integral", "maximum", "_start")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._value = 0.0
        self._last = 0
        self._integral = 0.0
        self.maximum = 0.0
        #: Time of the first update; the mean is taken over
        #: ``[_start, now]`` so a probe created mid-run is not diluted
        #: by the pre-creation span it never observed.  Components that
        #: want "idle since construction" folded in (e.g. link
        #: utilization) anchor explicitly with ``update(sim.now, 0.0)``.
        self._start: Optional[int] = None

    def update(self, now: int, value: float) -> None:
        if self._start is None:
            self._start = now
            self._last = now
        elif now < self._last:
            raise ValueError("time-weighted update moved backwards in time")
        self._integral += self._value * (now - self._last)
        self._last = now
        self._value = value
        self.maximum = max(self.maximum, value)

    def mean(self, now: int) -> float:
        start = self._start
        if start is None or now <= start:
            return 0.0
        return (self._integral + self._value * (now - self._last)) / (now - start)


class LatencyStat:
    """Streaming min/mean/max/percentile tracker for latencies.

    Like :class:`Counter`, the stat keeps a windowed sub-aggregate
    (count/total/sum-of-squares/min/max *and* a sample reservoir)
    accumulated only while :attr:`active`, so the steady-state
    measurement window excludes warmup latencies.  :meth:`percentile`
    is window-aware: once a measurement window has recorded samples it
    reports from the windowed reservoir, so tail percentiles (p99,
    p999) are never polluted by warmup observations; probes that never
    activate a window keep reporting lifetime percentiles.
    """

    __slots__ = ("name", "count", "total", "total_sq",
                 "minimum", "maximum",
                 "_samples", "_stride", "_next_sample", "active",
                 "windowed_count", "windowed_total", "windowed_total_sq",
                 "windowed_min", "windowed_max",
                 "_windowed_samples", "_windowed_stride", "_windowed_next")

    #: Cap on retained samples; beyond it we subsample deterministically.
    #: Must stay even: subsampling keeps even indices, and the proof
    #: that the just-appended sample survives relies on MAX_SAMPLES
    #: (the index it lands on) being even.
    MAX_SAMPLES = 65536

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0
        self.total = 0
        self.total_sq = 0
        self.minimum: Optional[int] = None
        self.maximum: Optional[int] = None
        self._samples: list[int] = []
        self._stride = 1
        #: 1-based index of the next observation to retain.  An explicit
        #: counter keeps phase with the retained samples across
        #: subsampling: retained samples sit at counts 1, 1+s, 1+2s, …,
        #: and after halving, the freshly appended sample (an even
        #: index, hence kept) re-anchors the sequence.
        self._next_sample = 1
        self.active = False
        self.windowed_count = 0
        self.windowed_total = 0
        self.windowed_total_sq = 0
        self.windowed_min: Optional[int] = None
        self.windowed_max: Optional[int] = None
        #: Windowed sample reservoir, maintained with the same
        #: deterministic stride subsampling as the lifetime one but
        #: keyed on the *windowed* count, so the retained population is
        #: exactly the measurement window's observations.
        self._windowed_samples: list[int] = []
        self._windowed_stride = 1
        self._windowed_next = 1

    def record(self, value: int) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        if self.active:
            self.windowed_count += 1
            self.windowed_total += value
            self.windowed_total_sq += value * value
            if self.windowed_min is None or value < self.windowed_min:
                self.windowed_min = value
            if self.windowed_max is None or value > self.windowed_max:
                self.windowed_max = value
            if self.windowed_count == self._windowed_next:
                self._windowed_samples.append(value)
                if len(self._windowed_samples) > self.MAX_SAMPLES:
                    self._windowed_samples = self._windowed_samples[::2]
                    self._windowed_stride *= 2
                self._windowed_next = (
                    self.windowed_count + self._windowed_stride
                )
        if self.count == self._next_sample:
            self._samples.append(value)
            if len(self._samples) > self.MAX_SAMPLES:
                # Keep every other sample and double the stride.  The
                # sample just appended landed on index MAX_SAMPLES
                # (even), so it survives and the next retained count is
                # exactly one new stride later.
                self._samples = self._samples[::2]
                self._stride *= 2
            self._next_sample = self.count + self._stride

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    @property
    def windowed_mean(self) -> float:
        if not self.windowed_count:
            return math.nan
        return self.windowed_total / self.windowed_count

    @property
    def jitter(self) -> float:
        """Latency jitter (population standard deviation), window-aware:
        computed over the measurement window once one has recorded
        observations, else over the lifetime population."""
        if self.windowed_count:
            count, total, total_sq = (
                self.windowed_count, self.windowed_total,
                self.windowed_total_sq,
            )
        elif self.count:
            count, total, total_sq = self.count, self.total, self.total_sq
        else:
            return math.nan
        mean = total / count
        # Clamp: catastrophic cancellation can leave a tiny negative.
        return math.sqrt(max(0.0, total_sq / count - mean * mean))

    def reset_window(self) -> None:
        self.windowed_count = 0
        self.windowed_total = 0
        self.windowed_total_sq = 0
        self.windowed_min = None
        self.windowed_max = None
        self._windowed_samples = []
        self._windowed_stride = 1
        self._windowed_next = 1

    def percentile(self, p: float) -> float:
        """Approximate percentile ``p`` in [0, 100], window-aware.

        Reported from the windowed reservoir once the measurement
        window has recorded samples (warmup excluded), else from the
        lifetime reservoir.  The old behavior -- always reporting from
        the lifetime reservoir, which fills during warmup even though
        the windowed count/total/min/max respect :attr:`active` --
        silently polluted every reported p50/p99 with warmup latencies.
        """
        if self.windowed_count:
            return self.windowed_percentile(p)
        return self.lifetime_percentile(p)

    def lifetime_percentile(self, p: float) -> float:
        """Percentile over every recorded observation, warmup included."""
        return percentile_of_sorted(sorted(self._samples), p)

    def windowed_percentile(self, p: float) -> float:
        """Percentile over the measurement window only (NaN before any
        windowed observation)."""
        return percentile_of_sorted(sorted(self._windowed_samples), p)


@dataclass
class ProbeSet:
    """A named bag of probes shared across a system's components."""

    counters: dict[str, Counter] = field(default_factory=dict)
    latencies: dict[str, LatencyStat] = field(default_factory=dict)
    weighted: dict[str, TimeWeighted] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def latency(self, name: str) -> LatencyStat:
        if name not in self.latencies:
            self.latencies[name] = LatencyStat(name)
        return self.latencies[name]

    def time_weighted(self, name: str) -> TimeWeighted:
        if name not in self.weighted:
            self.weighted[name] = TimeWeighted(name)
        return self.weighted[name]

    def set_window_active(self, active: bool) -> None:
        """Toggle windowed accumulation on every counter and latency stat."""
        for counter in self.counters.values():
            counter.active = active
        for latency in self.latencies.values():
            latency.active = active

    def reset_windows(self) -> None:
        for counter in self.counters.values():
            counter.reset_window()
        for latency in self.latencies.values():
            latency.reset_window()


def percentile_of_sorted(ordered: list[int], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted list."""
    if not ordered:
        return math.nan
    if p <= 0:
        return float(ordered[0])
    if p >= 100:
        return float(ordered[-1])
    rank = p / 100 * (len(ordered) - 1)
    low = int(rank)
    frac = rank - low
    if low + 1 >= len(ordered):
        return float(ordered[-1])
    return ordered[low] * (1 - frac) + ordered[low + 1] * frac
