"""Shared-resource primitives for the simulation kernel.

These model the *queues* at the heart of the paper: every device access
mechanism is "a pair of queues, one for requests and one for responses"
(section III), and it is queue occupancy limits -- line-fill buffers,
the chip-level queue, descriptor rings, link serialization -- that
dictate performance.

* :class:`Resource` -- a counting semaphore with FIFO grant order
  (line-fill buffers, chip-level queues, DRAM channel slots).
* :class:`Store` -- an optionally-bounded FIFO of items (packet queues,
  descriptor staging, completion delivery).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Event, Simulator

__all__ = ["Resource", "Store"]


class Resource:
    """A counting resource with ``capacity`` slots, granted FIFO.

    ``acquire()`` returns an event that fires when a slot is granted;
    ``release()`` frees a slot.  Occupancy statistics are tracked so
    experiments can report maximum queue occupancy, mirroring the
    paper's measurement of the 14-entry chip-level queue.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.in_use = 0
        self._waiters: Deque[Event] = deque()
        # Statistics.
        self.max_in_use = 0
        self.total_acquires = 0
        self._occupancy_integral = 0  # sum of in_use * dt, for averages
        self._last_change = sim.now

    def _account(self) -> None:
        now = self.sim.now
        self._occupancy_integral += self.in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self) -> Event:
        """Request a slot; the returned event fires on grant."""
        event = Event(self.sim)
        self.total_acquires += 1
        in_use = self.in_use
        if in_use < self.capacity and not self._waiters:
            self._account()
            self.in_use = in_use = in_use + 1
            if in_use > self.max_in_use:
                self.max_in_use = in_use
            # Inlined succeed(): the event is freshly constructed, so the
            # triggered/scheduled guards cannot fire.
            event._value = self
            event._scheduled = True
            self.sim._runq_append(event)
        else:
            self._waiters.append(event)
        return event

    def try_acquire(self) -> bool:
        """Take a slot immediately if one is free; never queues."""
        in_use = self.in_use
        if in_use < self.capacity and not self._waiters:
            self._account()
            self.in_use = in_use = in_use + 1
            if in_use > self.max_in_use:
                self.max_in_use = in_use
            self.total_acquires += 1
            return True
        return False

    def release(self) -> None:
        """Free a slot, handing it to the oldest waiter if any."""
        in_use = self.in_use
        if in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot over without transiting through "free":
            # occupancy stays constant, the waiter proceeds.
            self._waiters.popleft().succeed(self)
        else:
            self._account()
            self.in_use = in_use - 1

    @property
    def queued(self) -> int:
        """Number of acquire requests still waiting."""
        return len(self._waiters)

    def average_occupancy(self) -> float:
        """Time-weighted mean occupancy since construction.

        A pure query: the integral-so-far is folded in arithmetically
        instead of flushing ``_account()``, so mid-run introspection can
        never perturb the accounting state (or, before this fix, the
        statistics ordering of a later ``_account()``).
        """
        now = self.sim.now
        if now <= 0:
            return 0.0
        integral = self._occupancy_integral + self.in_use * (now - self._last_change)
        return integral / now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name or id(self)} {self.in_use}/{self.capacity}"
            f" (+{len(self._waiters)} waiting)>"
        )


class Store:
    """A FIFO of items with optional bounded capacity.

    ``put(item)`` returns an event firing once the item is accepted
    (immediately if there is space); ``get()`` returns an event firing
    with the oldest item once one is available.
    """

    def __init__(
        self, sim: Simulator, capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()
        self.total_puts = 0
        self.max_level = 0

    def put(self, item: Any) -> Event:
        """Offer ``item``; the returned event fires when it is enqueued.

        The satisfied branches build the already-succeeded event by
        hand (``__new__`` plus slot assignments) instead of
        ``Event(sim).succeed(None)``: the event is freshly constructed,
        so the triggered/scheduled guards cannot fire, and this method
        is on the kernel's hottest path.
        """
        sim = self.sim
        self.total_puts += 1
        if self._getters:
            # Direct hand-off to the oldest waiting consumer.
            self._getters.popleft().succeed(item)
        else:
            items = self._items
            capacity = self.capacity
            if capacity is not None and len(items) >= capacity:
                event = Event(sim)
                self._putters.append((event, item))
                return event
            items.append(item)
            level = len(items)
            if level > self.max_level:
                self.max_level = level
        event = Event.__new__(Event)
        event.sim = sim
        event._value = None
        event._exception = None
        event._scheduled = True
        event._callback = None
        event._callbacks = None
        sim._runq_append(event)
        return event

    def get(self) -> Event:
        """Take the oldest item; the returned event fires with it."""
        sim = self.sim
        items = self._items
        if items:
            item = items.popleft()
            if self._putters:
                self._admit_blocked_putter()
            # Inlined construction + succeed(item); see put().
            event = Event.__new__(Event)
            event.sim = sim
            event._value = item
            event._exception = None
            event._scheduled = True
            event._callback = None
            event._callbacks = None
            sim._runq_append(event)
        else:
            event = Event(sim)
            self._getters.append(event)
        return event

    def try_get(self) -> tuple[bool, Any]:
        """Take the oldest item if one is present, without waiting.

        Returns ``(True, item)`` or ``(False, None)``.
        """
        if self._items:
            item = self._items.popleft()
            if self._putters:
                self._admit_blocked_putter()
            return True, item
        return False, None

    def _admit_blocked_putter(self) -> None:
        if self._putters:
            putter, item = self._putters.popleft()
            self._items.append(item)
            self.max_level = max(self.max_level, len(self._items))
            putter.succeed(None)

    def __len__(self) -> int:
        return len(self._items)

    def drain(self) -> Generator[Event, Any, Any]:
        """Generator helper: ``item = yield from store.drain()``."""
        item = yield self.get()
        return item

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else self.capacity
        return f"<Store {self.name or id(self)} {len(self._items)}/{cap}>"
