"""A minimal, deterministic discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as in SimPy):
model behaviour is written as Python generators that ``yield`` events;
the scheduler resumes a process when the event it waits on fires.

Design points:

* Time is an integer tick count (picoseconds by convention, see
  :mod:`repro.units`).  Events scheduled for the same tick fire in
  schedule order, which makes every run bit-for-bit deterministic.
* Zero-delay scheduling -- ``succeed()``, satisfied resource grants,
  store hand-offs, process bootstraps -- dominates every workload, so
  it bypasses the heap entirely: a same-tick FIFO run queue holds those
  events, and the heap only ever carries future ticks.  The tie-break
  contract is unchanged (see "Ordering contract" below).
* Events are lean: a lazy single-callback slot covers the overwhelmingly
  common case (exactly one waiter -- the resuming process); a second
  waiter spills into a lazily-created list.
* An :class:`Event` may succeed with a value or fail with an exception;
  failures propagate into waiting processes via ``generator.throw``.
* :class:`Process` is itself an event that fires when its generator
  returns, so processes can wait on each other and compose.
* :func:`all_of` / :func:`any_of` build condition events for fork/join
  patterns (used heavily by the MLP batching code).  ``all_of`` joins
  count down a pending counter, so each constituent fire is O(1).

Ordering contract
-----------------

The observable contract is exactly the old kernel's: **events fire in
(tick, schedule-order)**, where schedule order is the global order of
``_schedule`` calls.  The run queue preserves it because of an
invariant: once the clock sits at tick ``T``, every heap entry with
tick ``T`` was pushed *before* the clock reached ``T`` (a push at time
``T`` either has ``delay == 0``, which goes to the run queue, or
``delay > 0``, which lands strictly after ``T``).  Run-queue entries
are only appended at time ``T``, hence always *younger* than every
tick-``T`` heap entry.  So the loop drains heap entries due now first,
then the run queue FIFO, then advances the clock -- identical to a
single heap ordered by ``(tick, seq)``.  The frozen pre-fast-path
kernel lives in :mod:`repro.sim._reference` and the property suite
replays randomized process graphs on both to keep this honest.

Observability
-------------

Each :class:`Simulator` counts events fired, heap pushes/pops,
run-queue bypasses, and process resumes (:meth:`Simulator.kernel_stats`).
:func:`collect_kernel_stats` aggregates the counters of every simulator
built inside a ``with`` block; the ``repro profile`` CLI subcommand
wraps any figure or microbench in it (plus cProfile) and reports an
events/sec summary.
"""

from __future__ import annotations

import heapq
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Generator, Iterable, Iterator, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "KernelStatsCollector",
    "all_of",
    "any_of",
    "collect_kernel_stats",
]

#: Sentinel for "event has no value yet".
_PENDING = object()

#: Sentinel stored in an event's callback slot once its callbacks have
#: been processed ("the event has happened in simulated time").
_FIRED = object()


class _BootstrapOutcome:
    """The outcome a process is resumed with the very first time.

    Shaped like a succeeded event with value ``None`` (the only fields
    :meth:`Process.__call__` reads), shared by every bootstrap so that
    spawning a process allocates nothing beyond the process itself.
    """

    __slots__ = ()
    _value = None
    _exception = None


_BOOT = _BootstrapOutcome()


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current
    simulation time.  Once triggered an event is immutable.

    Callback storage is lazy: ``_callback`` holds the first waiter,
    ``_callbacks`` a list for the (rare) second and later waiters, and
    the :data:`_FIRED` sentinel in ``_callback`` marks a fired event.
    """

    __slots__ = ("sim", "_value", "_exception", "_scheduled", "_callback",
                 "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self._callback: Any = None
        self._callbacks: Optional[list[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (value or exception).

        Note that a :class:`Timeout` is triggered from birth -- its
        outcome is predetermined.  Model code that needs "has this
        already happened?" should use :attr:`fired`.
        """
        return self._value is not _PENDING or self._exception is not None

    @property
    def fired(self) -> bool:
        """True once the event's callbacks have been processed.

        This is the "it has happened in simulated time" predicate model
        code should use (e.g. "is the prefetched line back yet?").
        """
        return self._callback is _FIRED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if pending or failed."""
        if self._value is _PENDING and self._exception is None:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event triggered twice")
        if self._scheduled:
            raise SimulationError("event scheduled twice")
        self._value = value
        self._scheduled = True
        self.sim._runq_append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure ``exception``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._scheduled:
            raise SimulationError("event scheduled twice")
        self._exception = exception
        self._value = None
        self._scheduled = True
        self.sim._runq_append(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event already fired and its callbacks were processed, the
        callback runs immediately (still at the firing's logical time or
        later -- the simulator clock only moves forward).
        """
        slot = self._callback
        if slot is _FIRED:
            callback(self)
        elif slot is None:
            self._callback = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; fires (with its return value) on completion.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; if
    it fails, the exception is thrown into the generator.

    A new process needs no bootstrap events: it is appended to the run
    queue *untriggered*, which the event loop recognizes as "start this
    generator now" -- zero throwaway allocations per spawn.  A process
    instance is also its own resume callback (:meth:`__call__`), so
    waiting on an event costs no bound-method or lambda allocation.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: queue the first resumption "now".  The loop spots
        # the untriggered entry and starts the generator instead of
        # firing completion callbacks.
        sim._runq_append(self)
        sim.processes_spawned += 1

    def __call__(self, event: Event) -> None:
        """Resume callback: advance the generator with ``event``'s outcome.

        ``event`` is the fired event the process waited on (or the
        shared :data:`_BOOT` outcome for a freshly spawned process).
        """
        sim = self.sim
        sim.process_resumes += 1
        generator = self._generator
        value = event._value
        exception = event._exception
        while True:
            try:
                if exception is not None:
                    target = generator.throw(exception)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                if self._value is _PENDING and self._exception is None:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if self._callback is None and self._callbacks is None:
                    # Nobody is waiting on this process: escalate rather
                    # than swallow the failure (a crashed model process
                    # must crash the simulation).
                    raise _annotate(exc, self.name)
                self.fail(_annotate(exc, self.name))
                return
            if not isinstance(target, Event):
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded non-event: {target!r}"
                    )
                )
                return
            if target.sim is not sim:
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded an event of another simulator"
                    )
                )
                return
            slot = target._callback
            if slot is _FIRED:
                # Already fired and processed: loop and resume inline, at
                # the current time, without a scheduler round-trip.
                value = target._value
                exception = target._exception
                continue
            if slot is None:
                target._callback = self
            elif target._callbacks is None:
                target._callbacks = [self]
            else:
                target._callbacks.append(self)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.sim.now}>"


def _annotate(exc: BaseException, name: str) -> BaseException:
    """Tag an escaping exception with the process it escaped from."""
    note = f"(escaped from simulation process {name!r})"
    try:
        exc.add_note(note)
    except AttributeError:  # pragma: no cover - pre-3.11 fallback
        pass
    return exc


class _ConditionEvent(Event):
    """Shared machinery for :func:`all_of` / :func:`any_of`.

    An ``all_of`` join counts down ``_pending`` (the number of
    constituents that had not fired at construction), so every
    constituent fire is O(1) -- no rescan of the whole list, which was
    quadratic for the MLP-batching fan-ins.  The condition is its own
    callback (:meth:`__call__`): subscribing allocates nothing.
    """

    __slots__ = ("_pending", "_events", "_need_all")

    def __init__(self, sim: "Simulator", events: list[Event], need_all: bool) -> None:
        super().__init__(sim)
        self._events = events
        self._need_all = need_all
        self._pending = 0
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events of different simulators")
        if not events:
            self.succeed([])
            return
        if need_all:
            # One interleaved pass, mirroring the old kernel's
            # construction exactly: each already-fired constituent is
            # checked in list order -- the first one carrying an
            # exception fails the join NOW; one with a fully-fired
            # prefix succeeds the join NOW if every constituent is at
            # least *triggered* (an unfired-but-triggered constituent
            # counts, and its predetermined value is read early).
            pending = 0
            for ev in events:
                if ev._callback is _FIRED:
                    if self._value is _PENDING and self._exception is None:
                        if ev._exception is not None:
                            self.fail(ev._exception)
                        elif pending == 0 and all(
                            e.triggered for e in events
                        ):
                            self.succeed([e.value for e in events])
                else:
                    pending += 1
            if self._value is not _PENDING or self._exception is not None:
                return
            if pending == 0:
                self.succeed([ev.value for ev in events])
                return
            self._pending = pending
            for ev in events:
                if ev._callback is not _FIRED:
                    ev.add_callback(self)
        else:
            for ev in events:
                if ev._callback is _FIRED:
                    # The first already-fired constituent decides.
                    if ev._exception is not None:
                        self.fail(ev._exception)
                    else:
                        self.succeed(ev._value)
                    return
            for ev in events:
                ev.add_callback(self)

    def __call__(self, event: Event) -> None:
        """One constituent fired."""
        if self._value is not _PENDING or self._exception is not None:
            return  # already decided (failed early, or any_of satisfied)
        exc = event._exception
        if exc is not None:
            self.fail(exc)
            return
        if self._need_all:
            self._pending -= 1
            if self._pending == 0:
                self.succeed([ev._value for ev in self._events])
        else:
            self.succeed(event._value)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *all* of ``events`` succeed.

    Its value is the list of individual event values (in input order).
    Fails as soon as any constituent fails.
    """
    return _ConditionEvent(sim, list(events), need_all=True)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *any* of ``events`` succeeds.

    Its value is the value of the first event to fire.  An empty input
    succeeds immediately (vacuously) with ``[]``.
    """
    events = list(events)
    if not events:
        return _ConditionEvent(sim, [], need_all=True)
    return _ConditionEvent(sim, events, need_all=False)


class Simulator:
    """The event loop: a clock, a same-tick run queue, and a heap.

    The heap only carries *future* ticks; everything due "now" sits in
    the FIFO run queue.  See the module docstring for why that preserves
    the ``(tick, schedule-order)`` firing contract bit-for-bit.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._runq: deque[Event] = deque()
        self._runq_append = self._runq.append  # bound once: hottest call
        self._seq = 0
        # -- observability counters (see kernel_stats()) -------------------
        self.events_fired = 0
        self.heap_pushes = 0
        self.heap_pops = 0
        self.process_resumes = 0
        self.processes_spawned = 0
        if _collectors:
            for collector in _collectors:
                collector.register(self)

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ticks from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process running ``generator``; returns its completion event."""
        return Process(self, generator, name=name)

    def delayed(self, after: Event, delay: int) -> Event:
        """An event firing ``delay`` ticks after ``after`` succeeds.

        Used to model fixed-latency stages downstream of a variable-time
        event (e.g. "execute for N cycles once the load data arrives").
        """
        result = Event(self)

        def _chain(ev: Event) -> None:
            if ev._exception is not None:
                result.fail(ev._exception)
            elif delay == 0:
                result.succeed(ev._value)
            else:
                self._schedule_value(result, delay, ev._value)

        after.add_callback(_chain)
        return result

    # -- scheduling internals ----------------------------------------------

    def _schedule(self, event: Event, delay: int) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        if delay == 0:
            self._runq_append(event)
        elif delay > 0:
            self._seq += 1
            self.heap_pushes += 1
            heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        else:
            raise SimulationError(f"negative schedule delay: {delay}")

    def _schedule_value(self, event: Event, delay: int, value: Any) -> None:
        """Trigger ``event`` with ``value`` after ``delay`` ticks."""
        event._value = value
        self._schedule(event, delay)

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Process the single next entry in the queues.

        Heap entries due at the current tick fire before the run queue
        (they are older in schedule order -- see the module docstring);
        a run-queue entry may be a process bootstrap, which starts the
        generator rather than firing completion callbacks.
        """
        heap = self._heap
        if heap and heap[0][0] == self.now:
            _when, _seq, event = heapq.heappop(heap)
            self.heap_pops += 1
        elif self._runq:
            event = self._runq.popleft()
            if not event._scheduled:
                event(_BOOT)  # process bootstrap
                return
        elif heap:
            when, _seq, event = heapq.heappop(heap)
            self.heap_pops += 1
            if when < self.now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self.now = when
        else:
            raise SimulationError("step() with no pending events")
        self.events_fired += 1
        callback = event._callback
        event._callback = _FIRED
        if callback is not None:
            callback(event)
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                for callback in callbacks:
                    callback(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None``: run until no events remain.
        * ``until=<int>``: run until the clock reaches that tick.
        * ``until=<Event>``: run until that event fires; returns its
          value (or raises its exception).

        The loops below are deliberately flat and bound to locals: this
        is the hot path under every figure of the paper, and a Python-
        level function call per event would dominate the cost.
        """
        heap = self._heap
        runq = self._runq
        heappop = heapq.heappop
        popleft = runq.popleft
        fired_mark = _FIRED
        fired = 0
        pops = 0

        if isinstance(until, Event):
            stop = until
            if stop._callback is fired_mark:
                return stop.value
            now = self.now
            try:
                while stop._callback is not fired_mark:
                    # 1) Heap entries due now fire first (older in
                    #    schedule order than anything in the run queue).
                    while heap and heap[0][0] == now:
                        _when, _seq, event = heappop(heap)
                        pops += 1
                        fired += 1
                        callback = event._callback
                        event._callback = fired_mark
                        if callback is not None:
                            callback(event)
                            callbacks = event._callbacks
                            if callbacks is not None:
                                event._callbacks = None
                                for callback in callbacks:
                                    callback(event)
                        if stop._callback is fired_mark:
                            break
                    else:
                        # 2) Drain the run queue; a run-queue fire can
                        #    never add a heap entry at the current tick,
                        #        so no heap probe per event is needed.
                        while runq:
                            event = popleft()
                            if not event._scheduled:
                                event(_BOOT)  # process bootstrap
                                continue
                            fired += 1
                            callback = event._callback
                            event._callback = fired_mark
                            if callback is not None:
                                callback(event)
                                callbacks = event._callbacks
                                if callbacks is not None:
                                    event._callbacks = None
                                    for callback in callbacks:
                                        callback(event)
                            if stop._callback is fired_mark:
                                break
                        else:
                            # 3) Advance the clock to the next tick.
                            if not heap:
                                raise SimulationError(
                                    "simulation ran out of events before the "
                                    "awaited event fired (deadlock?)"
                                )
                            when, _seq, event = heappop(heap)
                            pops += 1
                            self.now = now = when
                            fired += 1
                            callback = event._callback
                            event._callback = fired_mark
                            if callback is not None:
                                callback(event)
                                callbacks = event._callbacks
                                if callbacks is not None:
                                    event._callbacks = None
                                    for callback in callbacks:
                                        callback(event)
            finally:
                self.events_fired += fired
                self.heap_pops += pops
            return stop.value

        if until is not None:
            horizon = int(until)
            now = self.now
            try:
                while now <= horizon:
                    while heap and heap[0][0] == now:
                        _when, _seq, event = heappop(heap)
                        pops += 1
                        fired += 1
                        callback = event._callback
                        event._callback = fired_mark
                        if callback is not None:
                            callback(event)
                            callbacks = event._callbacks
                            if callbacks is not None:
                                event._callbacks = None
                                for callback in callbacks:
                                    callback(event)
                    while runq:
                        event = popleft()
                        if not event._scheduled:
                            event(_BOOT)  # process bootstrap
                            continue
                        fired += 1
                        callback = event._callback
                        event._callback = fired_mark
                        if callback is not None:
                            callback(event)
                            callbacks = event._callbacks
                            if callbacks is not None:
                                event._callbacks = None
                                for callback in callbacks:
                                    callback(event)
                    if heap and heap[0][0] <= horizon:
                        when, _seq, event = heappop(heap)
                        pops += 1
                        self.now = now = when
                        fired += 1
                        callback = event._callback
                        event._callback = fired_mark
                        if callback is not None:
                            callback(event)
                            callbacks = event._callbacks
                            if callbacks is not None:
                                event._callbacks = None
                                for callback in callbacks:
                                    callback(event)
                    else:
                        break
            finally:
                self.events_fired += fired
                self.heap_pops += pops
            if horizon > self.now:
                self.now = horizon
            return None

        now = self.now
        try:
            while True:
                # 1) Heap entries due now: all older than any run-queue
                #    entry, and none can be added while the clock holds.
                while heap and heap[0][0] == now:
                    _when, _seq, event = heappop(heap)
                    pops += 1
                    fired += 1
                    callback = event._callback
                    event._callback = fired_mark
                    if callback is not None:
                        callback(event)
                        callbacks = event._callbacks
                        if callbacks is not None:
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                # 2) Drain the same-tick run queue (appends during the
                #    drain land behind, preserving FIFO schedule order).
                while runq:
                    event = popleft()
                    if not event._scheduled:
                        event(_BOOT)  # process bootstrap
                        continue
                    fired += 1
                    callback = event._callback
                    event._callback = fired_mark
                    if callback is not None:
                        callback(event)
                        callbacks = event._callbacks
                        if callbacks is not None:
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                # 3) Advance the clock to the next scheduled tick.
                if not heap:
                    break
                when, _seq, event = heappop(heap)
                pops += 1
                self.now = now = when
                fired += 1
                callback = event._callback
                event._callback = fired_mark
                if callback is not None:
                    callback(event)
                    callbacks = event._callbacks
                    if callbacks is not None:
                        event._callbacks = None
                        for callback in callbacks:
                            callback(event)
        finally:
            self.events_fired += fired
            self.heap_pops += pops
        return None

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (scheduled, not yet fired)."""
        return len(self._heap) + len(self._runq)

    # -- observability -------------------------------------------------------

    @property
    def runq_bypasses(self) -> int:
        """Schedules that skipped the heap (same-tick run-queue entries).

        Derived rather than counted so the hot scheduling paths carry no
        extra increment: every run-queue append is either an event later
        fired from the run queue (``events_fired - heap_pops``), a
        process bootstrap (``processes_spawned``), or still queued.
        Exact whenever the run queue holds no un-started bootstraps --
        in particular, always between :meth:`run` calls.
        """
        return (self.events_fired - self.heap_pops + self.processes_spawned
                + len(self._runq))

    def sanity_check(self) -> list[str]:
        """Cheap structural checks of the scheduler's own state (used
        by the invariant monitor; never called on the hot path)."""
        problems: list[str] = []
        if self.now < 0:
            problems.append(f"clock is negative: {self.now}")
        if self._heap and self._heap[0][0] < self.now:
            problems.append(
                f"heap holds a past tick {self._heap[0][0]} < now {self.now}"
            )
        if self.heap_pops > self.heap_pushes:
            problems.append(
                f"more heap pops ({self.heap_pops}) than pushes "
                f"({self.heap_pushes})"
            )
        return problems

    def kernel_stats(self) -> dict[str, int]:
        """Snapshot of the kernel's hot-path counters."""
        return {
            "events_fired": self.events_fired,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "runq_bypasses": self.runq_bypasses,
            "process_resumes": self.process_resumes,
            "processes_spawned": self.processes_spawned,
            "pending_events": self.pending_events,
        }


#: Active stats collectors; every Simulator constructed while one is
#: active registers itself (used by ``repro profile``).
_collectors: list["KernelStatsCollector"] = []


class KernelStatsCollector:
    """Aggregates kernel counters across every registered simulator."""

    def __init__(self) -> None:
        self.simulators: list[Simulator] = []

    def register(self, sim: Simulator) -> None:
        self.simulators.append(sim)

    def stats(self) -> dict[str, int]:
        """Summed counters of all registered simulators."""
        totals = {
            "simulators": len(self.simulators),
            "events_fired": 0,
            "heap_pushes": 0,
            "heap_pops": 0,
            "runq_bypasses": 0,
            "process_resumes": 0,
            "processes_spawned": 0,
        }
        for sim in self.simulators:
            totals["events_fired"] += sim.events_fired
            totals["heap_pushes"] += sim.heap_pushes
            totals["heap_pops"] += sim.heap_pops
            totals["runq_bypasses"] += sim.runq_bypasses
            totals["process_resumes"] += sim.process_resumes
            totals["processes_spawned"] += sim.processes_spawned
        return totals

    @property
    def bypass_ratio(self) -> float:
        """Fraction of schedules that skipped the heap entirely."""
        stats = self.stats()
        scheduled = stats["runq_bypasses"] + stats["heap_pushes"]
        if scheduled == 0:
            return 0.0
        return stats["runq_bypasses"] / scheduled


@contextmanager
def collect_kernel_stats() -> Iterator[KernelStatsCollector]:
    """Collect kernel counters from every simulator built in the block.

    ::

        with collect_kernel_stats() as kernel:
            run_microbench(config, spec, window)
        print(kernel.stats()["events_fired"], kernel.bypass_ratio)
    """
    collector = KernelStatsCollector()
    _collectors.append(collector)
    try:
        yield collector
    finally:
        _collectors.remove(collector)
