"""A minimal, deterministic discrete-event simulation kernel.

The kernel follows the classic process-interaction style (as in SimPy):
model behaviour is written as Python generators that ``yield`` events;
the scheduler resumes a process when the event it waits on fires.

Design points:

* Time is an integer tick count (picoseconds by convention, see
  :mod:`repro.units`).  Events scheduled for the same tick fire in
  schedule order, which makes every run bit-for-bit deterministic.
* Zero-delay scheduling -- ``succeed()``, satisfied resource grants,
  store hand-offs, process bootstraps -- dominates every workload, so
  it bypasses the timed tier entirely: a same-tick FIFO run queue holds
  those events, drained in batches.
* The timed tier is a **calendar queue**, not a binary heap: a sliding
  window of power-of-two-width buckets (auto-sized from the observed
  delay distribution) over the near future, with a heap-backed overflow
  tier for far-future events that is lazily re-bucketed as the window
  advances.  Pushes are O(1) appends; the clock advance skips empty
  buckets in blocks via an occupancy bitmask and fast-forwards straight
  over fully quiescent spans; and all events due at a tick are drained
  as one batch, so the per-event cost of the timed path is an append
  plus a share of one bucket visit -- no per-event heap sift.
* Events are lean: a lazy single-callback slot covers the overwhelmingly
  common case (exactly one waiter -- the resuming process); a second
  waiter spills into a lazily-created list.
* An :class:`Event` may succeed with a value or fail with an exception;
  failures propagate into waiting processes via ``generator.throw``.
* :class:`Process` is itself an event that fires when its generator
  returns, so processes can wait on each other and compose.
* :func:`all_of` / :func:`any_of` build condition events for fork/join
  patterns (used heavily by the MLP batching code).  ``all_of`` joins
  count down a pending counter, so each constituent fire is O(1).

Ordering contract
-----------------

The observable contract is exactly the old kernel's: **events fire in
(tick, schedule-order)**, where schedule order is the global order of
``_schedule`` calls.  The old ``(tick, seq, event)`` heap tie-breaker is
gone from the hot path; ordering now falls out of FIFO structure:

* Each calendar bucket is an insertion-ordered list of ``(tick, event)``
  pairs.  Appends happen in schedule order, so a *stable* sort by tick
  alone recovers ``(tick, seq)`` order without storing a sequence
  number.
* Overflow-tier events (far future) still carry a sequence number
  inside the heap, but they migrate into buckets *before* any same-tick
  direct push can land there: migration runs at every clock advance,
  against the new clock's window, and direct pushes only happen while
  the clock holds still.  So within any bucket, same-tick entries are
  always in schedule order (proved impossible to interleave -- see
  ``_advance``), and migrated entries arrive in ``(tick, seq)`` heap
  order.
* Once the clock sits at tick ``T``, every timed entry with tick ``T``
  was pushed *before* the clock reached ``T`` (a push at time ``T``
  either has ``delay == 0``, which goes to the run queue, or ``delay >
  0``, which lands strictly after ``T``).  Run-queue entries are only
  appended at time ``T``, hence always *younger* than every tick-``T``
  timed entry.  So the loop drains the due batch first, then the run
  queue FIFO, then advances the clock -- identical to a single heap
  ordered by ``(tick, seq)``.

The frozen pre-fast-path kernel lives in :mod:`repro.sim._reference`
and the property suite replays randomized process graphs (including
randomized delay distributions that stress bucket boundaries and the
overflow tier) on both to keep this honest.

Observability
-------------

Each :class:`Simulator` counts events fired, timed pushes/pops,
run-queue bypasses, process resumes, and the calendar's structural
behaviour -- overflow spills, re-bucketing migrations, empty-bucket
skip spans, due-batch size distribution (:meth:`Simulator.kernel_stats`).
:func:`collect_kernel_stats` aggregates the counters of every simulator
built inside a ``with`` block; the ``repro profile`` CLI subcommand
wraps any figure or microbench in it (plus cProfile) and reports an
events/sec summary.  :meth:`Simulator.attach_tracer` additionally emits
a sampled ``kernel`` counter track (scheduler occupancy gauges) into a
Chrome trace without perturbing the event schedule.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from heapq import heappop, heappush
from operator import itemgetter
from typing import Any, Callable, Generator, Iterable, Iterator, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "KernelStatsCollector",
    "all_of",
    "any_of",
    "collect_kernel_stats",
]

#: Sentinel for "event has no value yet".
_PENDING = object()

#: Sentinel stored in an event's callback slot once its callbacks have
#: been processed ("the event has happened in simulated time").
_FIRED = object()

#: Calendar geometry: the sliding window spans ``_NBUCKETS`` buckets of
#: ``1 << shift`` ticks each; the shift adapts to the delay
#: distribution (see ``Simulator._push_timed``).
_LOG2_BUCKETS = 10
_NBUCKETS = 1 << _LOG2_BUCKETS
_MASK = _NBUCKETS - 1
_FULL = (1 << _NBUCKETS) - 1
#: Bucket-width growth is capped so window arithmetic stays sane even
#: for absurd delays (2**40 ticks per bucket ~= 1.1 s of simulated
#: time; the whole window then spans ~19 minutes).
_MAX_SHIFT = 40
#: Pending-timer hysteresis for the sparse (pure heap) <-> dense
#: (calendar wheel) mode switch.  Below ~a thousand pending timers the
#: C heap wins -- its log-depth is tiny and it has no per-advance scan
#: costs; the wheel's O(1) amortized push/pop only pays for itself at
#: depth.  The gap between the two thresholds prevents flapping.
_DENSE_AT = _NBUCKETS
_SPARSE_AT = _NBUCKETS >> 2
_BIT = tuple(1 << i for i in range(_NBUCKETS))
_NBIT = tuple(~(1 << i) for i in range(_NBUCKETS))

#: Stable bucket sort key: tick only.  Sorting the ``(tick, event)``
#: pairs directly would compare events on tick ties; keying on the tick
#: keeps the sort stable in insertion (= schedule) order instead.
_TICK = itemgetter(0)


class _BootstrapOutcome:
    """The outcome a process is resumed with the very first time.

    Shaped like a succeeded event with value ``None`` (the only fields
    :meth:`Process.__call__` reads), shared by every bootstrap so that
    spawning a process allocates nothing beyond the process itself.
    """

    __slots__ = ()
    _value = None
    _exception = None


_BOOT = _BootstrapOutcome()


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current
    simulation time.  Once triggered an event is immutable.

    Callback storage is lazy: ``_callback`` holds the first waiter,
    ``_callbacks`` a list for the (rare) second and later waiters, and
    the :data:`_FIRED` sentinel in ``_callback`` marks a fired event.
    """

    __slots__ = ("sim", "_value", "_exception", "_scheduled", "_callback",
                 "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False
        self._callback: Any = None
        self._callbacks: Optional[list[Callable[["Event"], None]]] = None

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (value or exception).

        Note that a :class:`Timeout` is triggered from birth -- its
        outcome is predetermined.  Model code that needs "has this
        already happened?" should use :attr:`fired`.
        """
        return self._value is not _PENDING or self._exception is not None

    @property
    def fired(self) -> bool:
        """True once the event's callbacks have been processed.

        This is the "it has happened in simulated time" predicate model
        code should use (e.g. "is the prefetched line back yet?").
        """
        return self._callback is _FIRED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if pending or failed."""
        if self._value is _PENDING and self._exception is None:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event triggered twice")
        if self._scheduled:
            raise SimulationError("event scheduled twice")
        self._value = value
        self._scheduled = True
        self.sim._runq_append(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure ``exception``."""
        if self._value is not _PENDING or self._exception is not None:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._scheduled:
            raise SimulationError("event scheduled twice")
        self._exception = exception
        self._value = None
        self._scheduled = True
        self.sim._runq_append(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event already fired and its callbacks were processed, the
        callback runs immediately (still at the firing's logical time or
        later -- the simulator clock only moves forward).
        """
        slot = self._callback
        if slot is _FIRED:
            callback(self)
        elif slot is None:
            self._callback = callback
        elif self._callbacks is None:
            self._callbacks = [callback]
        else:
            self._callbacks.append(callback)


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; fires (with its return value) on completion.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; if
    it fails, the exception is thrown into the generator.

    A new process needs no bootstrap events: it is appended to the run
    queue *untriggered*, which the event loop recognizes as "start this
    generator now" -- zero throwaway allocations per spawn.  A process
    instance is also its own resume callback (:meth:`__call__`), so
    waiting on an event costs no bound-method or lambda allocation.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: queue the first resumption "now".  The loop spots
        # the untriggered entry and starts the generator instead of
        # firing completion callbacks.
        sim._runq_append(self)
        sim.processes_spawned += 1

    def __call__(self, event: Event) -> None:
        """Resume callback: advance the generator with ``event``'s outcome.

        ``event`` is the fired event the process waited on (or the
        shared :data:`_BOOT` outcome for a freshly spawned process).
        """
        sim = self.sim
        sim.process_resumes += 1
        generator = self._generator
        value = event._value
        exception = event._exception
        while True:
            try:
                if exception is not None:
                    target = generator.throw(exception)
                else:
                    target = generator.send(value)
            except StopIteration as stop:
                if self._value is _PENDING and self._exception is None:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if self._callback is None and self._callbacks is None:
                    # Nobody is waiting on this process: escalate rather
                    # than swallow the failure (a crashed model process
                    # must crash the simulation).
                    raise _annotate(exc, self.name)
                self.fail(_annotate(exc, self.name))
                return
            if not isinstance(target, Event):
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded non-event: {target!r}"
                    )
                )
                return
            if target.sim is not sim:
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded an event of another simulator"
                    )
                )
                return
            slot = target._callback
            if slot is _FIRED:
                # Already fired and processed: loop and resume inline, at
                # the current time, without a scheduler round-trip.
                value = target._value
                exception = target._exception
                continue
            if slot is None:
                target._callback = self
            elif target._callbacks is None:
                target._callbacks = [self]
            else:
                target._callbacks.append(self)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.sim.now}>"


def _annotate(exc: BaseException, name: str) -> BaseException:
    """Tag an escaping exception with the process it escaped from."""
    note = f"(escaped from simulation process {name!r})"
    try:
        exc.add_note(note)
    except AttributeError:  # pragma: no cover - pre-3.11 fallback
        pass
    return exc


class _ConditionEvent(Event):
    """Shared machinery for :func:`all_of` / :func:`any_of`.

    An ``all_of`` join counts down ``_pending`` (the number of
    constituents that had not fired at construction), so every
    constituent fire is O(1) -- no rescan of the whole list, which was
    quadratic for the MLP-batching fan-ins.  The condition is its own
    callback (:meth:`__call__`): subscribing allocates nothing.
    """

    __slots__ = ("_pending", "_events", "_need_all")

    def __init__(self, sim: "Simulator", events: list[Event], need_all: bool) -> None:
        super().__init__(sim)
        self._events = events
        self._need_all = need_all
        self._pending = 0
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events of different simulators")
        if not events:
            self.succeed([])
            return
        if need_all:
            # One interleaved pass, mirroring the old kernel's
            # construction exactly: each already-fired constituent is
            # checked in list order -- the first one carrying an
            # exception fails the join NOW; one with a fully-fired
            # prefix succeeds the join NOW if every constituent is at
            # least *triggered* (an unfired-but-triggered constituent
            # counts, and its predetermined value is read early).
            pending = 0
            for ev in events:
                if ev._callback is _FIRED:
                    if self._value is _PENDING and self._exception is None:
                        if ev._exception is not None:
                            self.fail(ev._exception)
                        elif pending == 0 and all(
                            e.triggered for e in events
                        ):
                            self.succeed([e.value for e in events])
                else:
                    pending += 1
            if self._value is not _PENDING or self._exception is not None:
                return
            if pending == 0:
                self.succeed([ev.value for ev in events])
                return
            self._pending = pending
            for ev in events:
                if ev._callback is not _FIRED:
                    ev.add_callback(self)
        else:
            for ev in events:
                if ev._callback is _FIRED:
                    # The first already-fired constituent decides.
                    if ev._exception is not None:
                        self.fail(ev._exception)
                    else:
                        self.succeed(ev._value)
                    return
            for ev in events:
                ev.add_callback(self)

    def __call__(self, event: Event) -> None:
        """One constituent fired."""
        if self._value is not _PENDING or self._exception is not None:
            return  # already decided (failed early, or any_of satisfied)
        exc = event._exception
        if exc is not None:
            self.fail(exc)
            return
        if self._need_all:
            self._pending -= 1
            if self._pending == 0:
                self.succeed([ev._value for ev in self._events])
        else:
            self.succeed(event._value)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *all* of ``events`` succeed.

    Its value is the list of individual event values (in input order).
    Fails as soon as any constituent fails.
    """
    return _ConditionEvent(sim, list(events), need_all=True)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *any* of ``events`` succeeds.

    Its value is the value of the first event to fire.  An empty input
    succeeds immediately (vacuously) with ``[]``.
    """
    events = list(events)
    if not events:
        return _ConditionEvent(sim, [], need_all=True)
    return _ConditionEvent(sim, events, need_all=False)


class Simulator:
    """The event loop: a clock, a same-tick run queue, and a calendar.

    Three tiers, cheapest first:

    * ``_runq`` -- a deque of events due *now* (zero-delay schedules
      and process bootstraps), drained in FIFO order.
    * the calendar window -- ``_NBUCKETS`` buckets of ``1 << _shift``
      ticks each, covering the near future.  ``_occ`` is an occupancy
      bitmask over buckets, so the clock advance finds the next
      non-empty bucket with one big-int rotation instead of probing
      empties one by one.
    * ``_overflow`` -- a ``(tick, seq, event)`` heap for events beyond
      the window, lazily migrated into buckets as the window advances.

    ``_due`` stages the batch of events at the current tick between
    :meth:`_advance` and the drain loops (and carries the unprocessed
    remainder across an early-stopped ``run(until=event)``).

    See the module docstring for why this preserves the
    ``(tick, schedule-order)`` firing contract bit-for-bit.
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._runq: deque[Event] = deque()
        self._runq_append = self._runq.append  # bound once: hottest call
        # -- calendar-queue timed tier -------------------------------------
        self._wheel: list[list[tuple[int, Event]]] = [
            [] for _ in range(_NBUCKETS)
        ]
        self._occ = 0  # occupancy bitmask over wheel buckets
        self._needsort = bytearray(_NBUCKETS)  # per-bucket dirty flags
        self._cursor = -1  # bucket the last due batch came from, or -1
        self._shift = 0  # log2 bucket width in ticks (adaptive)
        self._dense = False  # wheel engaged?  starts sparse (pure heap)
        self._overflow: list[tuple[int, int, Event]] = []
        self._overflow_seq = 0
        self._max_spill_delay = 0
        self._spills_at_resize = 0
        self._due: list[Event] = []  # staged batch at the current tick
        # -- observability counters (see kernel_stats()) -------------------
        self.events_fired = 0
        #: Timed schedules / timed fires.  The names predate the
        #: calendar queue (they counted binary-heap operations) and are
        #: kept stable for baselines, sweep payloads, and the ledger.
        self.heap_pushes = 0
        self.heap_pops = 0
        self.process_resumes = 0
        self.processes_spawned = 0
        self.overflow_spills = 0
        self.overflow_migrations = 0
        self.window_advances = 0
        self.bucket_skip_spans = 0
        self.buckets_skipped = 0
        self.bucket_resizes = 0
        self.mode_switches = 0
        self.due_batch_max = 0
        self.due_batch_1 = 0
        self.due_batch_2_7 = 0
        self.due_batch_8_63 = 0
        self.due_batch_64_plus = 0
        # -- optional tracer hook (zero-cost when detached) ----------------
        self._tracer = None
        self._trace_pid = 0
        self._trace_interval = 0
        self._trace_last = 0
        if _collectors:
            for collector in _collectors:
                collector.register(self)

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ticks from now.

        The hottest timed-path constructor: the event is built by hand
        (``__new__`` plus slot assignments, mirroring ``Timeout.__init__``)
        and scheduled inline, skipping two Python-level calls per timer.
        """
        event = Timeout.__new__(Timeout)
        event.sim = self
        event._value = value
        event._exception = None
        event._callback = None
        event._callbacks = None
        event._scheduled = True
        if delay == 0:
            self._runq_append(event)
        elif delay > 0:
            # Inlined _push_timed (kept in lock-step with it): one less
            # Python call on the single hottest timed operation.
            self.heap_pushes += 1
            if self._dense:
                shift = self._shift
                tick = self.now + delay
                index = tick >> shift
                if index - (self.now >> shift) < _NBUCKETS:
                    index &= _MASK
                    bucket = self._wheel[index]
                    if bucket:
                        self._needsort[index] = 1
                    else:
                        self._occ |= _BIT[index]
                    bucket.append((tick, event))
                else:
                    self._spill(event, tick, delay)
            else:
                if delay > self._max_spill_delay:
                    self._max_spill_delay = delay
                seq = self._overflow_seq = self._overflow_seq + 1
                heappush(self._overflow, (self.now + delay, seq, event))
        else:
            raise SimulationError(f"negative timeout delay: {delay}")
        return event

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process running ``generator``; returns its completion event."""
        return Process(self, generator, name=name)

    def delayed(self, after: Event, delay: int) -> Event:
        """An event firing ``delay`` ticks after ``after`` succeeds.

        Used to model fixed-latency stages downstream of a variable-time
        event (e.g. "execute for N cycles once the load data arrives").
        """
        result = Event(self)

        def _chain(ev: Event) -> None:
            if ev._exception is not None:
                result.fail(ev._exception)
            elif delay == 0:
                result.succeed(ev._value)
            else:
                self._schedule_value(result, delay, ev._value)

        after.add_callback(_chain)
        return result

    # -- scheduling internals ----------------------------------------------

    def _schedule(self, event: Event, delay: int) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        if delay == 0:
            self._runq_append(event)
        elif delay > 0:
            self._push_timed(event, delay)
        else:
            raise SimulationError(f"negative schedule delay: {delay}")

    def _push_timed(self, event: Event, delay: int) -> None:
        """File ``event`` for ``self.now + delay`` in the timed tier.

        Sparse mode (few pending timers): straight onto the ``(tick,
        seq, event)`` heap -- at shallow depth the C heap is as good as
        a queue gets, and the wheel's fixed per-advance costs would be
        pure overhead.  Dense mode: in-window ticks append to their
        calendar bucket (O(1), no sequence number); ticks beyond the
        window spill to the overflow heap and are re-bucketed when the
        window reaches them.  An append to a non-empty bucket marks it
        dirty so :meth:`_advance` re-sorts it lazily -- at most once
        per visit, not once per push.

        ``timeout()`` inlines this body; keep the two in lock-step.
        """
        self.heap_pushes += 1
        if self._dense:
            shift = self._shift
            tick = self.now + delay
            index = tick >> shift
            if index - (self.now >> shift) < _NBUCKETS:
                index &= _MASK
                bucket = self._wheel[index]
                if bucket:
                    self._needsort[index] = 1
                else:
                    self._occ |= _BIT[index]
                bucket.append((tick, event))
            else:
                self._spill(event, tick, delay)
        else:
            if delay > self._max_spill_delay:
                self._max_spill_delay = delay
            seq = self._overflow_seq = self._overflow_seq + 1
            heappush(self._overflow, (self.now + delay, seq, event))

    def _spill(self, event: Event, tick: int, delay: int) -> None:
        """Park an out-of-window event in the overflow heap (dense mode)."""
        self.overflow_spills += 1
        if delay > self._max_spill_delay:
            self._max_spill_delay = delay
        self._overflow_seq += 1
        heappush(self._overflow, (tick, self._overflow_seq, event))

    def _densify(self) -> None:
        """Engage the calendar wheel: sparse -> dense transition.

        Runs at clock-advance time, with no due batch in flight -- never
        from a push, so a callback can never migrate the not-yet-fired
        remainder of the batch being drained.  Sizes the bucket width so
        the largest delay seen so far lands mid-window, then immediately
        migrates every in-window heap entry into its bucket -- *before*
        any direct push can append to the wheel.  That preserves the
        no-coexistence invariant the ordering proof needs: a bucket
        never holds a direct-pushed entry ahead of an older same-tick
        heap entry (module docstring, "Ordering contract").
        """
        self._dense = True
        want = self._max_spill_delay.bit_length() - (_LOG2_BUCKETS - 1)
        if want > self._shift:
            self._shift = want if want < _MAX_SHIFT else _MAX_SHIFT
        shift = self._shift
        overflow = self._overflow
        wheel = self._wheel
        needsort = self._needsort
        occ = self._occ  # always 0 here: the wheel is empty in sparse mode
        window_end = ((self.now >> shift) + _NBUCKETS) << shift
        migrated = 0
        while overflow and overflow[0][0] < window_end:
            tick, _seq, event = heappop(overflow)
            i = (tick >> shift) & _MASK
            target = wheel[i]
            if target:
                needsort[i] = 1
            else:
                occ |= _BIT[i]
            target.append((tick, event))
            migrated += 1
        self._occ = occ
        self.overflow_migrations += migrated
        self._spills_at_resize = self.overflow_spills
        self._cursor = -1
        self.mode_switches += 1

    def _grow(self) -> None:
        """Widen the buckets to cover the observed delay distribution.

        Called from :meth:`_advance` when more than a window's worth of
        pushes spilled to the overflow tier since the last check.  Live
        wheel entries are re-bucketed under the new width; this cannot
        disturb the ordering contract because same-tick entries always
        share a source bucket, so their relative (schedule) order
        survives redistribution.  Width only ever grows -- shrinking
        would be an optimisation for delay distributions that get
        *finer* over time, which no modelled workload exhibits; overly
        wide buckets stay correct (the stable per-bucket sort handles
        multiple distinct ticks per bucket).
        """
        want = self._max_spill_delay.bit_length() - (_LOG2_BUCKETS - 1)
        if want > self._shift:
            shift = want if want < _MAX_SHIFT else _MAX_SHIFT
            wheel = self._wheel
            entries: list[tuple[int, Event]] = []
            if self._occ:
                for bucket in wheel:
                    if bucket:
                        entries.extend(bucket)
                        del bucket[:]
            self._shift = shift
            occ = 0
            needsort = self._needsort
            for pair in entries:
                i = (pair[0] >> shift) & _MASK
                target = wheel[i]
                if target:
                    # Entries from different source buckets interleave
                    # in the wider target: re-sort lazily on visit.
                    needsort[i] = 1
                else:
                    occ |= _BIT[i]
                target.append(pair)
            self._occ = occ
            self._cursor = -1  # bucket indices changed under the cursor
            self.bucket_resizes += 1
        self._spills_at_resize = self.overflow_spills

    def _schedule_value(self, event: Event, delay: int, value: Any) -> None:
        """Trigger ``event`` with ``value`` after ``delay`` ticks."""
        event._value = value
        self._schedule(event, delay)

    def _advance(self, horizon: Optional[int]) -> bool:
        """Advance the clock to the next occupied tick; stage its batch.

        Fills ``self._due`` with *every* event scheduled at the new
        current tick, in schedule order, and returns True -- or returns
        False without touching the clock when no timed event remains
        (or the next one lies beyond ``horizon``).

        Only called when the run queue and ``_due`` are both empty, so
        the clock is free to move.
        """
        if not self._dense:
            # Sparse mode: the heap is the whole timed tier.  Pop the
            # minimum and every same-tick entry after it -- heap order
            # is (tick, seq), so the batch comes out in schedule order.
            # The dense switch is checked here, at advance time, and
            # never from a push: a callback of a firing batch can then
            # never trigger a migration that strands the rest of its
            # own batch in the wheel behind younger run-queue entries.
            overflow = self._overflow
            if not overflow:
                return False
            if len(overflow) > _DENSE_AT:
                self._densify()
                return self._advance(horizon)
            next_tick = overflow[0][0]
            if horizon is not None and next_tick > horizon:
                return False
            self.now = next_tick
            due = self._due
            due.append(heappop(overflow)[2])
            count = 1
            while overflow and overflow[0][0] == next_tick:
                due.append(heappop(overflow)[2])
                count += 1
            # Mirror of the dense tail below (bucket bookkeeping aside).
            self.window_advances += 1
            if count > self.due_batch_max:
                self.due_batch_max = count
            if count == 1:
                self.due_batch_1 += 1
            elif count < 8:
                self.due_batch_2_7 += 1
            elif count < 64:
                self.due_batch_8_63 += 1
            else:
                self.due_batch_64_plus += 1
            tracer = self._tracer
            if (
                tracer is not None
                and next_tick - self._trace_last >= self._trace_interval
            ):
                self._trace_last = next_tick
                tracer.counter(
                    "kernel",
                    self._trace_pid,
                    "kernel.scheduler",
                    next_tick,
                    {
                        "occupied_buckets": 0,
                        "overflow_backlog": len(overflow),
                        "due_batch": count,
                    },
                )
            return True
        wheel = self._wheel
        needsort = self._needsort
        index = self._cursor
        if index >= 0 and wheel[index]:
            # Cursor fast path: the bucket the last batch came from
            # still holds entries.  Its head is the global minimum (all
            # other buckets hold later ticks -- a push landing at an
            # earlier tick than this bucket's range would land in this
            # bucket), and the overflow migration threshold depends only
            # on ``next_tick >> shift``, unchanged while the clock stays
            # inside one bucket, so neither the occupancy-mask scan nor
            # the migration check needs to run.
            bucket = wheel[index]
            if needsort[index]:
                # Stable sort by tick recovers (tick, schedule-order);
                # same-tick entries keep their insertion order.
                bucket.sort(key=_TICK)
                needsort[index] = 0
            next_tick = bucket[0][0]
            if horizon is not None and next_tick > horizon:
                return False
            self.now = next_tick
        else:
            if self.overflow_spills - self._spills_at_resize > _NBUCKETS:
                # The window has been missing a meaningful share of
                # pushes: widen the buckets so the observed delays land
                # in-window.
                self._grow()
            occ = self._occ
            overflow = self._overflow
            shift = self._shift
            if not occ and len(overflow) < _SPARSE_AT:
                # The wheel drained and the backlog is shallow again:
                # revert to the plain heap (every pending timed event
                # already sits in the overflow tier with its sequence
                # number, so sparse order is exact).  Hysteresis --
                # engage at _DENSE_AT, revert at _SPARSE_AT -- keeps a
                # workload hovering near the threshold from thrashing.
                self._dense = False
                self._cursor = -1
                self.mode_switches += 1
                return self._advance(horizon)
            if occ:
                # Find the next occupied bucket: scan the occupancy
                # mask from the current bucket forward (then wrapped).
                # Empty buckets are skipped as a block.
                position = (self.now >> shift) & _MASK
                ahead = occ >> position
                if ahead:
                    skipped = (ahead & -ahead).bit_length() - 1
                else:
                    skipped = (
                        (occ & -occ).bit_length() - 1 + _NBUCKETS - position
                    )
                index = (position + skipped) & _MASK
                bucket = wheel[index]
                if needsort[index]:
                    bucket.sort(key=_TICK)
                    needsort[index] = 0
                next_tick = bucket[0][0]
                # The wheel always holds the earliest timed tick:
                # overflow entries all lie at or beyond the window's
                # aligned end, strictly after every bucketed tick (see
                # _push_timed).
            elif overflow:
                # The whole window is quiescent: fast-forward the clock
                # straight to the overflow tier's earliest tick without
                # probing a single bucket in between.
                next_tick = overflow[0][0]
                bucket = None
                skipped = (next_tick >> shift) - (self.now >> shift)
                index = (next_tick >> shift) & _MASK
            else:
                return False
            if horizon is not None and next_tick > horizon:
                return False
            if skipped:
                self.bucket_skip_spans += 1
                self.buckets_skipped += skipped
            self.now = next_tick
            # Lazy re-bucketing: pull every overflow event that the
            # advanced window now covers into its bucket.  This runs
            # *before* any event at the new tick fires, so no direct
            # push can land in a bucket ahead of an older overflow
            # entry for the same tick -- that ordering argument is what
            # lets buckets drop the sequence number (module docstring,
            # "Ordering contract").
            if overflow:
                window_end = ((next_tick >> shift) + _NBUCKETS) << shift
                if overflow[0][0] < window_end:
                    migrated = 0
                    while overflow and overflow[0][0] < window_end:
                        tick, _seq, event = heappop(overflow)
                        i = (tick >> shift) & _MASK
                        target = wheel[i]
                        if target:
                            needsort[i] = 1
                        else:
                            occ |= _BIT[i]
                        target.append((tick, event))
                        migrated += 1
                    self.overflow_migrations += migrated
                    self._occ = occ
                    if bucket is None:
                        bucket = wheel[index]
                    if needsort[index]:
                        bucket.sort(key=_TICK)
                        needsort[index] = 0
        # Stage the due batch: the sorted prefix at next_tick.  Nothing
        # can join it later -- a delay > 0 push lands strictly in the
        # future and zero-delay schedules go to the run queue.
        due = self._due
        count = 0
        for tick, event in bucket:
            if tick != next_tick:
                break
            due.append(event)
            count += 1
        if count == len(bucket):
            del bucket[:]
            self._occ &= _NBIT[index]
            self._cursor = -1
        else:
            del bucket[:count]
            self._cursor = index
        self.window_advances += 1
        if count > self.due_batch_max:
            self.due_batch_max = count
        if count == 1:
            self.due_batch_1 += 1
        elif count < 8:
            self.due_batch_2_7 += 1
        elif count < 64:
            self.due_batch_8_63 += 1
        else:
            self.due_batch_64_plus += 1
        tracer = self._tracer
        if tracer is not None and next_tick - self._trace_last >= self._trace_interval:
            self._trace_last = next_tick
            tracer.counter(
                "kernel",
                self._trace_pid,
                "kernel.scheduler",
                next_tick,
                {
                    "occupied_buckets": bin(self._occ).count("1"),
                    "overflow_backlog": len(self._overflow),
                    "due_batch": count,
                },
            )
        return True

    # -- firing --------------------------------------------------------------

    def _fire(self, event: Event) -> None:
        """Fire one event: mark it processed, run its callback(s).

        The single canonical fire sequence.  ``step()`` and the cold
        paths call it directly; the drain loops in ``run()`` inline a
        copy for speed (a Python call per event would dominate), and
        the step-vs-run drain-equivalence property test keeps the
        inlined copies honest against this definition.
        """
        self.events_fired += 1
        callback = event._callback
        event._callback = _FIRED
        if callback is not None:
            callback(event)
            callbacks = event._callbacks
            if callbacks is not None:
                event._callbacks = None
                for callback in callbacks:
                    callback(event)

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Process the single next entry in the queues.

        The staged due batch (timed events at the current tick) fires
        before the run queue -- its entries are older in schedule order
        (see the module docstring); a run-queue entry may be a process
        bootstrap, which starts the generator rather than firing
        completion callbacks.  With both empty, the clock advances to
        the next timed tick and fires that batch's first event.
        """
        due = self._due
        if due:
            self.heap_pops += 1
            self._fire(due.pop(0))
            return
        runq = self._runq
        if runq:
            event = runq.popleft()
            if not event._scheduled:
                event(_BOOT)  # process bootstrap
                return
            self._fire(event)
            return
        if not self._advance(None):
            raise SimulationError("step() with no pending events")
        self.heap_pops += 1
        self._fire(self._due.pop(0))

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None``: run until no events remain.
        * ``until=<int>``: run until the clock reaches that tick.
        * ``until=<Event>``: run until that event fires; returns its
          value (or raises its exception).

        The loops below are deliberately flat and bound to locals: this
        is the hot path under every figure of the paper, and a Python-
        level function call per event would dominate the cost.  Each
        mode drains, in order: the staged due batch, then the run queue
        (appends during the drain land behind, preserving FIFO schedule
        order), then advances the clock for the next batch.  The fire
        sequence inlined in every loop is :meth:`_fire`.
        """
        runq = self._runq
        popleft = runq.popleft
        due = self._due
        advance = self._advance
        fired_mark = _FIRED
        fired = 0  # run-queue events fired
        timed = 0  # due-batch (timed) events fired

        if isinstance(until, Event):
            stop = until
            if stop._callback is fired_mark:
                return stop.value
            try:
                while stop._callback is not fired_mark:
                    if due:
                        done = 0
                        try:
                            for event in due:
                                done += 1
                                callback = event._callback
                                event._callback = fired_mark
                                if callback is not None:
                                    callback(event)
                                    callbacks = event._callbacks
                                    if callbacks is not None:
                                        event._callbacks = None
                                        for callback in callbacks:
                                            callback(event)
                                if stop._callback is fired_mark:
                                    break
                        finally:
                            timed += done
                            del due[:done]
                        continue
                    while runq:
                        event = popleft()
                        if not event._scheduled:
                            event(_BOOT)  # process bootstrap
                            continue
                        fired += 1
                        callback = event._callback
                        event._callback = fired_mark
                        if callback is not None:
                            callback(event)
                            callbacks = event._callbacks
                            if callbacks is not None:
                                event._callbacks = None
                                for callback in callbacks:
                                    callback(event)
                        if stop._callback is fired_mark:
                            break
                    else:
                        if not advance(None):
                            raise SimulationError(
                                "simulation ran out of events before the "
                                "awaited event fired (deadlock?)"
                            )
            finally:
                self.events_fired += fired + timed
                self.heap_pops += timed
            return stop.value

        horizon: Optional[int] = None
        if until is not None:
            horizon = int(until)
            if horizon < self.now:
                return None
        overflow = self._overflow
        pop = heappop
        tracer = self._tracer
        advances = 0  # inline sparse clock advances
        b1 = b2 = b8 = b64 = bmax = 0  # inline due-batch histogram
        try:
            while True:
                if due:
                    done = 0
                    try:
                        for event in due:
                            done += 1
                            callback = event._callback
                            event._callback = fired_mark
                            if callback is not None:
                                callback(event)
                                callbacks = event._callbacks
                                if callbacks is not None:
                                    event._callbacks = None
                                    for callback in callbacks:
                                        callback(event)
                    finally:
                        timed += done
                        del due[:done]
                while runq:
                    event = popleft()
                    if not event._scheduled:
                        event(_BOOT)  # process bootstrap
                        continue
                    fired += 1
                    callback = event._callback
                    event._callback = fired_mark
                    if callback is not None:
                        callback(event)
                        callbacks = event._callbacks
                        if callbacks is not None:
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                if self._dense:
                    if not advance(horizon):
                        break
                    continue
                # Inline sparse advance (lock-step with _advance's
                # sparse arm): at shallow pending depth the whole timed
                # tier is the heap, and staging batches through _due
                # would cost a Python call plus list churn per tick for
                # nothing -- pop and fire straight off the heap.  Safe
                # against mid-batch migration because a push can never
                # densify (the switch is checked only here and in
                # _advance, never with a batch in flight).
                if not overflow:
                    break
                if len(overflow) > _DENSE_AT:
                    self._densify()
                    continue
                tick = overflow[0][0]
                if horizon is not None and tick > horizon:
                    break
                self.now = tick
                start = timed
                while overflow and overflow[0][0] == tick:
                    timed += 1
                    event = pop(overflow)[2]
                    callback = event._callback
                    event._callback = fired_mark
                    if callback is not None:
                        callback(event)
                        callbacks = event._callbacks
                        if callbacks is not None:
                            event._callbacks = None
                            for callback in callbacks:
                                callback(event)
                advances += 1
                count = timed - start
                if count == 1:
                    b1 += 1
                elif count < 8:
                    b2 += 1
                elif count < 64:
                    b8 += 1
                else:
                    b64 += 1
                if count > bmax:
                    bmax = count
                if tracer is not None and tick - self._trace_last >= self._trace_interval:
                    self._trace_last = tick
                    tracer.counter(
                        "kernel",
                        self._trace_pid,
                        "kernel.scheduler",
                        tick,
                        {
                            "occupied_buckets": 0,
                            "overflow_backlog": len(overflow),
                            "due_batch": count,
                        },
                    )
        finally:
            self.events_fired += fired + timed
            self.heap_pops += timed
            if advances:
                self.window_advances += advances
                self.due_batch_1 += b1
                self.due_batch_2_7 += b2
                self.due_batch_8_63 += b8
                self.due_batch_64_plus += b64
                if bmax > self.due_batch_max:
                    self.due_batch_max = bmax
        if horizon is not None and horizon > self.now:
            self.now = horizon
        return None

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (scheduled, not yet fired)."""
        pending = len(self._runq) + len(self._due) + len(self._overflow)
        for bucket in self._wheel:
            if bucket:
                pending += len(bucket)
        return pending

    # -- observability -------------------------------------------------------

    def attach_tracer(self, tracer, pid: int, interval_ticks: int = 0) -> None:
        """Emit a sampled ``kernel`` counter track (scheduler occupancy
        gauges) into ``tracer``.  Sampling is tick-driven -- at most one
        counter event per ``interval_ticks`` of simulated time -- and
        adds no events to the schedule, so attaching a tracer can never
        perturb the simulation."""
        self._tracer = tracer
        self._trace_pid = pid
        self._trace_interval = interval_ticks

    @property
    def runq_bypasses(self) -> int:
        """Schedules that skipped the timed tier (same-tick run-queue
        entries).

        Derived rather than counted so the hot scheduling paths carry no
        extra increment: every run-queue append is either an event later
        fired from the run queue (``events_fired - heap_pops``), a
        process bootstrap (``processes_spawned``), or still queued.
        Exact whenever the run queue holds no un-started bootstraps --
        in particular, always between :meth:`run` calls.
        """
        return (self.events_fired - self.heap_pops + self.processes_spawned
                + len(self._runq))

    def sanity_check(self) -> list[str]:
        """Cheap structural checks of the scheduler's own state (used
        by the invariant monitor; never called on the hot path)."""
        problems: list[str] = []
        if self.now < 0:
            problems.append(f"clock is negative: {self.now}")
        # Strictly-past only: while run() drains a same-tick batch off
        # the sparse heap, a monitor callback can legitimately observe
        # the not-yet-fired remainder at tick == now.
        if self._overflow and self._overflow[0][0] < self.now:
            problems.append(
                f"overflow tier holds tick {self._overflow[0][0]} "
                f"< now {self.now}"
            )
        occ = 0
        earliest: Optional[int] = None
        needsort = self._needsort
        for index, bucket in enumerate(self._wheel):
            if bucket:
                occ |= _BIT[index]
                low = min(bucket, key=_TICK)[0]
                if earliest is None or low < earliest:
                    earliest = low
                if not needsort[index] and any(
                    bucket[j][0] > bucket[j + 1][0]
                    for j in range(len(bucket) - 1)
                ):
                    problems.append(
                        f"bucket {index} unsorted but not marked dirty"
                    )
        if occ != self._occ:
            problems.append(
                "bucket occupancy bitmask out of sync with bucket contents"
            )
        if earliest is not None and earliest < self.now:
            problems.append(
                f"calendar holds a past tick {earliest} < now {self.now}"
            )
        if self.heap_pops > self.heap_pushes:
            problems.append(
                f"more timed pops ({self.heap_pops}) than pushes "
                f"({self.heap_pushes})"
            )
        return problems

    def kernel_stats(self) -> dict[str, int]:
        """Snapshot of the kernel's hot-path counters.

        ``heap_pushes``/``heap_pops`` are the timed tier's schedule/fire
        totals (names kept from the binary-heap era for baseline and
        ledger continuity); the ``due_batch_*`` keys are a log-scale
        histogram of batch sizes per clock advance.
        """
        return {
            "events_fired": self.events_fired,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "runq_bypasses": self.runq_bypasses,
            "process_resumes": self.process_resumes,
            "processes_spawned": self.processes_spawned,
            "pending_events": self.pending_events,
            "calendar_pushes": self.heap_pushes - self.overflow_spills,
            "overflow_spills": self.overflow_spills,
            "overflow_migrations": self.overflow_migrations,
            "window_advances": self.window_advances,
            "bucket_skip_spans": self.bucket_skip_spans,
            "buckets_skipped": self.buckets_skipped,
            "bucket_resizes": self.bucket_resizes,
            "mode_switches": self.mode_switches,
            "bucket_width": 1 << self._shift,
            "due_batch_max": self.due_batch_max,
            "due_batch_1": self.due_batch_1,
            "due_batch_2_7": self.due_batch_2_7,
            "due_batch_8_63": self.due_batch_8_63,
            "due_batch_64_plus": self.due_batch_64_plus,
        }


#: Active stats collectors; every Simulator constructed while one is
#: active registers itself (used by ``repro profile``).
_collectors: list["KernelStatsCollector"] = []

#: kernel_stats() keys that are gauges / high-water marks: aggregated
#: with max() across simulators instead of summed.
_GAUGE_STATS = frozenset({"bucket_width", "due_batch_max"})


class KernelStatsCollector:
    """Aggregates kernel counters across every registered simulator."""

    def __init__(self) -> None:
        self.simulators: list[Simulator] = []

    def register(self, sim: Simulator) -> None:
        self.simulators.append(sim)

    def stats(self) -> dict[str, int]:
        """Counters of all registered simulators: summed, except the
        ``_GAUGE_STATS`` high-water marks which take the max."""
        totals: dict[str, int] = {"simulators": len(self.simulators)}
        for sim in self.simulators:
            for stat, value in sim.kernel_stats().items():
                if stat == "pending_events":
                    continue
                if stat in _GAUGE_STATS:
                    if value > totals.get(stat, 0):
                        totals[stat] = value
                else:
                    totals[stat] = totals.get(stat, 0) + value
        if len(totals) == 1:
            # No simulators registered: still present the full schema.
            for stat in Simulator().kernel_stats():
                if stat != "pending_events":
                    totals.setdefault(stat, 0)
            totals["simulators"] = 0
        return totals

    @property
    def bypass_ratio(self) -> float:
        """Fraction of schedules that skipped the timed tier entirely."""
        stats = self.stats()
        scheduled = stats["runq_bypasses"] + stats["heap_pushes"]
        if scheduled == 0:
            return 0.0
        return stats["runq_bypasses"] / scheduled


@contextmanager
def collect_kernel_stats() -> Iterator[KernelStatsCollector]:
    """Collect kernel counters from every simulator built in the block.

    ::

        with collect_kernel_stats() as kernel:
            run_microbench(config, spec, window)
        print(kernel.stats()["events_fired"], kernel.bypass_ratio)
    """
    collector = KernelStatsCollector()
    _collectors.append(collector)
    try:
        yield collector
    finally:
        _collectors.remove(collector)
