"""The pre-fast-path kernel, frozen as a behavioral reference.

This is a verbatim copy of the discrete-event kernel *before* the
same-tick run queue, lean events, and counter-based condition joins
landed in :mod:`repro.sim.kernel`.  It is deliberately kept around for
two jobs:

* **differential testing** -- the property suite replays randomized
  process graphs on both kernels and asserts bit-for-bit identical
  traces (``tests/property/test_kernel_equivalence.py``);
* **speedup measurement** -- ``benchmarks/test_simulator_throughput.py``
  times the same workload on both kernels on the same machine, which
  gives a machine-independent speedup ratio to gate CI on.

It also carries a copy of the old :class:`Store` (the reference
``Event`` class is incompatible with :mod:`repro.sim.resources`, which
is bound to the production kernel).  Model code must never import this
module; everything here schedules every event -- including the dominant
zero-delay case -- through the heap.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "Store",
    "all_of",
    "any_of",
]

#: Sentinel for "event has no value yet".
_PENDING = object()


class Event:
    """A happening at a point in simulated time.

    An event starts *pending*.  Calling :meth:`succeed` or :meth:`fail`
    *triggers* it, scheduling its callbacks to run at the current
    simulation time.  Once triggered an event is immutable.
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._exception: Optional[BaseException] = None
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has an outcome (value or exception).

        Note that a :class:`Timeout` is triggered from birth -- its
        outcome is predetermined.  Model code that needs "has this
        already happened?" should use :attr:`fired`.
        """
        return self._value is not _PENDING or self._exception is not None

    @property
    def fired(self) -> bool:
        """True once the event's callbacks have been processed.

        This is the "it has happened in simulated time" predicate model
        code should use (e.g. "is the prefetched line back yet?").
        """
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> Any:
        """The success value; raises if pending or failed."""
        if not self.triggered:
            raise SimulationError("event value read before trigger")
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> Optional[BaseException]:
        """The failure exception, or None."""
        return self._exception

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        self._value = value
        self.sim._schedule(self, delay=0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure ``exception``."""
        if self.triggered:
            raise SimulationError("event triggered twice")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._exception = exception
        self._value = None
        self.sim._schedule(self, delay=0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(event)`` when the event fires.

        If the event already fired and its callbacks were processed, the
        callback runs immediately (still at the firing's logical time or
        later -- the simulator clock only moves forward).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires a fixed delay after its creation."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: int, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._value = value
        sim._schedule(self, delay=delay)


class Process(Event):
    """A running generator; fires (with its return value) on completion.

    The generator must yield :class:`Event` instances.  When a yielded
    event succeeds, the generator is resumed with the event's value; if
    it fails, the exception is thrown into the generator.
    """

    __slots__ = ("_generator", "name")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bootstrap: resume the generator for the first time "now".
        bootstrap = Event(sim)
        bootstrap._value = None
        bootstrap.callbacks = None  # already processed
        sim._schedule_resume(self, bootstrap)

    def _resume(self, event: Event) -> None:
        """Advance the generator with the outcome of ``event``."""
        sim = self.sim
        while True:
            try:
                if event._exception is not None:
                    target = self._generator.throw(event._exception)
                else:
                    target = self._generator.send(event._value)
            except StopIteration as stop:
                if not self.triggered:
                    self.succeed(stop.value)
                return
            except BaseException as exc:
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if not self.callbacks:
                    # Nobody is waiting on this process: escalate rather
                    # than swallow the failure (a crashed model process
                    # must crash the simulation).
                    raise _annotate(exc, self.name)
                self.fail(_annotate(exc, self.name))
                return
            if not isinstance(target, Event):
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded non-event: {target!r}"
                    )
                )
                return
            if target.sim is not sim:
                self.fail(
                    SimulationError(
                        f"process {self.name!r} yielded an event of another simulator"
                    )
                )
                return
            if target.callbacks is None:
                # Already fired and processed: loop and resume inline, at
                # the current time, without a scheduler round-trip.
                event = target
                continue
            target.add_callback(self._resume_callback)
            return

    def _resume_callback(self, event: Event) -> None:
        self._resume(event)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name} at t={self.sim.now}>"


def _annotate(exc: BaseException, name: str) -> BaseException:
    """Tag an escaping exception with the process it escaped from."""
    note = f"(escaped from simulation process {name!r})"
    try:
        exc.add_note(note)
    except AttributeError:  # pragma: no cover - pre-3.11 fallback
        pass
    return exc


class _ConditionEvent(Event):
    """Shared machinery for :func:`all_of` / :func:`any_of`."""

    __slots__ = ("_pending", "_events", "_need_all")

    def __init__(self, sim: "Simulator", events: list[Event], need_all: bool) -> None:
        super().__init__(sim)
        self._events = events
        self._need_all = need_all
        self._pending = 0
        for ev in events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events of different simulators")
        if not events:
            self.succeed([])
            return
        for ev in events:
            if ev.callbacks is None:
                self._check(ev, fired_now=False)
            else:
                self._pending += 1
                ev.add_callback(lambda e: self._check(e, fired_now=True))
        if not self.triggered and self._need_all and self._pending == 0:
            self.succeed([ev.value for ev in events])
        if not self.triggered and not self._need_all:
            for ev in events:
                if ev.callbacks is None and ev.ok:
                    self.succeed(ev.value)
                    break

    def _check(self, event: Event, fired_now: bool) -> None:
        if fired_now:
            self._pending -= 1
        if self.triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
            return
        if self._need_all:
            if self._pending == 0 and all(ev.triggered for ev in self._events):
                self.succeed([ev.value for ev in self._events])
        else:
            self.succeed(event._value)


def all_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *all* of ``events`` succeed.

    Its value is the list of individual event values (in input order).
    Fails as soon as any constituent fails.
    """
    return _ConditionEvent(sim, list(events), need_all=True)


def any_of(sim: "Simulator", events: Iterable[Event]) -> Event:
    """An event firing when *any* of ``events`` succeeds.

    Its value is the value of the first event to fire.  An empty input
    succeeds immediately (vacuously) with ``[]``.
    """
    events = list(events)
    if not events:
        return _ConditionEvent(sim, [], need_all=True)
    return _ConditionEvent(sim, events, need_all=False)


class Simulator:
    """The event loop: a clock plus a priority queue of pending events."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Event]] = []
        self._seq = 0
        self._resume_heap_entries = 0

    # -- event construction ------------------------------------------------

    def event(self) -> Event:
        """A fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: int, value: Any = None) -> Timeout:
        """An event firing ``delay`` ticks from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Start a process running ``generator``; returns its completion event."""
        return Process(self, generator, name=name)

    def delayed(self, after: Event, delay: int) -> Event:
        """An event firing ``delay`` ticks after ``after`` succeeds.

        Used to model fixed-latency stages downstream of a variable-time
        event (e.g. "execute for N cycles once the load data arrives").
        """
        result = Event(self)

        def _chain(ev: Event) -> None:
            if ev._exception is not None:
                result.fail(ev._exception)
            elif delay == 0:
                result.succeed(ev._value)
            else:
                self._schedule_value(result, delay, ev._value)

        after.add_callback(_chain)
        return result

    # -- scheduling internals ----------------------------------------------

    def _schedule(self, event: Event, delay: int) -> None:
        if event._scheduled:
            raise SimulationError("event scheduled twice")
        event._scheduled = True
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))

    def _schedule_value(self, event: Event, delay: int, value: Any) -> None:
        """Trigger ``event`` with ``value`` after ``delay`` ticks."""
        event._value = value
        self._schedule(event, delay)

    def _schedule_resume(self, process: Process, bootstrap: Event) -> None:
        """Queue the very first resumption of a new process."""
        wrapper = Event(self)
        wrapper._value = None
        wrapper.add_callback(lambda _ev: process._resume(bootstrap))
        self._schedule(wrapper, delay=0)

    # -- running -------------------------------------------------------------

    def step(self) -> None:
        """Process the single next event in the queue."""
        when, _seq, event = heapq.heappop(self._heap)
        if when < self.now:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self.now = when
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)

    def run(self, until: Optional[int | Event] = None) -> Any:
        """Run the simulation.

        * ``until=None``: run until no events remain.
        * ``until=<int>``: run until the clock reaches that tick.
        * ``until=<Event>``: run until that event fires; returns its
          value (or raises its exception).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.triggered or stop_event.callbacks is not None:
                if not self._heap:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)"
                    )
                self.step()
            return stop_event.value
        if until is not None:
            horizon = int(until)
            while self._heap and self._heap[0][0] <= horizon:
                self.step()
            self.now = max(self.now, horizon)
            return None
        while self._heap:
            self.step()
        return None

    @property
    def pending_events(self) -> int:
        """Number of events currently queued (scheduled, not yet fired)."""
        return len(self._heap)


class Store:
    """Copy of the old FIFO store, bound to the reference kernel."""

    def __init__(
        self, sim: Simulator, capacity: Optional[int] = None, name: str = ""
    ) -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"store capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: list[Any] = []
        self._getters: list[Event] = []
        self._putters: list[tuple[Event, Any]] = []
        self.total_puts = 0
        self.max_level = 0

    def put(self, item: Any) -> Event:
        event = Event(self.sim)
        self.total_puts += 1
        if self._getters:
            getter = self._getters.pop(0)
            getter.succeed(item)
            event.succeed(None)
            return event
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            self.max_level = max(self.max_level, len(self._items))
            event.succeed(None)
        else:
            self._putters.append((event, item))
        return event

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            item = self._items.pop(0)
            self._admit_blocked_putter()
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def _admit_blocked_putter(self) -> None:
        if self._putters:
            putter, item = self._putters.pop(0)
            self._items.append(item)
            self.max_level = max(self.max_level, len(self._items))
            putter.succeed(None)
