"""Discrete-event simulation kernel (events, processes, resources, probes)."""

from repro.sim.kernel import (
    Event,
    KernelStatsCollector,
    Process,
    Simulator,
    all_of,
    any_of,
    collect_kernel_stats,
)
from repro.sim.resources import Resource, Store
from repro.sim.trace import Counter, LatencyStat, ProbeSet, TimeWeighted

__all__ = [
    "Event",
    "KernelStatsCollector",
    "Process",
    "Simulator",
    "all_of",
    "any_of",
    "collect_kernel_stats",
    "Resource",
    "Store",
    "Counter",
    "LatencyStat",
    "ProbeSet",
    "TimeWeighted",
]
