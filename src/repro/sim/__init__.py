"""Discrete-event simulation kernel (events, processes, resources, probes)."""

from repro.sim.kernel import Event, Process, Simulator, all_of, any_of
from repro.sim.resources import Resource, Store
from repro.sim.trace import Counter, LatencyStat, ProbeSet, TimeWeighted

__all__ = [
    "Event",
    "Process",
    "Simulator",
    "all_of",
    "any_of",
    "Resource",
    "Store",
    "Counter",
    "LatencyStat",
    "ProbeSet",
    "TimeWeighted",
]
