"""Parallel sweep engine with an on-disk result cache.

Every figure of the paper's evaluation (section V) is a grid of
*independent* simulator runs, and every run is bit-for-bit
deterministic (see ``docs/MODEL.md``).  That combination makes the
sweep layer embarrassingly parallel and perfectly cacheable:

* a :class:`SweepSpec` is a declarative list of :class:`SweepJob`
  entries (a microbenchmark measurement or a timed application run);
* a :class:`SweepEngine` executes the unique jobs of a sweep on a
  ``multiprocessing`` worker pool (``jobs=1`` stays in-process) and
  returns outcomes **in submission order**, regardless of completion
  order, so serial and parallel execution produce identical figures;
* results are memoized in a content-addressed JSON cache under
  ``.repro_cache/``, keyed by a :func:`~repro.config.stable_digest` of
  the full job description (:class:`~repro.config.SystemConfig` +
  :class:`~repro.workloads.microbench.MicrobenchSpec` +
  :class:`~repro.harness.experiment.MeasureWindow` + application
  parameters) salted with :data:`MODEL_VERSION`, so repeated figure
  runs and CI are near-instant and a model change invalidates
  everything at once;
* a worker that dies, hangs past ``timeout_s``, or cannot be spawned
  at all is retried and then **falls back to in-process execution**,
  so a sweep always completes with correct results.

Baselines are ordinary jobs: :func:`baseline_job` derives the
single-thread on-demand DRAM run that normalizes a measurement, and
the engine's key-level deduplication runs each distinct baseline once
per sweep (and zero times when warm in the cache).  This replaces the
process-unsafe module-level baseline singleton the harness used to
rely on.

Execution statistics flow through :class:`repro.sim.trace.ProbeSet`
counters (``sweep-cache-hit``, ``sweep-cache-miss``, ``sweep-sim``,
``sweep-retry``, ``sweep-fallback``) and a ``sweep-job-wall-ns``
latency probe, so benchmarks can assert cache behavior and speedup.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.config import (
    AccessMechanism,
    BackingStore,
    DeviceConfig,
    KernelQueueConfig,
    OnboardDramConfig,
    PcieConfig,
    SwqConfig,
    SystemConfig,
    stable_digest,
    to_jsonable,
)
from repro.errors import ConfigError
from repro.harness.applications import run_application
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.service import ServiceParams, run_service
from repro.sim import collect_kernel_stats
from repro.sim.trace import ProbeSet
from repro.units import NS_PER_S
from repro.workloads.microbench import MicrobenchSpec

__all__ = [
    "MODEL_VERSION",
    "SweepJob",
    "SweepSpec",
    "JobOutcome",
    "ResultCache",
    "SweepEngine",
    "baseline_job",
    "job_digest",
]

#: Cache salt: bump whenever a model change alters simulator outputs
#: *or the payload schema*, so every previously cached sweep result is
#: invalidated at once.  "2": payloads grew per-job ``kernel_stats``.
#: "3": registry latency snapshots became window-aware (p50/p99 now
#: exclude warmup, p999/jitter added) and the service job kind landed.
#: "4": calendar-queue scheduler -- simulation outputs are bit-for-bit
#: unchanged, but the per-job ``kernel_stats`` payload gained the
#: scheduler counter schema (spills, migrations, batch histogram).
MODEL_VERSION = "4"


@dataclass(frozen=True)
class SweepJob:
    """One independent simulator run inside a sweep.

    Either a windowed microbenchmark measurement (``spec`` + ``window``),
    a run-to-completion application study (``app`` + ``params``), or an
    open-loop service measurement (``service`` + ``window``).
    ``label`` is an opaque tag threaded through to the outcome for the
    caller's bookkeeping; it is never part of the cache key.
    """

    config: SystemConfig
    spec: Optional[MicrobenchSpec] = None
    window: Optional[MeasureWindow] = None
    app: Optional[str] = None
    params: object = None
    service: Optional[ServiceParams] = None
    label: object = None

    def __post_init__(self) -> None:
        if self.service is not None:
            if self.spec is not None or self.app is not None:
                raise ConfigError("a service job takes no spec/app")
            if self.window is None:
                object.__setattr__(self, "window", MeasureWindow())
        elif self.app is None:
            if self.spec is None:
                raise ConfigError("a microbench job needs a MicrobenchSpec")
            if self.window is None:
                object.__setattr__(self, "window", MeasureWindow())
        elif self.spec is not None or self.window is not None:
            raise ConfigError("an application job takes no spec/window")

    @property
    def kind(self) -> str:
        if self.service is not None:
            return "service"
        return "application" if self.app is not None else "microbench"

    def describe(self) -> str:
        if self.service is not None:
            arrivals = self.service.open_loop.arrivals
            target = (
                f"service {arrivals.kind.value} "
                f"{arrivals.rate_per_us:g}/us/core"
            )
        elif self.app is not None:
            target = self.app
        else:
            target = f"microbench work={self.spec.work_count}"
        return f"{target} on {self.config.describe()}"


@dataclass
class SweepSpec:
    """A named, ordered list of sweep jobs (one figure grid, say)."""

    name: str = "sweep"
    jobs: list[SweepJob] = field(default_factory=list)

    def add(self, job: SweepJob) -> SweepJob:
        self.jobs.append(job)
        return job

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class JobOutcome:
    """One executed (or cache-served) job, in submission order."""

    job: SweepJob
    key: str
    payload: dict
    cached: bool


def job_digest(job: SweepJob, salt: str = MODEL_VERSION) -> str:
    """Content-addressed cache key of ``job`` (label excluded)."""
    return stable_digest(
        salt,
        job.kind,
        job.config,
        job.spec,
        job.window,
        job.app,
        job.params,
        job.service,
    )


def baseline_job(job: SweepJob) -> SweepJob:
    """The single-thread on-demand DRAM run that normalizes ``job``.

    Mirrors the measurement protocol of section IV-C: same CPU, cache,
    uncore, and DRAM parameters; one thread on one core; plain loads
    from host DRAM.  For microbenchmarks the baseline keeps every spec
    field the baseline run consumes -- work-count, MLP ("normalized to
    the DRAM baseline with a matching degree of MLP", section V-B),
    and the per-thread working-set size.

    Parameters of paths the DRAM baseline never exercises (the device,
    PCIe, SWQ, and kernel-queue configs) are canonicalized to their
    defaults, so a latency sweep shares one baseline run instead of
    re-simulating an identical baseline per device latency.
    """
    if job.service is not None:
        raise ConfigError(
            "service jobs report absolute SLO latencies; there is no "
            "normalizing baseline to derive"
        )
    config = job.config.replace(
        cores=1,
        threads_per_core=1,
        mechanism=AccessMechanism.ON_DEMAND,
        backing=BackingStore.DRAM,
        device=DeviceConfig(),
        pcie=PcieConfig(),
        onboard_dram=OnboardDramConfig(),
        swq=SwqConfig(),
        kernel_queue=KernelQueueConfig(),
    )
    if job.app is not None:
        return SweepJob(config=config, app=job.app, params=job.params)
    spec = MicrobenchSpec(
        work_count=job.spec.work_count,
        reads_per_batch=job.spec.reads_per_batch,
        lines_per_thread=job.spec.lines_per_thread,
    )
    return SweepJob(config=config, spec=spec, window=job.window)


def _execute_job(
    job: SweepJob,
    collect_metrics: bool = False,
    check_invariants: bool = False,
) -> dict:
    """Run one job to a small JSON-able payload (worker entry point).

    Kernel counters are collected around the run and shipped in the
    payload (``"kernel_stats"``), so the parent can report simulator
    throughput even for work done in worker processes.
    """
    with collect_kernel_stats() as kernel:
        if job.service is not None:
            service_run = run_service(
                job.config,
                job.service,
                job.window,
                collect_metrics=collect_metrics,
                check_invariants=check_invariants,
            )
            payload = {"kind": "service", **service_run.payload()}
            if collect_metrics:
                payload["metrics"] = service_run.report["metrics"]
        elif job.app is not None:
            run = run_application(
                job.config,
                job.app,
                job.params,
                check_invariants=check_invariants,
            )
            payload = {
                "kind": "application",
                "ticks": run.ticks,
                "operations": run.operations,
            }
        else:
            result = run_microbench(
                job.config,
                job.spec,
                job.window,
                collect_metrics=collect_metrics,
                check_invariants=check_invariants,
            )
            stats = result.stats
            payload = {
                "kind": "microbench",
                "work_ipc": stats.work_ipc,
                "accesses": stats.accesses,
                "ticks": stats.ticks,
                "work_instructions": stats.work_instructions,
                "cycles": stats.cycles,
            }
            if collect_metrics:
                payload["metrics"] = result.report["metrics"]
    payload["kernel_stats"] = kernel.stats()
    return payload


class ResultCache:
    """Content-addressed on-disk cache: one JSON file per job key.

    Layout: ``<root>/<sha256>.json`` holding the format tag, the key,
    the salt, the canonical job description (for humans debugging a
    cache), and the result payload.  Writes go through a temp file +
    ``os.replace`` so readers never see a torn entry; every filesystem
    error degrades to a cache miss -- the cache is best-effort, never
    load-bearing for correctness.
    """

    FORMAT = "repro-sweep-cache-v1"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        try:
            with open(self.path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != self.FORMAT or entry.get("key") != key:
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def store(self, key: str, job: SweepJob, salt: str, result: dict) -> None:
        entry = {
            "format": self.FORMAT,
            "key": key,
            "model_version": salt,
            "job": to_jsonable(
                {
                    "kind": job.kind,
                    "config": job.config,
                    "spec": job.spec,
                    "window": job.window,
                    "app": job.app,
                    "params": job.params,
                    "service": job.service,
                }
            ),
            "result": result,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.path(key).with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path(key))
        except OSError:
            pass


class SweepEngine:
    """Executes sweeps on a worker pool, memoizing results on disk.

    ``jobs`` is the worker-process count (1 = in-process, serial).
    ``timeout_s`` bounds each wait on a pool result; a timeout or a
    worker exception is retried up to ``retries`` times through the
    pool and then falls back to in-process execution, so one bad
    worker can never lose a sweep.  Outcomes are always returned in
    submission order -- results are deterministic for any ``jobs``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[str, os.PathLike, None] = ".repro_cache",
        use_cache: bool = True,
        salt: str = MODEL_VERSION,
        timeout_s: float = 900.0,
        retries: int = 1,
        probes: Optional[ProbeSet] = None,
        collect_metrics: bool = False,
        check_invariants: bool = False,
        progress=None,
    ) -> None:
        if jobs < 1:
            raise ConfigError("the sweep engine needs at least one worker")
        if retries < 0:
            raise ConfigError("retries cannot be negative")
        self.jobs = jobs
        self.collect_metrics = bool(collect_metrics)
        self.check_invariants = bool(check_invariants)
        #: Optional :class:`repro.harness.progress.SweepProgress` (or
        #: anything with its begin/job_done/heartbeat/finish hooks).
        self.progress = progress
        # Metrics and invariants change the payload (metrics add a
        # snapshot; a monitored run's kernel counters include the watch
        # process), so such results must never share cache entries with
        # plain ones: salt them into disjoint key spaces.  A cached
        # ``+inv`` entry was invariant-checked when first simulated;
        # serving it from cache legitimately skips the re-check.
        self.salt = (
            str(salt)
            + ("+metrics" if collect_metrics else "")
            + ("+inv" if check_invariants else "")
        )
        self.timeout_s = timeout_s
        self.retries = retries
        self.probes = probes if probes is not None else ProbeSet()
        self.cache = (
            ResultCache(cache_dir) if use_cache and cache_dir else None
        )
        #: Summary of the most recent :meth:`run` (see below).
        self.last_stats: dict = {}

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "SweepEngine":
        """Engine configured from ``REPRO_SWEEP_JOBS`` (worker count),
        ``REPRO_CACHE_DIR`` (cache root), ``REPRO_NO_CACHE`` (any
        non-empty value disables the on-disk cache) and
        ``REPRO_SWEEP_METRICS`` (any non-empty value adds a registry
        snapshot to every microbench payload)."""
        env = os.environ if environ is None else environ
        return cls(
            jobs=int(env.get("REPRO_SWEEP_JOBS", "1") or "1"),
            cache_dir=env.get("REPRO_CACHE_DIR", ".repro_cache"),
            use_cache=not env.get("REPRO_NO_CACHE"),
            collect_metrics=bool(env.get("REPRO_SWEEP_METRICS")),
        )

    # -- execution -------------------------------------------------------

    def run(
        self, sweep: Union[SweepSpec, Iterable[SweepJob]]
    ) -> list[JobOutcome]:
        """Execute ``sweep``; outcomes are in submission order."""
        if isinstance(sweep, SweepSpec):
            name, jobs = sweep.name, list(sweep.jobs)
        else:
            name, jobs = "sweep", list(sweep)
        started = time.perf_counter()
        keys = [job_digest(job, self.salt) for job in jobs]

        # Key-level dedup: identical jobs (shared baselines, repeated
        # grid points) simulate at most once per sweep.
        unique: dict[str, SweepJob] = {}
        for key, job in zip(keys, jobs):
            unique.setdefault(key, job)

        results: dict[str, dict] = {}
        served_from_cache: set[str] = set()
        pending: list[tuple[str, SweepJob]] = []
        for key, job in unique.items():
            hit = self.cache.load(key) if self.cache else None
            if hit is not None:
                self.probes.counter("sweep-cache-hit").add()
                results[key] = hit
                served_from_cache.add(key)
            else:
                self.probes.counter("sweep-cache-miss").add()
                pending.append((key, job))

        if self.progress is not None:
            self.progress.begin(
                name,
                total=len(pending),
                cache_hits=len(served_from_cache),
                workers=self.jobs,
            )
        executed, retries, fallbacks = self._execute(pending)
        for key, job in pending:
            results[key] = executed[key]
            if self.cache:
                self.cache.store(key, job, self.salt, executed[key])

        # Merge the kernel counters shipped inside each freshly
        # executed payload: the parent now reports simulator totals
        # even for work done in worker processes.
        kernel_totals: dict[str, int] = {}
        for key, _job in pending:
            for stat, value in executed[key].get("kernel_stats", {}).items():
                kernel_totals[stat] = kernel_totals.get(stat, 0) + value

        self.probes.counter("sweep-jobs").add(len(jobs))
        self.probes.counter("sweep-sim").add(len(pending))
        self.last_stats = {
            "name": name,
            "jobs": len(jobs),
            "unique": len(unique),
            "cache_hits": len(served_from_cache),
            "cache_misses": len(pending),
            "simulated": len(pending),
            "retries": retries,
            "fallbacks": fallbacks,
            "workers": self.jobs,
            "wall_s": time.perf_counter() - started,
            "kernel_stats": kernel_totals,
        }
        if self.progress is not None:
            self.progress.finish(self.last_stats)
        return [
            JobOutcome(
                job=job,
                key=key,
                payload=results[key],
                cached=key in served_from_cache,
            )
            for job, key in zip(jobs, keys)
        ]

    def stats(self) -> dict:
        """Cumulative engine counters (across every ``run``)."""
        counter = self.probes.counter
        return {
            "jobs": counter("sweep-jobs").total,
            "simulated": counter("sweep-sim").total,
            "cache_hits": counter("sweep-cache-hit").total,
            "cache_misses": counter("sweep-cache-miss").total,
            "retries": counter("sweep-retry").total,
            "fallbacks": counter("sweep-fallback").total,
        }

    def _execute(
        self, pending: list[tuple[str, SweepJob]]
    ) -> tuple[dict[str, dict], int, int]:
        results: dict[str, dict] = {}
        retries = fallbacks = 0
        wall = self.probes.latency("sweep-job-wall-ns")
        progress = self.progress
        if self.jobs > 1 and len(pending) > 1:
            pool = self._make_pool(min(self.jobs, len(pending)))
            if pool is not None:
                try:
                    return self._execute_pool(pool, pending, results, wall)
                finally:
                    pool.terminate()
                    pool.join()
        for key, job in pending:
            t0 = time.perf_counter()
            results[key] = _execute_job(
                job, self.collect_metrics, self.check_invariants
            )
            elapsed = time.perf_counter() - t0
            wall.record(int(elapsed * NS_PER_S))
            if progress is not None:
                progress.job_done(elapsed, active=0)
        return results, retries, fallbacks

    def _execute_pool(
        self,
        pool,
        pending: list[tuple[str, SweepJob]],
        results: dict[str, dict],
        wall,
    ) -> tuple[dict[str, dict], int, int]:
        """Pool execution with a completion-order poll loop.

        Polling (rather than a serial ``get`` per ticket, as earlier
        revisions did) lets finished jobs report live progress while
        slower ones run, and gives every ticket its own submission-time
        deadline.  The retry-then-in-process-fallback semantics are
        unchanged: a worker exception or a ``timeout_s`` overrun is
        resubmitted up to ``retries`` times and then executed in the
        parent, so a sweep always completes.
        """
        retries = fallbacks = 0
        progress = self.progress
        job_args = (self.collect_metrics, self.check_invariants)

        def submit(job: SweepJob):
            return pool.apply_async(_execute_job, (job,) + job_args)

        state = {
            key: {
                "job": job,
                "ticket": submit(job),
                "t0": time.perf_counter(),
                "attempts": 0,
            }
            for key, job in pending
        }
        open_keys = list(state)
        while open_keys:
            still_open: list[str] = []
            harvested = False
            for key in open_keys:
                entry = state[key]
                payload = None
                failed = False
                if entry["ticket"].ready():
                    try:
                        payload = entry["ticket"].get(0)
                    except Exception:
                        failed = True
                elif time.perf_counter() - entry["t0"] > self.timeout_s:
                    failed = True  # hung worker: abandon the ticket
                else:
                    still_open.append(key)
                    continue
                if failed:
                    if entry["attempts"] < self.retries:
                        entry["attempts"] += 1
                        retries += 1
                        self.probes.counter("sweep-retry").add()
                        entry["ticket"] = submit(entry["job"])
                        entry["t0"] = time.perf_counter()
                        still_open.append(key)
                        continue
                    fallbacks += 1
                    self.probes.counter("sweep-fallback").add()
                    payload = _execute_job(entry["job"], *job_args)
                results[key] = payload
                harvested = True
                elapsed = time.perf_counter() - entry["t0"]
                wall.record(int(elapsed * NS_PER_S))
                if progress is not None:
                    remaining = len(state) - len(results)
                    progress.job_done(
                        elapsed, active=min(self.jobs, remaining)
                    )
            open_keys = still_open
            if open_keys and not harvested:
                if progress is not None:
                    progress.heartbeat(active=min(self.jobs, len(open_keys)))
                time.sleep(0.01)
        return results, retries, fallbacks

    @staticmethod
    def _make_pool(processes: int):
        """A fork-based pool where available (cheap, inherits the
        loaded model), else spawn; None if no pool can be created
        (the caller then runs everything in-process)."""
        try:
            method = (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else None
            )
            context = multiprocessing.get_context(method)
            return context.Pool(processes=processes)
        except (OSError, ValueError):  # pragma: no cover - platform quirk
            return None
