"""Parallel sweep engine with an on-disk result cache.

Every figure of the paper's evaluation (section V) is a grid of
*independent* simulator runs, and every run is bit-for-bit
deterministic (see ``docs/MODEL.md``).  That combination makes the
sweep layer embarrassingly parallel and perfectly cacheable:

* a :class:`SweepSpec` is a declarative list of :class:`SweepJob`
  entries (a microbenchmark measurement or a timed application run);
* a :class:`SweepEngine` executes the unique jobs of a sweep on a
  ``multiprocessing`` worker pool (``jobs=1`` stays in-process) and
  returns outcomes **in submission order**, regardless of completion
  order, so serial and parallel execution produce identical figures;
* results are memoized in a content-addressed JSON cache under
  ``.repro_cache/``, keyed by a :func:`~repro.config.stable_digest` of
  the full job description (:class:`~repro.config.SystemConfig` +
  :class:`~repro.workloads.microbench.MicrobenchSpec` +
  :class:`~repro.harness.experiment.MeasureWindow` + application
  parameters) salted with :data:`MODEL_VERSION`, so repeated figure
  runs and CI are near-instant and a model change invalidates
  everything at once;
* parallel execution is coordinated through a durable on-disk work
  queue (:mod:`repro.harness.coordinator`): worker *processes* claim
  jobs by atomic lease files, report job starts to the supervising
  engine, and write result records the engine harvests.  A worker
  that hangs past ``timeout_s`` (measured from when the job actually
  *started*, never from submission) is killed and replaced, so one
  stuck job cannot silently serialize the sweep; a worker that dies
  or raises is retried up to ``retries`` times and then **falls back
  to in-process execution**;
* a job that fails deterministically (the fallback raises too) becomes
  a structured *failure outcome* -- ``JobOutcome.error`` is set, the
  queue records the ``failed`` state, and every other job's result is
  preserved -- so a sweep always completes and never loses finished
  work;
* pointing the engine at a persistent ``queue_dir`` makes sweeps
  **interruptible and resumable**: completed jobs persist as queue
  records, independently launched ``repro sweep-worker --queue DIR``
  processes (or other hosts sharing the directory) drain the same
  queue, and a re-run executes only the missing jobs while producing
  bit-for-bit identical outcomes.

Baselines are ordinary jobs: :func:`baseline_job` derives the
single-thread on-demand DRAM run that normalizes a measurement, and
the engine's key-level deduplication runs each distinct baseline once
per sweep (and zero times when warm in the cache).  This replaces the
process-unsafe module-level baseline singleton the harness used to
rely on.

Execution statistics flow through :class:`repro.sim.trace.ProbeSet`
counters (``sweep-cache-hit``, ``sweep-cache-miss``, ``sweep-sim``,
``sweep-retry``, ``sweep-fallback``, ``sweep-failed``,
``sweep-respawn``, ``sweep-queue-hit``) and a ``sweep-job-wall-ns``
latency probe, so benchmarks can assert cache behavior and speedup.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import queue as queue_mod
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.config import (
    AccessMechanism,
    BackingStore,
    DeviceConfig,
    KernelQueueConfig,
    OnboardDramConfig,
    PcieConfig,
    SwqConfig,
    SystemConfig,
    stable_digest,
    to_jsonable,
)
from repro.errors import ConfigError
from repro.harness import coordinator
from repro.harness.applications import run_application
from repro.harness.experiment import MeasureWindow, run_microbench
from repro.harness.service import ServiceParams, run_service
from repro.sim import collect_kernel_stats
from repro.sim.trace import ProbeSet
from repro.units import NS_PER_S
from repro.workloads.microbench import MicrobenchSpec

__all__ = [
    "MODEL_VERSION",
    "SweepJob",
    "SweepSpec",
    "JobOutcome",
    "ResultCache",
    "SweepEngine",
    "baseline_job",
    "job_digest",
]

#: Cache salt: bump whenever a model change alters simulator outputs
#: *or the payload schema*, so every previously cached sweep result is
#: invalidated at once.  "2": payloads grew per-job ``kernel_stats``.
#: "3": registry latency snapshots became window-aware (p50/p99 now
#: exclude warmup, p999/jitter added) and the service job kind landed.
#: "4": calendar-queue scheduler -- simulation outputs are bit-for-bit
#: unchanged, but the per-job ``kernel_stats`` payload gained the
#: scheduler counter schema (spills, migrations, batch histogram).
#: "5": request-scoped latency attribution -- ``ServiceParams`` grew a
#: ``spans`` flag (changing service job digests) and span-enabled
#: service payloads carry the attribution table + exemplar span trees.
MODEL_VERSION = "5"


@dataclass(frozen=True)
class SweepJob:
    """One independent simulator run inside a sweep.

    Either a windowed microbenchmark measurement (``spec`` + ``window``),
    a run-to-completion application study (``app`` + ``params``), or an
    open-loop service measurement (``service`` + ``window``).
    ``label`` is an opaque tag threaded through to the outcome for the
    caller's bookkeeping; it is never part of the cache key.
    """

    config: SystemConfig
    spec: Optional[MicrobenchSpec] = None
    window: Optional[MeasureWindow] = None
    app: Optional[str] = None
    params: object = None
    service: Optional[ServiceParams] = None
    label: object = None

    def __post_init__(self) -> None:
        if self.service is not None:
            if self.spec is not None or self.app is not None:
                raise ConfigError("a service job takes no spec/app")
            if self.window is None:
                object.__setattr__(self, "window", MeasureWindow())
        elif self.app is None:
            if self.spec is None:
                raise ConfigError("a microbench job needs a MicrobenchSpec")
            if self.window is None:
                object.__setattr__(self, "window", MeasureWindow())
        elif self.spec is not None or self.window is not None:
            raise ConfigError("an application job takes no spec/window")

    @property
    def kind(self) -> str:
        if self.service is not None:
            return "service"
        return "application" if self.app is not None else "microbench"

    def describe(self) -> str:
        if self.service is not None:
            arrivals = self.service.open_loop.arrivals
            target = (
                f"service {arrivals.kind.value} "
                f"{arrivals.rate_per_us:g}/us/core"
            )
        elif self.app is not None:
            target = self.app
        else:
            target = f"microbench work={self.spec.work_count}"
        return f"{target} on {self.config.describe()}"


@dataclass
class SweepSpec:
    """A named, ordered list of sweep jobs (one figure grid, say)."""

    name: str = "sweep"
    jobs: list[SweepJob] = field(default_factory=list)

    def add(self, job: SweepJob) -> SweepJob:
        self.jobs.append(job)
        return job

    def __len__(self) -> int:
        return len(self.jobs)


@dataclass(frozen=True)
class JobOutcome:
    """One executed (or cache-served) job, in submission order.

    ``error`` is None for a successful job; for a job that failed
    deterministically (every retry and the in-process fallback raised)
    it carries the ``"ErrorType: message"`` string and ``payload`` is
    the structured failure record (``{"kind": "failure", ...}``).
    """

    job: SweepJob
    key: str
    payload: dict
    cached: bool
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def job_digest(job: SweepJob, salt: str = MODEL_VERSION) -> str:
    """Content-addressed cache key of ``job`` (label excluded)."""
    return stable_digest(
        salt,
        job.kind,
        job.config,
        job.spec,
        job.window,
        job.app,
        job.params,
        job.service,
    )


def baseline_job(job: SweepJob) -> SweepJob:
    """The single-thread on-demand DRAM run that normalizes ``job``.

    Mirrors the measurement protocol of section IV-C: same CPU, cache,
    uncore, and DRAM parameters; one thread on one core; plain loads
    from host DRAM.  For microbenchmarks the baseline keeps every spec
    field the baseline run consumes -- work-count, MLP ("normalized to
    the DRAM baseline with a matching degree of MLP", section V-B),
    and the per-thread working-set size.

    Parameters of paths the DRAM baseline never exercises (the device,
    PCIe, SWQ, and kernel-queue configs) are canonicalized to their
    defaults, so a latency sweep shares one baseline run instead of
    re-simulating an identical baseline per device latency.
    """
    if job.service is not None:
        raise ConfigError(
            "service jobs report absolute SLO latencies; there is no "
            "normalizing baseline to derive"
        )
    config = job.config.replace(
        cores=1,
        threads_per_core=1,
        mechanism=AccessMechanism.ON_DEMAND,
        backing=BackingStore.DRAM,
        device=DeviceConfig(),
        pcie=PcieConfig(),
        onboard_dram=OnboardDramConfig(),
        swq=SwqConfig(),
        kernel_queue=KernelQueueConfig(),
    )
    if job.app is not None:
        return SweepJob(config=config, app=job.app, params=job.params)
    spec = MicrobenchSpec(
        work_count=job.spec.work_count,
        reads_per_batch=job.spec.reads_per_batch,
        lines_per_thread=job.spec.lines_per_thread,
    )
    return SweepJob(config=config, spec=spec, window=job.window)


def _execute_job(
    job: SweepJob,
    collect_metrics: bool = False,
    check_invariants: bool = False,
) -> dict:
    """Run one job to a small JSON-able payload (worker entry point).

    Kernel counters are collected around the run and shipped in the
    payload (``"kernel_stats"``), so the parent can report simulator
    throughput even for work done in worker processes.
    """
    with collect_kernel_stats() as kernel:
        if job.service is not None:
            service_run = run_service(
                job.config,
                job.service,
                job.window,
                collect_metrics=collect_metrics,
                check_invariants=check_invariants,
            )
            payload = {"kind": "service", **service_run.payload()}
            if collect_metrics:
                payload["metrics"] = service_run.report["metrics"]
        elif job.app is not None:
            run = run_application(
                job.config,
                job.app,
                job.params,
                check_invariants=check_invariants,
            )
            payload = {
                "kind": "application",
                "ticks": run.ticks,
                "operations": run.operations,
            }
        else:
            result = run_microbench(
                job.config,
                job.spec,
                job.window,
                collect_metrics=collect_metrics,
                check_invariants=check_invariants,
            )
            stats = result.stats
            payload = {
                "kind": "microbench",
                "work_ipc": stats.work_ipc,
                "accesses": stats.accesses,
                "ticks": stats.ticks,
                "work_instructions": stats.work_instructions,
                "cycles": stats.cycles,
            }
            if collect_metrics:
                payload["metrics"] = result.report["metrics"]
    payload["kernel_stats"] = kernel.stats()
    return payload


def _failure_payload(error_text: str, error_type: str, worker: str) -> dict:
    """The structured payload a deterministically failing job yields."""
    return {
        "kind": "failure",
        "error": error_text,
        "error_type": error_type,
        "worker": worker,
    }


class ResultCache:
    """Content-addressed on-disk cache: one JSON file per job key.

    Layout: ``<root>/<sha256>.json`` holding the format tag, the key,
    the salt, the canonical job description (for humans debugging a
    cache), and the result payload.  Writes go through a temp file +
    ``os.replace`` so readers never see a torn entry; every filesystem
    error degrades to a cache miss -- the cache is best-effort, never
    load-bearing for correctness.
    """

    FORMAT = "repro-sweep-cache-v1"

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        try:
            with open(self.path(key)) as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            return None
        if entry.get("format") != self.FORMAT or entry.get("key") != key:
            return None
        result = entry.get("result")
        return result if isinstance(result, dict) else None

    def store(self, key: str, job: SweepJob, salt: str, result: dict) -> None:
        entry = {
            "format": self.FORMAT,
            "key": key,
            "model_version": salt,
            "job": to_jsonable(
                {
                    "kind": job.kind,
                    "config": job.config,
                    "spec": job.spec,
                    "window": job.window,
                    "app": job.app,
                    "params": job.params,
                    "service": job.service,
                }
            ),
            "result": result,
        }
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            tmp = self.path(key).with_suffix(f".tmp.{os.getpid()}")
            with open(tmp, "w") as handle:
                json.dump(entry, handle, sort_keys=True)
                handle.write("\n")
            os.replace(tmp, self.path(key))
        except OSError:
            pass


class SweepEngine:
    """Executes sweeps on worker processes, memoizing results on disk.

    ``jobs`` is the worker-process count (1 = in-process, serial).
    Parallel execution goes through a :class:`~repro.harness
    .coordinator.WorkQueue` (a throwaway one unless ``queue_dir`` is
    set): workers claim jobs by lease, and the engine supervises them
    with per-job deadlines measured from the *observed job start* --
    time spent waiting for a free worker never counts against
    ``timeout_s``.  A hung worker is killed and replaced (restoring
    pool concurrency), a worker exception or crash is retried up to
    ``retries`` times and then falls back to in-process execution, and
    a job whose fallback also raises becomes a structured failure
    outcome instead of abandoning the sweep.  Outcomes are always
    returned in submission order -- results are deterministic for any
    ``jobs``.

    With a persistent ``queue_dir`` the sweep is interruptible and
    resumable: every completed job's record survives in
    ``queue_dir/<name>-<spec digest>/`` alongside an experiment
    manifest, a re-run executes only unresolved jobs, and
    independently launched ``repro sweep-worker --queue DIR``
    processes share the work.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: Union[str, os.PathLike, None] = ".repro_cache",
        use_cache: bool = True,
        salt: str = MODEL_VERSION,
        timeout_s: float = 900.0,
        retries: int = 1,
        probes: Optional[ProbeSet] = None,
        collect_metrics: bool = False,
        check_invariants: bool = False,
        progress=None,
        queue_dir: Union[str, os.PathLike, None] = None,
        lease_s: float = coordinator.DEFAULT_LEASE_S,
    ) -> None:
        if jobs < 1:
            raise ConfigError("the sweep engine needs at least one worker")
        if retries < 0:
            raise ConfigError("retries cannot be negative")
        if not timeout_s > 0:
            raise ConfigError("the per-job timeout must be positive")
        if not lease_s > 0:
            raise ConfigError("the queue lease duration must be positive")
        self.jobs = jobs
        self.queue_dir = queue_dir
        self.lease_s = lease_s
        self.collect_metrics = bool(collect_metrics)
        self.check_invariants = bool(check_invariants)
        #: Optional :class:`repro.harness.progress.SweepProgress` (or
        #: anything with its begin/job_done/heartbeat/finish hooks).
        self.progress = progress
        # Metrics and invariants change the payload (metrics add a
        # snapshot; a monitored run's kernel counters include the watch
        # process), so such results must never share cache entries with
        # plain ones: salt them into disjoint key spaces.  A cached
        # ``+inv`` entry was invariant-checked when first simulated;
        # serving it from cache legitimately skips the re-check.
        self.salt = (
            str(salt)
            + ("+metrics" if collect_metrics else "")
            + ("+inv" if check_invariants else "")
        )
        self.timeout_s = timeout_s
        self.retries = retries
        self.probes = probes if probes is not None else ProbeSet()
        self.cache = (
            ResultCache(cache_dir) if use_cache and cache_dir else None
        )
        #: Summary of the most recent :meth:`run` (see below).
        self.last_stats: dict = {}

    @classmethod
    def from_env(cls, environ: Optional[dict] = None) -> "SweepEngine":
        """Engine configured from ``REPRO_SWEEP_JOBS`` (worker count),
        ``REPRO_CACHE_DIR`` (cache root), ``REPRO_NO_CACHE`` (any
        non-empty value disables the on-disk cache),
        ``REPRO_SWEEP_METRICS`` (any non-empty value adds a registry
        snapshot to every microbench payload),
        ``REPRO_SWEEP_TIMEOUT_S`` (per-job deadline, measured from the
        observed job start) and ``REPRO_SWEEP_RETRIES`` (worker-side
        attempts before the in-process fallback), so CI and remote
        workers tune failure handling without code changes."""
        env = os.environ if environ is None else environ
        timeout_raw = env.get("REPRO_SWEEP_TIMEOUT_S")
        try:
            timeout_s = float(timeout_raw) if timeout_raw else 900.0
        except ValueError:
            raise ConfigError(
                f"REPRO_SWEEP_TIMEOUT_S={timeout_raw!r} is not a number"
            )
        retries_raw = env.get("REPRO_SWEEP_RETRIES")
        try:
            retries = int(retries_raw) if retries_raw else 1
        except ValueError:
            raise ConfigError(
                f"REPRO_SWEEP_RETRIES={retries_raw!r} is not an integer"
            )
        return cls(
            jobs=int(env.get("REPRO_SWEEP_JOBS", "1") or "1"),
            cache_dir=env.get("REPRO_CACHE_DIR", ".repro_cache"),
            use_cache=not env.get("REPRO_NO_CACHE"),
            collect_metrics=bool(env.get("REPRO_SWEEP_METRICS")),
            timeout_s=timeout_s,
            retries=retries,
        )

    # -- execution -------------------------------------------------------

    def run(
        self, sweep: Union[SweepSpec, Iterable[SweepJob]]
    ) -> list[JobOutcome]:
        """Execute ``sweep``; outcomes are in submission order."""
        if isinstance(sweep, SweepSpec):
            name, jobs = sweep.name, list(sweep.jobs)
        else:
            name, jobs = "sweep", list(sweep)
        started = time.perf_counter()
        keys = [job_digest(job, self.salt) for job in jobs]

        # Key-level dedup: identical jobs (shared baselines, repeated
        # grid points) simulate at most once per sweep.
        unique: dict[str, SweepJob] = {}
        for key, job in zip(keys, jobs):
            unique.setdefault(key, job)

        queue = (
            self._open_queue(name, list(unique))
            if self.queue_dir is not None
            else None
        )

        # Every resolved key gets a done record {payload, cached,
        # worker, wall_s}; kernel totals below sum the ``cached=False``
        # ones, so an interrupted-then-resumed sweep reports the same
        # simulator totals as an uninterrupted run.
        records: dict[str, dict] = {}
        served_from_cache: set[str] = set()
        queue_served: set[str] = set()
        pending: list[tuple[str, SweepJob]] = []
        for key, job in unique.items():
            record = queue.done_record(key) if queue is not None else None
            if record is not None and isinstance(record.get("payload"), dict):
                # A previous (interrupted) run or a concurrent worker
                # already finished this job; the queue record outranks
                # the cache so resumed totals stay bit-for-bit.
                self.probes.counter("sweep-queue-hit").add()
                records[key] = record
                queue_served.add(key)
                continue
            hit = self.cache.load(key) if self.cache else None
            if hit is not None:
                self.probes.counter("sweep-cache-hit").add()
                record = {
                    "payload": hit,
                    "cached": True,
                    "worker": coordinator.worker_id(),
                    "wall_s": 0.0,
                }
                records[key] = record
                served_from_cache.add(key)
                if queue is not None:
                    queue.complete(key, record)
                continue
            self.probes.counter("sweep-cache-miss").add()
            pending.append((key, job))

        if self.progress is not None:
            self.progress.begin(
                name,
                total=len(pending),
                cache_hits=len(served_from_cache),
                workers=self.jobs,
            )
        failures: dict[str, str] = {}
        counters = {"retries": 0, "fallbacks": 0, "respawns": 0}
        try:
            self._execute(name, pending, queue, records, failures, counters)
        except KeyboardInterrupt:
            # Interrupted mid-sweep: everything harvested so far is
            # already durable in the queue; stamp the manifest so a
            # ``--resume`` (or ``runs show``) sees the partial state.
            self.last_stats = self._summarize(
                name, jobs, unique, served_from_cache, queue_served,
                records, failures, counters, started, queue,
                interrupted=True,
            )
            raise

        if self.cache is not None:
            for key in sorted(queue_served):
                self.cache.store(
                    key, unique[key], self.salt, records[key]["payload"]
                )
            for key, job in pending:
                if key not in failures:
                    self.cache.store(
                        key, job, self.salt, records[key]["payload"]
                    )

        self.probes.counter("sweep-jobs").add(len(jobs))
        self.probes.counter("sweep-sim").add(len(pending))
        self.last_stats = self._summarize(
            name, jobs, unique, served_from_cache, queue_served,
            records, failures, counters, started, queue,
        )
        if self.progress is not None:
            self.progress.finish(self.last_stats)
        return [
            JobOutcome(
                job=job,
                key=key,
                payload=records[key]["payload"],
                cached=key in served_from_cache or key in queue_served,
                error=failures.get(key),
            )
            for job, key in zip(jobs, keys)
        ]

    def stats(self) -> dict:
        """Cumulative engine counters (across every ``run``)."""
        counter = self.probes.counter
        return {
            "jobs": counter("sweep-jobs").total,
            "simulated": counter("sweep-sim").total,
            "cache_hits": counter("sweep-cache-hit").total,
            "cache_misses": counter("sweep-cache-miss").total,
            "queue_hits": counter("sweep-queue-hit").total,
            "retries": counter("sweep-retry").total,
            "fallbacks": counter("sweep-fallback").total,
            "failed": counter("sweep-failed").total,
            "respawns": counter("sweep-respawn").total,
        }

    # -- queue plumbing --------------------------------------------------

    def _open_queue(self, name: str, keys: list[str]) -> coordinator.WorkQueue:
        """Create-or-attach this sweep's persistent queue (one
        subdirectory of ``queue_dir`` per distinct sweep spec) and
        return previously ``failed`` jobs to pending so a resume
        retries them."""
        from repro.obs.runlog import git_sha

        digest = coordinator.spec_digest(name, self.salt, keys)
        root = Path(self.queue_dir) / f"{name}-{digest[:12]}"
        queue = coordinator.WorkQueue.ensure(
            root,
            name=name,
            salt=self.salt,
            model_version=MODEL_VERSION,
            keys=keys,
            collect_metrics=self.collect_metrics,
            check_invariants=self.check_invariants,
            git_sha=git_sha(),
        )
        for key in keys:
            queue.clear_failure(key)
        return queue

    def _summarize(
        self, name, jobs, unique, served_from_cache, queue_served,
        records, failures, counters, started, queue, interrupted=False,
    ) -> dict:
        # Simulator totals for this *experiment*: sum the counters in
        # every non-cache-served record.  Each job executes exactly
        # once across an interrupt+resume pair, so the resumed totals
        # equal an uninterrupted run's.
        kernel_totals: dict[str, int] = {}
        for record in records.values():
            if record.get("cached"):
                continue
            payload = record.get("payload") or {}
            for stat, value in payload.get("kernel_stats", {}).items():
                kernel_totals[stat] = kernel_totals.get(stat, 0) + value
        executed = len(unique) - len(served_from_cache) - len(queue_served)
        stats = {
            "name": name,
            "jobs": len(jobs),
            "unique": len(unique),
            "cache_hits": len(served_from_cache),
            "cache_misses": executed,
            "simulated": executed,
            "queue_served": len(queue_served),
            "retries": counters["retries"],
            "fallbacks": counters["fallbacks"],
            "worker_respawns": counters["respawns"],
            "failed": len(failures),
            "failures": dict(sorted(failures.items())),
            "workers": self.jobs,
            "wall_s": time.perf_counter() - started,
            "kernel_stats": kernel_totals,
        }
        if interrupted:
            stats["interrupted"] = True
        if queue is not None:
            manifest = queue.finalize_manifest()
            stats["queue"] = {
                "dir": str(queue.root),
                "spec_digest": manifest.get("spec_digest"),
                "counts": manifest.get("counts"),
            }
        return stats

    # -- execution strategies --------------------------------------------

    def _execute(
        self, name, pending, queue, records, failures, counters
    ) -> None:
        """Resolve every pending key into ``records`` (and failed ones
        into ``failures``), dispatching on worker count and queue."""
        if not pending:
            return
        if self.jobs > 1 and len(pending) > 1:
            owned_root = None
            if queue is None:
                # No persistent queue requested: parallel runs still
                # coordinate through the same machinery, on a
                # throwaway queue directory.
                owned_root = tempfile.mkdtemp(prefix="repro-sweep-")
                queue = coordinator.WorkQueue.ensure(
                    owned_root,
                    name=name,
                    salt=self.salt,
                    model_version=MODEL_VERSION,
                    keys=[key for key, _job in pending],
                    collect_metrics=self.collect_metrics,
                    check_invariants=self.check_invariants,
                )
            try:
                for key, job in pending:
                    queue.enqueue(key, job)
                self._execute_parallel(
                    queue, pending, records, failures, counters
                )
            finally:
                if owned_root is not None:
                    shutil.rmtree(owned_root, ignore_errors=True)
            return
        if queue is not None:
            for key, job in pending:
                queue.enqueue(key, job)
            self._execute_queue_serial(queue, pending, records, failures)
            return
        self._execute_serial(pending, records, failures)

    def _execute_serial(self, pending, records, failures) -> None:
        """In-process execution (``jobs=1``, no queue directory)."""
        worker = coordinator.worker_id()
        for key, job in pending:
            t0 = time.perf_counter()
            error = None
            try:
                payload = _execute_job(
                    job, self.collect_metrics, self.check_invariants
                )
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                payload = _failure_payload(error, type(exc).__name__, worker)
                failures[key] = error
                self.probes.counter("sweep-failed").add()
            record = {
                "payload": payload,
                "cached": False,
                "worker": worker,
                "wall_s": time.perf_counter() - t0,
            }
            if error is not None:
                record["error"] = error
            records[key] = record
            self._note_done(record, remaining=0)

    def _execute_queue_serial(self, queue, pending, records, failures) -> None:
        """Drain this sweep's jobs in-process through the queue
        (``jobs=1`` with a persistent ``queue_dir``): claims keep
        concurrent standalone workers off our jobs, and done records
        make every completion durable the moment it happens."""
        worker = coordinator.worker_id()
        open_jobs = dict(pending)
        while open_jobs:
            progressed = False
            for key in list(open_jobs):
                record = queue.done_record(key)
                if record is not None and isinstance(
                    record.get("payload"), dict
                ):
                    # A standalone worker sharing the queue finished it.
                    records[key] = record
                    del open_jobs[key]
                    self._note_done(record, remaining=len(open_jobs))
                    progressed = True
                    continue
                if queue.failure(key) is not None:
                    # A standalone worker failed it; this run owns the
                    # final verdict, so retry locally.
                    queue.clear_failure(key)
                if not queue.try_claim(key, worker, self.lease_s):
                    continue  # a live worker holds it; revisit
                record = self._run_inline(
                    queue, key, open_jobs[key], records, failures
                )
                del open_jobs[key]
                self._note_done(record, remaining=len(open_jobs))
                progressed = True
            if open_jobs and not progressed:
                self._note_waiting(queue, active=1)
                time.sleep(0.05)

    def _execute_parallel(
        self, queue, pending, records, failures, counters
    ) -> None:
        """Supervise local worker processes draining the queue.

        Workers report each job's actual start (worker-side monotonic
        stamp), so ``timeout_s`` measures execution, never time spent
        waiting for a free worker.  A worker past the deadline is
        killed and a replacement spawned; a worker failure or crash is
        retried through the queue up to ``retries`` times and then run
        in-process; a job whose fallback also raises is recorded as a
        structured failure.
        """
        context = self._mp_context()
        events = context.Queue()
        base = coordinator.worker_id()
        workers: dict = {}
        all_dead: set = set()
        spawned = 0
        # Backstop against workers that die before claiming anything
        # (broken environment): after this many spawns, finish inline.
        spawn_budget = (
            min(self.jobs, len(pending))
            + len(pending) * (self.retries + 1)
        )

        def spawn() -> None:
            nonlocal spawned
            proc = context.Process(
                target=coordinator._local_worker_main,
                args=(
                    str(queue.root), f"{base}-w{spawned}", events,
                    self.collect_metrics, self.check_invariants,
                    self.lease_s,
                ),
                daemon=True,
            )
            spawned += 1
            proc.start()
            workers[f"{base}-w{spawned - 1}"] = proc

        def resolve_locally(key, entry) -> None:
            """Retries exhausted: the parent runs the job itself."""
            record = self._run_inline(
                queue, key, entry["job"], records, failures, counters
            )
            del state[key]
            self._note_done(record, remaining=len(state))

        state = {
            key: {"job": job, "attempts": 0, "worker": None, "started": None}
            for key, job in pending
        }
        try:
            for _ in range(min(self.jobs, len(state))):
                spawn()
            while state:
                try:
                    while True:
                        event = events.get_nowait()
                        if event[0] == "started" and event[2] in state:
                            entry = state[event[2]]
                            entry["worker"] = event[1]
                            entry["started"] = event[3]
                except queue_mod.Empty:
                    pass
                for name in [
                    n for n, p in workers.items() if not p.is_alive()
                ]:
                    workers.pop(name).join()
                    all_dead.add(name)
                harvested = False
                for key in list(state):
                    entry = state[key]
                    if queue.failure(key) is not None:
                        # The worker moved on already; only the retry
                        # budget decides what happens next.
                        if self._note_retry(counters, entry):
                            queue.clear_failure(key)  # claimable again
                            entry["worker"] = entry["started"] = None
                        else:
                            resolve_locally(key, entry)
                            harvested = True
                        continue
                    if (
                        entry["started"] is not None
                        and time.monotonic() - entry["started"]
                        > self.timeout_s
                    ):
                        # Hung worker: kill it -- a timed-out ticket
                        # must not keep occupying its pool slot.
                        proc = workers.pop(entry["worker"], None)
                        if proc is not None:
                            all_dead.add(entry["worker"])
                            proc.terminate()
                            proc.join(timeout=5.0)
                            if proc.is_alive():  # pragma: no cover
                                proc.kill()
                                proc.join()
                        queue.release(key)
                        entry["worker"] = entry["started"] = None
                        if not self._note_retry(counters, entry):
                            resolve_locally(key, entry)
                            harvested = True
                        continue
                    record = queue.done_record(key)
                    if record is not None and isinstance(
                        record.get("payload"), dict
                    ):
                        records[key] = record
                        del state[key]
                        self._note_done(record, remaining=len(state))
                        harvested = True
                        continue
                    # Crashed worker holding this key?  (The lease
                    # check covers claims whose started event was
                    # still in flight when the worker died.)
                    holder = entry["worker"]
                    if holder is None and all_dead:
                        lease = queue.lease(key)
                        if (
                            lease is not None
                            and lease.get("worker") in all_dead
                        ):
                            holder = lease["worker"]
                    if holder is not None and holder in all_dead:
                        queue.release(key)
                        entry["worker"] = entry["started"] = None
                        if not self._note_retry(counters, entry):
                            resolve_locally(key, entry)
                            harvested = True
                # Respawn to restore the configured concurrency after
                # kills and crashes.
                while (
                    state
                    and len(workers) < min(self.jobs, len(state))
                    and spawned < spawn_budget
                ):
                    spawn()
                    counters["respawns"] += 1
                    self.probes.counter("sweep-respawn").add()
                if not workers and state and spawned >= spawn_budget:
                    for key in list(state):  # pragma: no cover - backstop
                        queue.release(key)
                        resolve_locally(key, state[key])
                    break
                if state and not harvested:
                    self._note_waiting(
                        queue, active=min(self.jobs, len(state))
                    )
                    time.sleep(0.02)
        finally:
            for proc in workers.values():
                proc.terminate()
            for proc in workers.values():
                proc.join()
            # Terminated workers cannot release their own claims, and
            # their lease records embed this parent's (live) pid -- so
            # drop them here, or a resume from this same process would
            # wait out the full lease term.
            prefix = f"{base}-w"
            for key in state:
                lease = queue.lease(key)
                if lease is not None and str(
                    lease.get("worker", "")
                ).startswith(prefix):
                    queue.release(key)
            events.close()

    # -- shared helpers --------------------------------------------------

    def _note_retry(self, counters, entry) -> bool:
        """Account one failed attempt; True if the job goes back to
        the queue, False when retries are exhausted and the caller
        must resolve it in-process."""
        if entry["attempts"] < self.retries:
            entry["attempts"] += 1
            counters["retries"] += 1
            self.probes.counter("sweep-retry").add()
            return True
        counters["fallbacks"] += 1
        self.probes.counter("sweep-fallback").add()
        return False

    def _run_inline(
        self, queue, key, job, records, failures, counters=None
    ) -> dict:
        """Execute ``key`` in this process and resolve it in the queue
        (the serial queue path, and the retries-exhausted fallback).
        A job that raises here becomes a structured failure record --
        never a lost sweep."""
        worker = f"{coordinator.worker_id()}-inline"
        queue.try_claim(key, worker, self.lease_s)
        t0 = time.perf_counter()
        try:
            payload = _execute_job(
                job, self.collect_metrics, self.check_invariants
            )
        except KeyboardInterrupt:
            queue.release(key)
            raise
        except Exception as exc:
            error = f"{type(exc).__name__}: {exc}"
            record = {
                "payload": _failure_payload(
                    error, type(exc).__name__, worker
                ),
                "cached": False,
                "worker": worker,
                "wall_s": time.perf_counter() - t0,
                "error": error,
            }
            queue.fail(key, coordinator._failure_record(exc, worker))
            failures[key] = error
            records[key] = record
            self.probes.counter("sweep-failed").add()
            return record
        record = {
            "payload": payload,
            "cached": False,
            "worker": worker,
            "wall_s": time.perf_counter() - t0,
        }
        queue.complete(key, record)
        records[key] = record
        return record

    def _note_done(self, record, remaining: int) -> None:
        wall_s = float(record.get("wall_s") or 0.0)
        self.probes.latency("sweep-job-wall-ns").record(
            int(wall_s * NS_PER_S)
        )
        if self.progress is not None:
            active = min(self.jobs, remaining) if self.jobs > 1 else 0
            self.progress.job_done(wall_s, active=active)

    def _note_waiting(self, queue, active: int) -> None:
        if self.progress is None:
            return
        self.progress.heartbeat(active=active)
        snapshot = getattr(self.progress, "queue_snapshot", None)
        if snapshot is not None and queue is not None:
            snapshot(queue.counts())

    @staticmethod
    def _mp_context():
        """A fork context where available (cheap, inherits the loaded
        model -- and monkeypatches, which the fault-injection tests
        rely on), else the platform default."""
        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        return multiprocessing.get_context(method)
