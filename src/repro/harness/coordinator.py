"""Distributed, resumable sweep coordination over a shared directory.

The sweep engine (:mod:`repro.harness.sweep`) executes independent,
deterministic, content-addressed jobs -- which makes sweep *state*
as cacheable as sweep *results*.  This module turns that observation
into a durable on-disk work queue:

* a :class:`WorkQueue` is a directory holding one sweep's jobs, keyed
  by :func:`~repro.harness.sweep.job_digest`.  Each job is in exactly
  one state -- ``pending`` (job file, no markers), ``leased`` (a live
  worker holds ``leases/<key>.json``), ``done`` (``done/<key>.json``
  carries the result payload) or ``failed`` (``failed/<key>.json``
  carries a structured error);
* claims are arbitrated by atomic ``O_EXCL`` lease-file creation, so
  any number of worker processes -- spawned by the engine, launched by
  hand via ``repro sweep-worker --queue DIR``, or running on another
  host against a shared filesystem -- can drain one queue without a
  coordinator process.  Leases expire (``lease_s``), so a job claimed
  by a crashed worker returns to ``pending`` and is re-claimed; jobs
  are idempotent and results content-addressed, so the benign race of
  two workers finishing the same job writes the same record twice;
* every queue carries an **experiment manifest** (``manifest.json``):
  the sweep's spec digest, salt/:data:`~repro.harness.sweep
  .MODEL_VERSION`, a BENCH-style provenance stamp (git SHA), the job
  keys in submission order with their final states, and the run-ledger
  record ids of every run that touched the queue -- the CORTEX-style
  versioned experiment record the ROADMAP asks for.

Interrupting a sweep (SIGINT, worker kill, power loss) loses at most
the in-flight jobs: ``done`` records persist, and a resumed sweep
(``repro sweep --resume``) re-enters the queue, executes only the
missing jobs, and reassembles outcomes bit-for-bit identical to an
uninterrupted run.

Wall-clock use here is deliberate and host-side only (lease expiry,
worker polling); nothing in this module feeds simulated time.
"""

from __future__ import annotations

import json
import os
import socket
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.config import from_jsonable, stable_digest, to_jsonable
from repro.errors import ConfigError

__all__ = [
    "MANIFEST_FORMAT",
    "PENDING",
    "LEASED",
    "DONE",
    "FAILED",
    "WorkQueue",
    "job_to_jsonable",
    "job_from_jsonable",
    "worker_id",
    "worker_loop",
    "drain_queue_tree",
    "find_queues",
]

#: Manifest schema tag; readers reject queues they cannot interpret.
MANIFEST_FORMAT = "repro-sweep-manifest-v1"

#: Job states (the strings stored in manifests and reported by CLIs).
PENDING = "pending"
LEASED = "leased"
DONE = "done"
FAILED = "failed"

#: Default lease duration: generous enough for the slowest full-scale
#: job, short enough that a crashed host's jobs recirculate within a
#: long sweep's lifetime.  The engine supervises its *local* workers
#: far more tightly (``timeout_s`` from the observed job start).
DEFAULT_LEASE_S = 900.0


# ---------------------------------------------------------------------------
# Job (de)serialization
# ---------------------------------------------------------------------------

def _param_types() -> dict:
    """Registry of application-parameter dataclasses by class name.

    ``SweepJob.params`` is typed ``object`` (each application brings
    its own frozen params class), so the JSON form records the class
    name and this registry resolves it back.
    """
    from repro.harness.applications import MicrobenchAppParams
    from repro.workloads.bfs import BfsParams
    from repro.workloads.bloom import BloomParams
    from repro.workloads.memcached import MemcachedParams

    return {
        cls.__name__: cls
        for cls in (
            BfsParams, BloomParams, MemcachedParams, MicrobenchAppParams
        )
    }


def job_to_jsonable(job) -> dict:
    """The JSON-able description of ``job`` a queue stores on disk.

    Everything that is part of the job's identity is kept; ``label``
    is caller-side bookkeeping and deliberately dropped (it is not part
    of :func:`~repro.harness.sweep.job_digest` either).
    """
    data = {
        "kind": job.kind,
        "config": to_jsonable(job.config),
        "spec": to_jsonable(job.spec),
        "window": to_jsonable(job.window),
        "app": job.app,
        "params": to_jsonable(job.params),
        "service": to_jsonable(job.service),
    }
    if job.params is not None:
        data["params_type"] = type(job.params).__name__
    return data


def job_from_jsonable(data: dict):
    """Rebuild an executable :class:`~repro.harness.sweep.SweepJob`
    from its on-disk JSON description (inverse of
    :func:`job_to_jsonable`)."""
    from repro.harness.experiment import MeasureWindow
    from repro.harness.service import ServiceParams
    from repro.harness.sweep import SweepJob
    from repro.config import SystemConfig
    from repro.workloads.microbench import MicrobenchSpec

    params = None
    if data.get("params") is not None:
        type_name = data.get("params_type")
        params_cls = _param_types().get(type_name)
        if params_cls is None:
            raise ConfigError(
                f"queued job has unknown params type {type_name!r}"
            )
        params = from_jsonable(params_cls, data["params"])
    return SweepJob(
        config=from_jsonable(SystemConfig, data["config"]),
        spec=from_jsonable(Optional[MicrobenchSpec], data.get("spec")),
        window=from_jsonable(Optional[MeasureWindow], data.get("window")),
        app=data.get("app"),
        params=params,
        service=from_jsonable(Optional[ServiceParams], data.get("service")),
    )


def spec_digest(name: str, salt: str, keys: list[str]) -> str:
    """Content digest identifying one sweep: its name, engine salt,
    and job keys in submission order."""
    return stable_digest("sweep-spec", name, salt, list(keys))


def worker_id() -> str:
    """A host-unique worker name (hostname + pid)."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _worker_alive(worker) -> Optional[bool]:
    """Liveness of a ``hostname-pid[...]`` worker id: True/False when
    the embedded pid is on this host, None when the worker is remote
    (unknowable from here).

    Engine-spawned workers are named ``<hostname>-<parent pid>-wN``,
    so the pid probed is the coordinating process; when a sweep is
    interrupted hard (SIGKILL, terminated worker pool) its leases
    become steal-able immediately instead of after the full lease
    term.  A recycled pid can make a dead worker look alive; the
    lease expiry still bounds that window.
    """
    text = str(worker)
    prefix = f"{socket.gethostname()}-"
    if not text.startswith(prefix):
        return None
    digits = ""
    for char in text[len(prefix):]:
        if not char.isdigit():
            break
        digits += char
    if not digits:
        return None
    try:
        os.kill(int(digits), 0)
    except ProcessLookupError:
        return False
    except OSError:
        return None
    return True


# ---------------------------------------------------------------------------
# Atomic JSON files
# ---------------------------------------------------------------------------

def _write_json(path: Path, payload: dict) -> None:
    """Write ``payload`` atomically (temp file + ``os.replace``), so a
    reader never observes a torn record and a crashed writer leaves
    the previous state intact."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _read_json(path: Path) -> Optional[dict]:
    try:
        with open(path) as handle:
            loaded = json.load(handle)
    except (OSError, ValueError):
        return None
    return loaded if isinstance(loaded, dict) else None


# ---------------------------------------------------------------------------
# The work queue
# ---------------------------------------------------------------------------

class WorkQueue:
    """One sweep's durable job queue in a (possibly shared) directory.

    Layout::

        <root>/manifest.json     # spec digest, provenance, job order
        <root>/jobs/<key>.json   # executable job description
        <root>/leases/<key>.json # live claim (worker id + expiry)
        <root>/done/<key>.json   # result record (payload, worker, wall)
        <root>/failed/<key>.json # structured error record

    All state transitions are single atomic filesystem operations, so
    concurrent workers -- including workers on other hosts sharing the
    directory -- never corrupt the queue.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.manifest_path = self.root / "manifest.json"
        self.jobs_dir = self.root / "jobs"
        self.leases_dir = self.root / "leases"
        self.done_dir = self.root / "done"
        self.failed_dir = self.root / "failed"
        self._order: list[str] = []

    # -- creation / attachment --------------------------------------------

    @classmethod
    def ensure(
        cls,
        root: Union[str, os.PathLike],
        *,
        name: str,
        salt: str,
        model_version: str,
        keys: list[str],
        collect_metrics: bool = False,
        check_invariants: bool = False,
        git_sha: Optional[str] = None,
    ) -> "WorkQueue":
        """Create the queue for this sweep, or attach to an existing
        one (resume).  Attaching to a queue built for a *different*
        sweep (mismatched spec digest) is a :class:`ConfigError` --
        a queue directory versions exactly one experiment."""
        queue = cls(root)
        digest = spec_digest(name, salt, keys)
        existing = _read_json(queue.manifest_path)
        if existing is not None:
            if existing.get("format") != MANIFEST_FORMAT:
                raise ConfigError(
                    f"{queue.manifest_path} is not a sweep manifest"
                )
            if existing.get("spec_digest") != digest:
                raise ConfigError(
                    f"queue {queue.root} holds sweep "
                    f"{existing.get('name')!r} (spec "
                    f"{str(existing.get('spec_digest'))[:12]}); refusing to "
                    f"mix it with sweep {name!r} (spec {digest[:12]})"
                )
            queue._order = [str(key) for key in existing.get("order", keys)]
            return queue
        queue._order = list(keys)
        for sub in (queue.jobs_dir, queue.leases_dir,
                    queue.done_dir, queue.failed_dir):
            sub.mkdir(parents=True, exist_ok=True)
        _write_json(queue.manifest_path, {
            "format": MANIFEST_FORMAT,
            "name": name,
            "spec_digest": digest,
            "salt": salt,
            "model_version": model_version,
            "git_sha": git_sha,
            # Host-side provenance stamp, never fed into the model.
            "created_at": time.time(),
            "collect_metrics": bool(collect_metrics),
            "check_invariants": bool(check_invariants),
            "order": list(keys),
            "jobs": {key: PENDING for key in keys},
            "runs": [],
        })
        return queue

    @classmethod
    def attach(cls, root: Union[str, os.PathLike]) -> "WorkQueue":
        """Open an existing queue (standalone workers use this)."""
        queue = cls(root)
        manifest = queue.manifest()
        queue._order = [str(key) for key in manifest.get("order", [])]
        return queue

    def manifest(self) -> dict:
        manifest = _read_json(self.manifest_path)
        if manifest is None or manifest.get("format") != MANIFEST_FORMAT:
            raise ConfigError(
                f"no sweep manifest at {self.manifest_path}"
            )
        return manifest

    @property
    def order(self) -> list[str]:
        if not self._order:
            self._order = [
                str(key) for key in self.manifest().get("order", [])
            ]
        return self._order

    # -- per-key state -----------------------------------------------------

    def job_path(self, key: str) -> Path:
        return self.jobs_dir / f"{key}.json"

    def enqueue(self, key: str, job) -> None:
        """Idempotently publish ``key``'s executable description."""
        if not self.job_path(key).exists():
            _write_json(self.job_path(key), job_to_jsonable(job))

    def job(self, key: str) -> dict:
        data = _read_json(self.job_path(key))
        if data is None:
            raise ConfigError(f"queue {self.root} has no job {key[:12]}")
        return data

    def lease(self, key: str) -> Optional[dict]:
        """The current lease record, or None.  An expired lease -- or
        one held by a provably dead local worker -- counts as None, so
        crashed holders release their claims without waiting out the
        lease term."""
        record = _read_json(self.leases_dir / f"{key}.json")
        if record is None:
            return None
        if record.get("expires_at", 0.0) <= time.time():
            return None
        if _worker_alive(record.get("worker", "")) is False:
            return None
        return record

    def done_record(self, key: str) -> Optional[dict]:
        return _read_json(self.done_dir / f"{key}.json")

    def failure(self, key: str) -> Optional[dict]:
        return _read_json(self.failed_dir / f"{key}.json")

    def state(self, key: str) -> str:
        if self.done_record(key) is not None:
            return DONE
        if self.failure(key) is not None:
            return FAILED
        if self.lease(key) is not None:
            return LEASED
        return PENDING

    # -- transitions -------------------------------------------------------

    def try_claim(self, key: str, worker: str, lease_s: float) -> bool:
        """Atomically claim ``key``; False if someone else holds it.

        An expired (or torn) lease is stolen with an atomic replace.
        Two workers observing the same expired lease can both "win"
        the steal -- that benign race costs one redundant execution of
        a deterministic job, never a wrong result.
        """
        path = self.leases_dir / f"{key}.json"
        record = {
            "worker": worker,
            "acquired_at": time.time(),
            "expires_at": time.time() + lease_s,
        }
        payload = json.dumps(record, sort_keys=True) + "\n"
        try:
            fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            if self.lease(key) is not None:
                return False
            _write_json(path, record)
            return True
        except OSError:
            return False
        with os.fdopen(fd, "w") as handle:
            handle.write(payload)
        return True

    def claim(
        self, worker: str, lease_s: float = DEFAULT_LEASE_S
    ) -> Optional[tuple[str, dict]]:
        """Claim the first pending job in submission order, returning
        ``(key, job_description)``, or None if nothing is claimable."""
        for key in self.order:
            if not self.job_path(key).exists():
                continue
            if self.state(key) != PENDING:
                continue
            if self.try_claim(key, worker, lease_s):
                return key, self.job(key)
        return None

    def release(self, key: str) -> None:
        """Drop the lease on ``key`` (job returns to pending)."""
        try:
            os.unlink(self.leases_dir / f"{key}.json")
        except OSError:
            pass

    def complete(self, key: str, record: dict) -> None:
        """Mark ``key`` done.  ``record`` must carry ``payload`` plus
        worker/wall/cached bookkeeping; the lease and any stale failure
        marker are cleared."""
        _write_json(self.done_dir / f"{key}.json", record)
        self.clear_failure(key)
        self.release(key)

    def fail(self, key: str, record: dict) -> None:
        """Mark ``key`` failed with a structured error record."""
        _write_json(self.failed_dir / f"{key}.json", record)
        self.release(key)

    def clear_failure(self, key: str) -> None:
        """Return a failed job to pending (retry / resume)."""
        try:
            os.unlink(self.failed_dir / f"{key}.json")
        except OSError:
            pass

    # -- aggregate views ---------------------------------------------------

    def states(self) -> dict[str, str]:
        """Every job's current state, in submission order."""
        return {key: self.state(key) for key in self.order}

    def counts(self) -> dict[str, int]:
        counts = {PENDING: 0, LEASED: 0, DONE: 0, FAILED: 0}
        for state in self.states().values():
            counts[state] += 1
        return counts

    def unresolved(self) -> int:
        """Jobs not yet done or failed."""
        counts = self.counts()
        return counts[PENDING] + counts[LEASED]

    def finalize_manifest(self) -> dict:
        """Fold the current per-job states (and counts) back into the
        manifest; returns the updated manifest."""
        manifest = self.manifest()
        states = self.states()
        manifest["jobs"] = states
        manifest["counts"] = self.counts()
        _write_json(self.manifest_path, manifest)
        return manifest

    def note_run(self, run_id: str) -> None:
        """Append a run-ledger record id to the manifest's ``runs``
        list, linking the experiment record to its provenance trail."""
        try:
            manifest = self.manifest()
        except ConfigError:
            return
        runs = list(manifest.get("runs", []))
        if run_id not in runs:
            runs.append(run_id)
            manifest["runs"] = runs
            _write_json(self.manifest_path, manifest)


# ---------------------------------------------------------------------------
# The worker loop
# ---------------------------------------------------------------------------

def _failure_record(error: BaseException, worker: str) -> dict:
    return {
        "error": f"{type(error).__name__}: {error}",
        "error_type": type(error).__name__,
        "worker": worker,
    }


def worker_loop(
    queue: WorkQueue,
    worker: Optional[str] = None,
    *,
    cache=None,
    salt: Optional[str] = None,
    collect_metrics: Optional[bool] = None,
    check_invariants: Optional[bool] = None,
    lease_s: float = DEFAULT_LEASE_S,
    max_jobs: Optional[int] = None,
    poll_s: float = 0.05,
    wait_for_unresolved: bool = False,
    events=None,
    should_stop: Optional[Callable[[], bool]] = None,
) -> dict:
    """Claim-execute-complete until the queue drains.

    This single loop serves three callers: the engine's local worker
    processes (which pass an ``events`` queue so the parent can watch
    job starts for tight timeout supervision), the standalone
    ``repro sweep-worker`` subcommand, and tests (``max_jobs`` makes
    a deliberately partial run for interrupt/resume scenarios).

    ``cache`` is an optional shared
    :class:`~repro.harness.sweep.ResultCache`: a warm entry is served
    without simulating (recorded ``cached: true``), and fresh payloads
    are stored back for other workers and future sweeps.

    A job whose execution raises is marked ``failed`` with a
    structured error record -- the worker moves on; retry policy
    belongs to the coordinating engine.  Returns this worker's
    counters (claims/done/failed/cache_hits).
    """
    from repro.harness import sweep as sweep_mod

    if worker is None:
        worker = worker_id()
    manifest = queue.manifest()
    if collect_metrics is None:
        collect_metrics = bool(manifest.get("collect_metrics"))
    if check_invariants is None:
        check_invariants = bool(manifest.get("check_invariants"))
    if salt is None:
        salt = str(manifest.get("salt", ""))
    stats = {"claims": 0, "done": 0, "failed": 0, "cache_hits": 0}
    while max_jobs is None or stats["claims"] < max_jobs:
        if should_stop is not None and should_stop():
            break
        claimed = queue.claim(worker, lease_s)
        if claimed is None:
            if not (wait_for_unresolved and queue.unresolved()):
                break
            time.sleep(poll_s)
            continue
        key, description = claimed
        stats["claims"] += 1
        if events is not None:
            # The monotonic stamp lets a supervising engine measure
            # its per-job timeout from the *actual* start of execution
            # (CLOCK_MONOTONIC is comparable across host processes).
            events.put(("started", worker, key, time.monotonic()))
        try:
            hit = cache.load(key) if cache is not None else None
            if hit is not None:
                queue.complete(key, {
                    "payload": hit, "cached": True,
                    "worker": worker, "wall_s": 0.0,
                })
                stats["cache_hits"] += 1
            else:
                job = job_from_jsonable(description)
                t0 = time.perf_counter()
                # Resolved through the module so fault-injection tests
                # (and future instrumentation) see one patch point.
                payload = sweep_mod._execute_job(
                    job, collect_metrics, check_invariants
                )
                wall_s = time.perf_counter() - t0
                if cache is not None:
                    cache.store(key, job, salt, payload)
                queue.complete(key, {
                    "payload": payload, "cached": False,
                    "worker": worker, "wall_s": wall_s,
                })
                stats["done"] += 1
        except KeyboardInterrupt:
            queue.release(key)
            raise
        except Exception as error:
            queue.fail(key, _failure_record(error, worker))
            stats["failed"] += 1
            if events is not None:
                events.put(("failed", worker, key))
            continue
        if events is not None:
            events.put(("done", worker, key))
    return stats


def _local_worker_main(
    root: str,
    worker: str,
    events,
    collect_metrics: bool,
    check_invariants: bool,
    lease_s: float,
) -> None:
    """Entry point of the sweep engine's local worker processes.

    Runs :func:`worker_loop` against one queue until every job is
    resolved (``wait_for_unresolved`` keeps the worker alive while
    peers hold leases, so a retried job finds a ready claimant).
    Local workers carry no cache handle: the supervising engine is the
    single cache writer, harvesting done records in the parent.
    """
    try:
        worker_loop(
            WorkQueue.attach(root),
            worker,
            collect_metrics=collect_metrics,
            check_invariants=check_invariants,
            lease_s=lease_s,
            poll_s=0.02,
            wait_for_unresolved=True,
            events=events,
        )
    except KeyboardInterrupt:
        # SIGINT reaches the whole process group; the worker's lease
        # was released by worker_loop, so just exit quietly.
        pass


# ---------------------------------------------------------------------------
# Standalone workers over a tree of queues
# ---------------------------------------------------------------------------

def find_queues(root: Union[str, os.PathLike]) -> list[WorkQueue]:
    """Every sweep queue under ``root`` (itself, or any immediate
    subdirectory with a manifest), in sorted-path order."""
    root = Path(root)
    queues = []
    candidates = [root]
    try:
        children = sorted(root.iterdir())
    except OSError:
        children = []
    candidates += [child for child in children if child.is_dir()]
    for candidate in candidates:
        if (candidate / "manifest.json").exists():
            try:
                queues.append(WorkQueue.attach(candidate))
            except ConfigError:
                continue
    return queues


def drain_queue_tree(
    root: Union[str, os.PathLike],
    worker: Optional[str] = None,
    *,
    cache=None,
    lease_s: float = DEFAULT_LEASE_S,
    max_jobs: Optional[int] = None,
    poll_s: float = 0.5,
    watch: bool = False,
    should_stop: Optional[Callable[[], bool]] = None,
    on_queue: Optional[Callable[[WorkQueue], None]] = None,
) -> dict:
    """Drive :func:`worker_loop` over every queue under ``root``.

    Without ``watch``, processes all currently claimable work and
    returns once every discovered queue is resolved.  With ``watch``,
    keeps polling for new queues/jobs until ``should_stop`` fires.
    This is the body of ``repro sweep-worker``.
    """
    if worker is None:
        worker = worker_id()
    totals = {"claims": 0, "done": 0, "failed": 0,
              "cache_hits": 0, "queues": 0}
    seen: set = set()
    budget = max_jobs
    while True:
        queues = find_queues(root)
        for queue in queues:
            if queue.root not in seen:
                seen.add(queue.root)
                totals["queues"] += 1
                if on_queue is not None:
                    on_queue(queue)
            stats = worker_loop(
                queue, worker, cache=cache, lease_s=lease_s,
                max_jobs=budget, poll_s=poll_s,
                should_stop=should_stop,
            )
            for stat in ("claims", "done", "failed", "cache_hits"):
                totals[stat] += stats[stat]
            if budget is not None:
                budget -= stats["claims"]
                if budget <= 0:
                    return totals
        if should_stop is not None and should_stop():
            return totals
        if not watch:
            if all(queue.unresolved() == 0 for queue in queues):
                return totals
        time.sleep(poll_s)
