"""Experiment driver: build a system, run it, normalize to baselines.

Implements the paper's measurement protocol (section IV-C):

* microbenchmark performance is "normalized work IPC" -- work
  instructions retired per cycle, divided by the work IPC of a
  single-threaded on-demand DRAM baseline at the same work-count (and
  the same MLP for the MLP experiments);
* application performance is baseline execution time / device
  execution time for the same operation count.

Baselines are memoized per (work-count, MLP, CPU/DRAM parameters) so a
sweep pays for each baseline once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import AccessMechanism, BackingStore, SystemConfig
from repro.errors import SimulationError
from repro.obs import invariants
from repro.host.driver import PlatformConfig
from repro.host.system import System, WindowStats
from repro.units import us
from repro.workloads.microbench import MicrobenchSpec, install_microbench

__all__ = [
    "MeasureWindow",
    "MicrobenchResult",
    "run_microbench",
    "microbench_baseline",
    "normalized_microbench",
    "BaselineCache",
]


@dataclass(frozen=True)
class MeasureWindow:
    """Warmup + steady-state measurement durations."""

    warmup_us: float = 30.0
    measure_us: float = 120.0

    @property
    def warmup_ticks(self) -> int:
        return us(self.warmup_us)

    @property
    def measure_ticks(self) -> int:
        return us(self.measure_us)


@dataclass
class MicrobenchResult:
    """One microbenchmark run, plus the system's diagnostics."""

    config: SystemConfig
    spec: MicrobenchSpec
    stats: WindowStats
    report: dict = field(repr=False, default_factory=dict)

    @property
    def work_ipc(self) -> float:
        return self.stats.work_ipc


def run_microbench(
    config: SystemConfig,
    spec: MicrobenchSpec,
    window: MeasureWindow = MeasureWindow(),
    platform: Optional[PlatformConfig] = None,
    tracer=None,
    collect_metrics: bool = False,
    check_invariants: bool = False,
) -> MicrobenchResult:
    """Run the (free-running) microbenchmark and measure one window.

    ``tracer`` (a :class:`repro.obs.Tracer`) records a structured
    timeline of the run; ``collect_metrics`` adds the full registry
    snapshot to the result's report under ``"metrics"``;
    ``check_invariants`` runs the online sanitizer
    (:class:`repro.obs.invariants.InvariantMonitor`) alongside the
    simulation -- a passive observer, so results are bit-for-bit
    unchanged, but a broken conservation law raises an
    :class:`~repro.obs.invariants.InvariantViolation`.  The sanitizer
    is also force-enabled process-wide by
    :func:`repro.testing.enforce_invariants`.
    """
    monitor = None
    if check_invariants or invariants.forced():
        monitor = invariants.InvariantMonitor()
        tracer = monitor.tee(tracer)
    system = System(config, platform=platform, tracer=tracer)
    if monitor is not None:
        monitor.attach(system)
    install_microbench(system, spec, config.threads_per_core)
    stats = system.run_window(window.warmup_ticks, window.measure_ticks)
    report = system.report()
    if monitor is not None:
        monitor.check_now()
        report["invariants"] = monitor.summary()
    if collect_metrics:
        report["metrics"] = system.metrics_snapshot()
    return MicrobenchResult(config, spec, stats, report)


class BaselineCache:
    """Memoized single-thread DRAM baselines, keyed by everything that
    affects them."""

    def __init__(self) -> None:
        self._cache: dict[tuple, MicrobenchResult] = {}

    def get(
        self,
        config: SystemConfig,
        spec: MicrobenchSpec,
        window: MeasureWindow,
    ) -> MicrobenchResult:
        baseline_config = config.replace(
            cores=1,
            threads_per_core=1,
            mechanism=AccessMechanism.ON_DEMAND,
            backing=BackingStore.DRAM,
        )
        # The key must cover every input the baseline run consumes:
        # the stripped-down config (including the threading runtime,
        # whose costs the scheduler charges even on the baseline) and
        # every MicrobenchSpec field copied into the baseline spec
        # below.  Omitting lines_per_thread here once let sweeps that
        # vary the working-set size normalize against the wrong
        # baseline.
        key = (
            baseline_config.cpu,
            baseline_config.cache,
            baseline_config.uncore,
            baseline_config.host_dram,
            baseline_config.threading,
            spec.work_count,
            spec.reads_per_batch,
            spec.lines_per_thread,
            window,
        )
        if key not in self._cache:
            baseline_spec = MicrobenchSpec(
                work_count=spec.work_count,
                reads_per_batch=spec.reads_per_batch,
                lines_per_thread=spec.lines_per_thread,
            )
            self._cache[key] = run_microbench(
                baseline_config, baseline_spec, window
            )
        return self._cache[key]


def microbench_baseline(
    config: SystemConfig,
    spec: MicrobenchSpec,
    window: MeasureWindow = MeasureWindow(),
    baselines: Optional[BaselineCache] = None,
) -> MicrobenchResult:
    """The single-threaded on-demand DRAM baseline for ``spec``.

    Pass a :class:`BaselineCache` to memoize across calls; without one
    the baseline is recomputed (deterministically) each time.  Figure
    sweeps go through :mod:`repro.harness.sweep`, where baselines are
    ordinary content-addressed cached jobs -- there is deliberately no
    module-level cache here, because shared mutable module state is
    invisible to worker processes and went stale across model changes.
    """
    cache = baselines if baselines is not None else BaselineCache()
    return cache.get(config, spec, window)


def normalized_microbench(
    config: SystemConfig,
    spec: MicrobenchSpec,
    window: MeasureWindow = MeasureWindow(),
    platform: Optional[PlatformConfig] = None,
    baselines: Optional[BaselineCache] = None,
    collect_metrics: bool = False,
    check_invariants: bool = False,
) -> tuple[float, MicrobenchResult]:
    """Normalized work IPC (the paper's headline metric) plus the run.

    The baseline matches the run's work-count *and* MLP: "the
    microsecond-latency device results are normalized to the DRAM
    baseline with a matching degree of MLP" (section V-B).
    ``check_invariants`` sanitizes the measured run (the baseline runs
    the same model, so checking it too would only double the cost).
    """
    result = run_microbench(
        config,
        spec,
        window,
        platform,
        collect_metrics=collect_metrics,
        check_invariants=check_invariants,
    )
    baseline = microbench_baseline(config, spec, window, baselines)
    if baseline.work_ipc == 0:
        raise SimulationError(
            "baseline measured zero work IPC for "
            f"{config.describe()} (work_count={spec.work_count}, "
            f"MLP {spec.reads_per_batch}); cannot normalize"
        )
    return result.work_ipc / baseline.work_ipc, result
