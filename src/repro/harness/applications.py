"""Application-study driver (Figure 10).

"For each application, we report its normalized performance obtained
by dividing the execution time of the device-access version by the
execution time of a single-threaded baseline version where data is
stored in DRAM" (section IV-C) -- reported here as a speedup ratio
(baseline time / device time per operation), so higher is better and
the paper's "35% to 65% of the DRAM baseline" reads directly.

Throughput is compared per operation: the baseline performs the same
per-thread operation counts on one thread, so multi-threaded runs are
normalized by their total operation count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.config import AccessMechanism, BackingStore, SystemConfig
from repro.errors import ConfigError
from repro.host.system import System
from repro.workloads.bfs import BfsParams, install_bfs
from repro.workloads.bloom import BloomParams, install_bloom
from repro.workloads.memcached import MemcachedParams, install_memcached
from repro.workloads.microbench import MicrobenchSpec, install_microbench

__all__ = ["AppRun", "run_application", "normalized_application", "APPLICATIONS"]

#: Simulated-time safety limit for one application run.
_RUN_LIMIT_TICKS = 10**12


@dataclass(frozen=True)
class MicrobenchAppParams:
    """Parameters for running the microbenchmark as a finite "app"
    (the 4-read comparison series of Figure 10)."""

    work_count: int = 200
    queries_per_thread: int = 48


@dataclass
class AppRun:
    """One timed application run."""

    name: str
    config: SystemConfig
    ticks: int
    operations: int

    @property
    def ticks_per_operation(self) -> float:
        return self.ticks / self.operations


def _install(system: System, name: str, params, threads_per_core: int) -> int:
    """Install an application; returns its total operation count."""
    if name == "bloom":
        install_bloom(system, params, threads_per_core)
        return (
            system.config.cores * threads_per_core * params.queries_per_thread
        )
    if name == "memcached":
        install_memcached(system, params, threads_per_core)
        return system.config.cores * threads_per_core * params.gets_per_thread
    if name == "bfs":
        runs = install_bfs(system, params, threads_per_core)
        # One traversal per core; each visits every vertex exactly once.
        return sum(run.graph.n for run in runs)
    if name == "microbench-4read":
        spec = MicrobenchSpec(
            work_count=params.work_count,
            reads_per_batch=4,
            iterations=params.queries_per_thread,
        )
        install_microbench(system, spec, threads_per_core)
        return (
            system.config.cores * threads_per_core * params.queries_per_thread
        )
    raise ConfigError(f"unknown application {name!r}")


#: The Figure 10 line-up: the three applications plus the 4-read
#: microbenchmark shown alongside them for comparison.
APPLICATIONS = ("bfs", "bloom", "memcached", "microbench-4read")


def default_params(name: str, work_count: int = 200, ops_per_thread: int = 48,
                   bfs_vertices: int = 2048):
    """The per-application parameter sets used by the figures."""
    if name == "bloom":
        return BloomParams(
            work_count=work_count, queries_per_thread=ops_per_thread
        )
    if name == "memcached":
        return MemcachedParams(
            items=2048,
            buckets=2048,
            work_count=work_count,
            gets_per_thread=ops_per_thread,
        )
    if name == "bfs":
        # Graph500-like degree; the benign work loop is charged per
        # 2-read batch, so the per-read work density stays in line
        # with the 4-read applications.
        return BfsParams(
            vertices=bfs_vertices, average_degree=16, work_count=work_count // 4
        )
    if name == "microbench-4read":
        return MicrobenchAppParams(
            work_count=work_count, queries_per_thread=ops_per_thread
        )
    raise ConfigError(f"unknown application {name!r}")


def run_application(
    config: SystemConfig,
    name: str,
    params=None,
    threads_per_core: Optional[int] = None,
    check_invariants: bool = False,
) -> AppRun:
    """Run one application to completion on ``config``.

    ``check_invariants`` (or :func:`repro.testing.enforce_invariants`)
    runs the online sanitizer alongside the simulation; it is a passive
    observer, so timings are bit-for-bit unchanged.
    """
    from repro.obs import invariants

    if params is None:
        params = default_params(name)
    if threads_per_core is None:
        threads_per_core = config.threads_per_core
    monitor = None
    tracer = None
    if check_invariants or invariants.forced():
        monitor = invariants.InvariantMonitor()
        tracer = monitor
    system = System(config, tracer=tracer)
    if monitor is not None:
        monitor.attach(system)
    operations = _install(system, name, params, threads_per_core)
    ticks = system.run_to_completion(limit_ticks=_RUN_LIMIT_TICKS)
    if monitor is not None:
        monitor.check_now()
    return AppRun(name, config, ticks, operations)


class _AppBaselineCache:
    def __init__(self) -> None:
        self._cache: dict[tuple, AppRun] = {}

    def get(self, config: SystemConfig, name: str, params) -> AppRun:
        baseline_config = config.replace(
            cores=1,
            threads_per_core=1,
            mechanism=AccessMechanism.ON_DEMAND,
            backing=BackingStore.DRAM,
        )
        # Same key discipline as BaselineCache: cover everything the
        # baseline run consumes, including the threading runtime.
        key = (
            name,
            params,
            baseline_config.cpu,
            baseline_config.cache,
            baseline_config.host_dram,
            baseline_config.uncore,
            baseline_config.threading,
        )
        if key not in self._cache:
            self._cache[key] = run_application(
                baseline_config, name, params, threads_per_core=1
            )
        return self._cache[key]


_APP_BASELINES = _AppBaselineCache()


def normalized_application(
    config: SystemConfig,
    name: str,
    params=None,
    threads_per_core: Optional[int] = None,
    check_invariants: bool = False,
) -> tuple[float, AppRun]:
    """Per-operation speedup over the single-thread DRAM baseline.

    ``check_invariants`` sanitizes the measured run only (the baseline
    runs the same model, so checking it too would only double the cost).
    """
    if params is None:
        params = default_params(name)
    run = run_application(
        config, name, params, threads_per_core,
        check_invariants=check_invariants,
    )
    baseline = _APP_BASELINES.get(config, name, params)
    return baseline.ticks_per_operation / run.ticks_per_operation, run
