"""Experiment harness: runners, normalization, figures, reports."""

from repro.harness.analytic import (
    predict_on_demand_ipc,
    predict_prefetch_bounds,
    predict_prefetch_ipc,
    predict_swq_peak_ipc,
)
from repro.harness.applications import (
    APPLICATIONS,
    AppRun,
    normalized_application,
    run_application,
)
from repro.harness.experiment import (
    BaselineCache,
    MeasureWindow,
    MicrobenchResult,
    microbench_baseline,
    normalized_microbench,
    run_microbench,
)
from repro.harness.figures import ALL_FIGURES, FigureResult, Series
from repro.harness.sweep import (
    MODEL_VERSION,
    JobOutcome,
    ResultCache,
    SweepEngine,
    SweepJob,
    SweepSpec,
    baseline_job,
    job_digest,
)
from repro.harness.regression import (
    compare_to_baseline,
    load_baseline,
    save_baseline,
)
from repro.harness.report import render_chart, render_summary, render_table, to_csv

__all__ = [
    "ALL_FIGURES",
    "MODEL_VERSION",
    "JobOutcome",
    "ResultCache",
    "SweepEngine",
    "SweepJob",
    "SweepSpec",
    "baseline_job",
    "compare_to_baseline",
    "job_digest",
    "load_baseline",
    "predict_on_demand_ipc",
    "predict_prefetch_bounds",
    "predict_prefetch_ipc",
    "predict_swq_peak_ipc",
    "render_chart",
    "save_baseline",
    "APPLICATIONS",
    "AppRun",
    "BaselineCache",
    "FigureResult",
    "MeasureWindow",
    "MicrobenchResult",
    "Series",
    "microbench_baseline",
    "normalized_application",
    "normalized_microbench",
    "render_summary",
    "render_table",
    "run_application",
    "run_microbench",
    "to_csv",
]
