"""Closed-form performance predictions, for cross-validating the DES.

The paper's section V-B reasons about the system in back-of-the-
envelope terms ("each microsecond of latency can be effectively hidden
by 10-20 in-flight accesses per core").  This module writes those
envelopes down as formulas; the test suite then checks that the
discrete-event simulator lands within tolerance of them across a
parameter grid -- two independent derivations of the same numbers.

All formulas predict **absolute work IPC** (work instructions per core
cycle, aggregated over the chip), not baseline-normalized values, so
they are independent of the baseline's own model.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.units import ns
from repro.workloads.microbench import MicrobenchSpec

__all__ = [
    "predict_on_demand_ipc",
    "predict_prefetch_bounds",
    "predict_prefetch_ipc",
    "predict_swq_peak_ipc",
]


def _work_exec_cycles(config: SystemConfig, spec: MicrobenchSpec) -> float:
    return spec.work_count / config.cpu.work_ipc


def _latency_cycles(config: SystemConfig) -> float:
    return config.cpu.frequency.to_cycles(config.device.total_latency_ticks)


def _rob_overlap(config: SystemConfig, spec: MicrobenchSpec) -> int:
    """Independent iterations the ROB can hold simultaneously.

    The next iteration's load dispatches once its slots free, so the
    number of loads in flight is 1 + how many further whole iterations
    fit in the remaining window (work dispatches in chunks, so the
    footprint quantizes up to the chunk size).
    """
    chunk = config.cpu.work_chunk_instructions
    chunks = -(-spec.work_count // chunk)  # ceil division
    footprint = chunks * chunk + spec.reads_per_batch
    overlap = (config.cpu.rob_entries - 1) // footprint + 1
    return max(1, min(config.cpu.lfb_entries, overlap))


def predict_on_demand_ipc(config: SystemConfig, spec: MicrobenchSpec) -> float:
    """On-demand, one thread: iterations serialize on the device,
    except for the little run-ahead the instruction window allows
    ("out-of-order execution cannot find enough independent work",
    section V-A -- but it finds *some* when iterations are short).
    """
    iteration_cycles = _latency_cycles(config) + _work_exec_cycles(config, spec)
    return _rob_overlap(config, spec) * spec.work_count / iteration_cycles


def predict_prefetch_ipc(
    config: SystemConfig, spec: MicrobenchSpec, threads: int
) -> float:
    """Prefetch + user threading, per section V-B's envelope.

    Below the cap, every thread keeps ``reads_per_batch`` accesses in
    flight and throughput is thread-limited; at the cap, throughput is
    in-flight-limited at ``cap / latency`` accesses per second.  The
    per-core cap is the LFBs; the chip shares the PCIe-path queue.
    """
    cores = config.cores
    per_core_cap = min(
        config.cpu.lfb_entries,
        max(1, config.uncore.pcie_queue_entries // cores),
    )
    latency = _latency_cycles(config)
    reads = spec.reads_per_batch
    # Thread-limited regime: each thread completes one batch per
    # latency (its in-flight reads overlap each other).
    in_flight = min(threads * reads, per_core_cap)
    batches_per_latency = in_flight / reads
    per_core_ipc = batches_per_latency * spec.work_count / latency
    # The per-thread compute ceiling: work execution overlaps with the
    # scheduler's switch (the front end is busy while older chunks
    # execute), so the per-batch time is bounded below by the larger of
    # the two, not their sum.
    switch_cycles = config.cpu.frequency.to_cycles(
        ns(config.threading.context_switch_ns)
    )
    compute_cycles = max(_work_exec_cycles(config, spec), switch_cycles)
    compute_bound_ipc = spec.work_count / compute_cycles
    return cores * min(per_core_ipc, compute_bound_ipc)


def predict_prefetch_bounds(
    config: SystemConfig, spec: MicrobenchSpec, threads: int
) -> tuple[float, float]:
    """(lower, upper) envelope for the prefetch mechanism.

    The bounds differ only in the compute regime: the pessimistic
    bound serializes switch and work, the optimistic one fully
    overlaps them.  Queue-limited points have a tight envelope.
    """
    cores = config.cores
    per_core_cap = min(
        config.cpu.lfb_entries,
        max(1, config.uncore.pcie_queue_entries // cores),
    )
    latency = _latency_cycles(config)
    reads = spec.reads_per_batch
    in_flight = min(threads * reads, per_core_cap)
    queue_ipc = (in_flight / reads) * spec.work_count / latency
    switch_cycles = config.cpu.frequency.to_cycles(
        ns(config.threading.context_switch_ns)
    )
    work_cycles = _work_exec_cycles(config, spec)
    optimistic = spec.work_count / max(work_cycles, switch_cycles)
    pessimistic = spec.work_count / (work_cycles + switch_cycles)
    return (
        cores * min(queue_ipc, pessimistic),
        cores * min(queue_ipc, optimistic),
    )


def predict_swq_peak_ipc(config: SystemConfig, spec: MicrobenchSpec) -> float:
    """SWQ at saturation: pure software-overhead-limited throughput.

    Per batch: one full enqueue plus marginal enqueues, one completion
    scan per read, one wakeup, one context switch -- all serialized at
    ``overhead_ipc`` -- with the work's execution hidden underneath
    (it runs out of order while the front end grinds protocol code).
    """
    swq = config.swq
    reads = spec.reads_per_batch
    instructions = (
        swq.enqueue_instructions
        + (reads - 1) * swq.enqueue_batch_instructions
        + reads * swq.completion_instructions
        + swq.wakeup_instructions
    )
    overhead_cycles = instructions / config.threading.overhead_ipc
    switch_cycles = config.cpu.frequency.to_cycles(
        ns(config.threading.context_switch_ns)
    )
    batch_cycles = max(
        overhead_cycles + switch_cycles, _work_exec_cycles(config, spec)
    )
    return config.cores * spec.work_count / batch_cycles
