"""Service-mode experiment driver: open-loop load, SLO accounting.

Where :mod:`repro.harness.experiment` measures closed-loop work IPC,
this driver runs the memcached workload as a *service* under an
open-loop arrival process (:mod:`repro.workloads.loadgen`) and reports
the SLO quantities: p50/p99/p999 end-to-end sojourn time, queue-wait
tail, jitter, and achieved vs offered throughput, all over the
steady-state measurement window (warmup excluded -- the probes'
windowed reservoirs guarantee it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.config import SystemConfig
from repro.errors import ConfigError
from repro.harness.experiment import MeasureWindow
from repro.host.driver import PlatformConfig
from repro.host.system import System
from repro.obs import invariants
from repro.units import US, to_ns
from repro.workloads.loadgen import OpenLoopSpec, install_service
from repro.workloads.memcached import MemcachedParams

__all__ = ["ServiceParams", "ServiceResult", "run_service"]


@dataclass(frozen=True)
class ServiceParams:
    """Everything the service run consumes beyond the system config."""

    open_loop: OpenLoopSpec = OpenLoopSpec()
    #: Store sizing (mirrors :class:`MemcachedParams`).
    items: int = 2048
    buckets: int = 2048
    value_bytes: int = 256
    work_count: int = 200
    #: Polling worker uthreads per logical core.
    workers_per_core: int = 8
    #: Request-scoped latency attribution (:mod:`repro.obs.spans`):
    #: every request carries a span tree, conservation is asserted at
    #: each completion, and the result payload gains the per-layer
    #: attribution table plus exemplar span trees.  Off by default --
    #: the disabled path is bit-for-bit passive (no ledger object
    #: exists; see ``benchmarks/test_attrib_overhead.py``).
    spans: bool = False
    #: K-slowest exemplar reservoir size (span runs only).
    span_exemplars: int = 8

    def __post_init__(self) -> None:
        if self.workers_per_core < 1:
            raise ConfigError("need at least one service worker per core")
        if self.span_exemplars < 1:
            raise ConfigError("need at least one span exemplar slot")

    def store_params(self) -> MemcachedParams:
        return MemcachedParams(
            items=self.items,
            buckets=self.buckets,
            value_bytes=self.value_bytes,
            work_count=self.work_count,
        )


@dataclass
class ServiceResult:
    """One service run: SLO stats plus the system's diagnostics."""

    config: SystemConfig
    params: ServiceParams
    #: Offered load per core over the measurement window (requests/us).
    offered_per_core_us: float
    #: Windowed arrival / completion counts.
    arrivals: int
    completions: int
    #: Windowed sojourn stats, nanoseconds.
    p50_ns: float
    p99_ns: float
    p999_ns: float
    mean_ns: float
    max_ns: float
    jitter_ns: float
    #: Windowed queue-wait tail, nanoseconds.
    wait_p99_ns: float
    #: Host-queue depth over the whole run (mean is time-weighted).
    queue_depth_mean: float
    queue_depth_max: float
    #: Achieved service rate over the window (requests/us, all cores).
    achieved_per_us: float
    report: dict = field(repr=False, default_factory=dict)
    #: Per-layer attribution table (``SpanLedger.attribution()``) when
    #: the run had spans enabled, else ``None``.
    attribution: Optional[dict] = None
    #: Exemplar span trees (``SpanLedger.exemplar_payload()``) when the
    #: run had spans enabled, else ``None``.
    exemplars: Optional[dict] = None

    def payload(self) -> dict:
        """JSON-able summary (cached by the sweep engine, diffed by
        the run ledger)."""
        payload = {
            "offered_per_core_us": self.offered_per_core_us,
            "arrivals": self.arrivals,
            "completions": self.completions,
            "p50_ns": self.p50_ns,
            "p99_ns": self.p99_ns,
            "p999_ns": self.p999_ns,
            "mean_ns": self.mean_ns,
            "max_ns": self.max_ns,
            "jitter_ns": self.jitter_ns,
            "wait_p99_ns": self.wait_p99_ns,
            "queue_depth_mean": self.queue_depth_mean,
            "queue_depth_max": self.queue_depth_max,
            "achieved_per_us": self.achieved_per_us,
        }
        if self.attribution is not None:
            payload["attribution"] = self.attribution
            payload["exemplars"] = self.exemplars
        return payload


def run_service(
    config: SystemConfig,
    params: ServiceParams,
    window: MeasureWindow = MeasureWindow(),
    platform: Optional[PlatformConfig] = None,
    tracer=None,
    collect_metrics: bool = False,
    check_invariants: bool = False,
) -> ServiceResult:
    """Run the open-loop service and measure one steady-state window.

    Requests keep arriving during warmup (filling queues to steady
    state); every SLO statistic below is *windowed* -- computed only
    from observations recorded inside the measurement window, never
    from warmup.  ``tracer`` / ``collect_metrics`` /
    ``check_invariants`` behave exactly as in
    :func:`repro.harness.experiment.run_microbench`.
    """
    monitor = None
    if check_invariants or invariants.forced():
        monitor = invariants.InvariantMonitor()
        tracer = monitor.tee(tracer)
    system = System(config, platform=platform, tracer=tracer)
    ledger = None
    if params.spans:
        from repro.obs.spans import SpanLedger

        ledger = SpanLedger(system.probes, k_slowest=params.span_exemplars)
        # Per-core stats must exist before the measurement window
        # toggles probe activation (see SpanLedger.prepare_cores).
        ledger.prepare_cores(range(config.cores))
        # Hang the ledger before the monitor attaches so its checker
        # list includes the span-bookkeeping law.
        system.spans = ledger
    if monitor is not None:
        monitor.attach(system)
    state = install_service(
        system,
        params.store_params(),
        params.open_loop,
        params.workers_per_core,
        spans=ledger,
    )
    stats = system.run_window(window.warmup_ticks, window.measure_ticks)
    report = system.report()
    if monitor is not None:
        monitor.check_now()
        report["invariants"] = monitor.summary()
    if collect_metrics:
        report["metrics"] = system.metrics_snapshot()

    sojourn = state.sojourn
    measure_ticks = stats.ticks
    measure_us = measure_ticks / US if measure_ticks else 0.0
    completions = state.completions.windowed
    attribution = ledger.attribution() if ledger is not None else None
    exemplars = ledger.exemplar_payload() if ledger is not None else None
    return ServiceResult(
        config=config,
        params=params,
        offered_per_core_us=params.open_loop.arrivals.rate_per_us,
        arrivals=state.arrivals.windowed,
        completions=completions,
        p50_ns=to_ns(sojourn.windowed_percentile(50)),
        p99_ns=to_ns(sojourn.windowed_percentile(99)),
        p999_ns=to_ns(sojourn.windowed_percentile(99.9)),
        mean_ns=to_ns(sojourn.windowed_mean),
        max_ns=to_ns(sojourn.windowed_max or 0),
        jitter_ns=to_ns(sojourn.jitter),
        wait_p99_ns=to_ns(state.queue_wait.windowed_percentile(99)),
        queue_depth_mean=state.queue_depth.mean(system.sim.now),
        queue_depth_max=state.queue_depth.maximum,
        achieved_per_us=completions / measure_us if measure_us else 0.0,
        report=report,
        attribution=attribution,
        exemplars=exemplars,
    )
