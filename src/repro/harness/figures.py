"""One entry point per figure of the paper's evaluation (section V).

Each ``figN()`` function builds the corresponding experiment grid as a
:class:`~repro.harness.sweep.SweepSpec`, submits it to a
:class:`~repro.harness.sweep.SweepEngine` (parallel workers + on-disk
result cache), and returns a :class:`FigureResult` whose series mirror
the lines of the paper's plot.  ``scale="quick"`` trims the grids for
CI-speed runs; ``scale="full"`` reproduces the paper's grids.

Baselines are ordinary sweep jobs derived per measurement by
:func:`~repro.harness.sweep.baseline_job`; the engine's key-level
deduplication runs each distinct baseline once per sweep.  Because the
engine returns outcomes in submission order and every job is a
deterministic simulation, a figure's series are bit-for-bit identical
whether the sweep ran serially, on a worker pool, or from a warm
cache.

Pass ``engine=`` to control workers/caching explicitly; by default an
engine is built from the environment (``REPRO_SWEEP_JOBS``,
``REPRO_CACHE_DIR``, ``REPRO_NO_CACHE`` -- see
:meth:`~repro.harness.sweep.SweepEngine.from_env`).

The benchmark suite (``benchmarks/``) calls these functions, asserts
the paper's qualitative claims about each figure, and renders the
series as text tables (see :mod:`repro.harness.report`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.config import (
    AccessMechanism,
    DeviceConfig,
    SwqConfig,
    SystemConfig,
)
from repro.errors import SimulationError
from repro.harness.applications import APPLICATIONS, default_params
from repro.harness.experiment import MeasureWindow
from repro.harness.service import ServiceParams
from repro.harness.sweep import SweepEngine, SweepJob, SweepSpec, baseline_job
from repro.units import NS, US
from repro.workloads.loadgen import ArrivalSpec, KeySpec, OpenLoopSpec
from repro.workloads.microbench import MicrobenchSpec

__all__ = [
    "FigureResult",
    "Series",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "figA_slo",
    "queue_rule_report",
    "ALL_FIGURES",
]

#: Default microbenchmark work-count for the thread sweeps (Figures
#: 3, 5, 6, 7, 8, 9), chosen so prefetch at 1 us reaches DRAM parity
#: at 10 threads, as in the paper's Figure 3.
DEFAULT_WORK = 200

_WINDOW = MeasureWindow(warmup_us=30.0, measure_us=100.0)
_LONG_WINDOW = MeasureWindow(warmup_us=40.0, measure_us=400.0)


@dataclass
class Series:
    """One line of a figure: (x, y) points."""

    label: str
    points: list[tuple[float, float]] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.points.append((x, y))

    def ys(self) -> list[float]:
        return [y for _x, y in self.points]

    def y_at(self, x: float) -> float:
        # Tolerant comparison: float-valued x-axes (latency in us, say)
        # must not silently miss a point to representation error.
        for px, py in self.points:
            if math.isclose(px, x, rel_tol=1e-9, abs_tol=1e-12):
                return py
        raise KeyError(f"no point at x={x} in series {self.label!r}")

    def peak(self) -> float:
        return max(self.ys())


@dataclass
class FigureResult:
    """A reproduced figure: labeled series over a common x-axis."""

    figure_id: str
    title: str
    xlabel: str
    ylabel: str
    series: list[Series] = field(default_factory=list)

    def new_series(self, label: str) -> Series:
        line = Series(label)
        self.series.append(line)
        return line

    def get(self, label: str) -> Series:
        for line in self.series:
            if line.label == label:
                return line
        raise KeyError(f"figure {self.figure_id} has no series {label!r}")


def _threads_grid(scale: str, full: Sequence[int], quick: Sequence[int]) -> list[int]:
    return list(full if scale == "full" else quick)


def _resolve_engine(engine: Optional[SweepEngine]) -> SweepEngine:
    return engine if engine is not None else SweepEngine.from_env()


def _checked_payload(outcome) -> dict:
    """The outcome's payload, or :class:`SimulationError` if the job
    failed (the engine records failures instead of losing the sweep;
    a figure, though, needs every point)."""
    if outcome.failed:
        raise SimulationError(
            f"sweep job failed ({outcome.job.describe()}): {outcome.error}"
        )
    return outcome.payload


def _run_normalized_microbench(
    name: str,
    grid: list[tuple[Series, float, SweepJob]],
    engine: Optional[SweepEngine],
) -> None:
    """Run every (series, x, job) measurement plus its derived baseline
    in one sweep, then fill the series with normalized work IPC."""
    engine = _resolve_engine(engine)
    jobs = [job for _line, _x, job in grid]
    sweep = SweepSpec(name, jobs + [baseline_job(job) for job in jobs])
    outcomes = engine.run(sweep)
    measured, baselines = outcomes[: len(jobs)], outcomes[len(jobs):]
    for (line, x, job), run, base in zip(grid, measured, baselines):
        baseline_ipc = _checked_payload(base)["work_ipc"]
        if baseline_ipc == 0:
            raise SimulationError(
                "baseline measured zero work IPC for "
                f"{job.config.describe()} (work_count={job.spec.work_count}, "
                f"MLP {job.spec.reads_per_batch}); cannot normalize"
            )
        line.add(x, _checked_payload(run)["work_ipc"] / baseline_ipc)


def _run_normalized_applications(
    name: str,
    grid: list[tuple[Series, float, SweepJob]],
    engine: Optional[SweepEngine],
) -> None:
    """Application counterpart: per-operation speedup over the
    single-thread DRAM baseline (section IV-C)."""
    engine = _resolve_engine(engine)
    jobs = [job for _line, _x, job in grid]
    sweep = SweepSpec(name, jobs + [baseline_job(job) for job in jobs])
    outcomes = engine.run(sweep)
    measured, baselines = outcomes[: len(jobs)], outcomes[len(jobs):]
    for (line, x, _job), run, base in zip(grid, measured, baselines):
        base_payload = _checked_payload(base)
        run_payload = _checked_payload(run)
        base_per_op = base_payload["ticks"] / base_payload["operations"]
        run_per_op = run_payload["ticks"] / run_payload["operations"]
        line.add(x, base_per_op / run_per_op)


# ---------------------------------------------------------------------------
# Figure 2: on-demand access vs work-count
# ---------------------------------------------------------------------------

def fig2(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """On-demand access of the microsecond device (vs work-count)."""
    result = FigureResult(
        "fig2",
        "On-demand access of microsecond-latency device",
        xlabel="work instructions per access",
        ylabel="normalized work IPC",
    )
    work_counts = _threads_grid(
        scale, full=(10, 50, 100, 200, 500, 1000, 2000, 5000),
        quick=(10, 100, 1000, 5000),
    )
    grid = []
    for latency_us in (1.0, 2.0, 4.0):
        line = result.new_series(f"{latency_us:g}us")
        for work in work_counts:
            config = SystemConfig(
                mechanism=AccessMechanism.ON_DEMAND,
                threads_per_core=1,
                device=DeviceConfig(total_latency_us=latency_us),
            )
            job = SweepJob(
                config=config,
                spec=MicrobenchSpec(work_count=work),
                window=_LONG_WINDOW,
            )
            grid.append((line, work, job))
    _run_normalized_microbench("fig2", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 3: prefetch-based access vs thread count, three latencies
# ---------------------------------------------------------------------------

def fig3(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """Prefetch-based access with various latencies."""
    result = FigureResult(
        "fig3",
        "Prefetch-based access with various latencies",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    threads_grid = _threads_grid(
        scale, full=tuple(range(1, 17)), quick=(1, 2, 4, 8, 10, 12, 16)
    )
    grid = []
    for latency_us in (1.0, 2.0, 4.0):
        line = result.new_series(f"{latency_us:g}us")
        for threads in threads_grid:
            config = SystemConfig(
                mechanism=AccessMechanism.PREFETCH,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=latency_us),
            )
            job = SweepJob(
                config=config,
                spec=MicrobenchSpec(work_count=DEFAULT_WORK),
                window=_WINDOW,
            )
            grid.append((line, threads, job))
    _run_normalized_microbench("fig3", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 4: prefetch at 1 us with various work-counts
# ---------------------------------------------------------------------------

def fig4(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """1 us prefetch-based access with various work counts."""
    result = FigureResult(
        "fig4",
        "1us prefetch-based access with various work counts",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    threads_grid = _threads_grid(
        scale, full=tuple(range(1, 17)), quick=(1, 2, 4, 6, 8, 10, 12, 16)
    )
    work_grid = (100, 200, 400, 800, 1600) if scale == "full" else (100, 200, 800)
    grid = []
    for work in work_grid:
        line = result.new_series(f"work={work}")
        for threads in threads_grid:
            config = SystemConfig(
                mechanism=AccessMechanism.PREFETCH,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=1.0),
            )
            job = SweepJob(
                config=config,
                spec=MicrobenchSpec(work_count=work),
                window=_WINDOW,
            )
            grid.append((line, threads, job))
    _run_normalized_microbench("fig4", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 5: multicore prefetch-based access
# ---------------------------------------------------------------------------

def fig5(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """Multicore prefetch-based access (the 14-entry chip queue cap)."""
    result = FigureResult(
        "fig5",
        "Multicore prefetch-based access with various latencies",
        xlabel="threads per core",
        ylabel="normalized work IPC (vs 1-core DRAM baseline)",
    )
    threads_grid = _threads_grid(
        scale, full=(1, 2, 4, 6, 8, 10, 12, 16), quick=(1, 2, 4, 8, 16)
    )
    latencies = (1.0, 4.0) if scale == "quick" else (1.0, 2.0, 4.0)
    grid = []
    for latency_us in latencies:
        for cores in (1, 2, 4, 8):
            line = result.new_series(f"{latency_us:g}us/{cores}core")
            for threads in threads_grid:
                config = SystemConfig(
                    mechanism=AccessMechanism.PREFETCH,
                    cores=cores,
                    threads_per_core=threads,
                    device=DeviceConfig(total_latency_us=latency_us),
                )
                job = SweepJob(
                    config=config,
                    spec=MicrobenchSpec(work_count=DEFAULT_WORK),
                    window=_WINDOW,
                )
                grid.append((line, threads, job))
    _run_normalized_microbench("fig5", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 6: prefetch with memory-level parallelism
# ---------------------------------------------------------------------------

def fig6(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """1 us prefetch-based access at MLP 1 / 2 / 4 ("n-read")."""
    result = FigureResult(
        "fig6",
        "1us prefetch-based access at various levels of MLP",
        xlabel="threads",
        ylabel="normalized work IPC (matching-MLP baseline)",
    )
    threads_grid = _threads_grid(
        scale, full=tuple(range(1, 17)), quick=(1, 2, 3, 4, 5, 8, 10, 16)
    )
    grid = []
    for reads in (1, 2, 4):
        line = result.new_series(f"{reads}-read")
        for threads in threads_grid:
            config = SystemConfig(
                mechanism=AccessMechanism.PREFETCH,
                threads_per_core=threads,
                device=DeviceConfig(total_latency_us=1.0),
            )
            job = SweepJob(
                config=config,
                spec=MicrobenchSpec(
                    work_count=DEFAULT_WORK, reads_per_batch=reads
                ),
                window=_WINDOW,
            )
            grid.append((line, threads, job))
    _run_normalized_microbench("fig6", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 7: application-managed queues vs prefetch
# ---------------------------------------------------------------------------

def fig7(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """SWQ vs prefetch at 1 us and 4 us."""
    result = FigureResult(
        "fig7",
        "Application-managed queues vs prefetch-based access",
        xlabel="threads",
        ylabel="normalized work IPC",
    )
    threads_grid = _threads_grid(
        scale,
        full=(1, 2, 4, 6, 8, 10, 12, 16, 20, 24, 28, 32),
        quick=(1, 4, 8, 10, 16, 24, 32),
    )
    grid = []
    for mechanism, tag in (
        (AccessMechanism.PREFETCH, "prefetch"),
        (AccessMechanism.SOFTWARE_QUEUE, "swq"),
    ):
        for latency_us in (1.0, 4.0):
            line = result.new_series(f"{tag}/{latency_us:g}us")
            for threads in threads_grid:
                config = SystemConfig(
                    mechanism=mechanism,
                    threads_per_core=threads,
                    device=DeviceConfig(total_latency_us=latency_us),
                )
                job = SweepJob(
                    config=config,
                    spec=MicrobenchSpec(work_count=DEFAULT_WORK),
                    window=_WINDOW,
                )
                grid.append((line, threads, job))
    _run_normalized_microbench("fig7", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 8: multicore software-managed queues
# ---------------------------------------------------------------------------

def fig8(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """Multicore SWQ (the PCIe request-rate wall at eight cores)."""
    result = FigureResult(
        "fig8",
        "Multicore comparison of software-managed queues",
        xlabel="threads per core",
        ylabel="normalized work IPC (vs 1-core DRAM baseline)",
    )
    threads_grid = _threads_grid(
        scale, full=(4, 8, 12, 16, 20, 24, 32), quick=(4, 8, 16, 24, 32)
    )
    grid = []
    for latency_us in (1.0, 4.0):
        for cores in (1, 2, 4, 8):
            line = result.new_series(f"{latency_us:g}us/{cores}core")
            for threads in threads_grid:
                config = SystemConfig(
                    mechanism=AccessMechanism.SOFTWARE_QUEUE,
                    cores=cores,
                    threads_per_core=threads,
                    device=DeviceConfig(total_latency_us=latency_us),
                )
                job = SweepJob(
                    config=config,
                    spec=MicrobenchSpec(work_count=DEFAULT_WORK),
                    window=_WINDOW,
                )
                grid.append((line, threads, job))
    _run_normalized_microbench("fig8", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 9: software-managed queues with MLP
# ---------------------------------------------------------------------------

def fig9(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """SWQ at MLP 1 / 2 / 4, one core and four cores."""
    result = FigureResult(
        "fig9",
        "Impact of MLP on software-managed queues",
        xlabel="threads per core",
        ylabel="normalized work IPC (matching-MLP baseline)",
    )
    threads_grid = _threads_grid(
        scale, full=(2, 4, 8, 12, 16, 24, 32), quick=(4, 8, 16, 24, 32)
    )
    grid = []
    for cores, panel in ((1, "1core"), (4, "4core")):
        for reads in (1, 2, 4):
            line = result.new_series(f"{panel}/{reads}-read")
            for threads in threads_grid:
                config = SystemConfig(
                    mechanism=AccessMechanism.SOFTWARE_QUEUE,
                    cores=cores,
                    threads_per_core=threads,
                    device=DeviceConfig(total_latency_us=1.0),
                )
                job = SweepJob(
                    config=config,
                    spec=MicrobenchSpec(
                        work_count=DEFAULT_WORK, reads_per_batch=reads
                    ),
                    window=_WINDOW,
                )
                grid.append((line, threads, job))
    _run_normalized_microbench("fig9", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure 10: application case studies
# ---------------------------------------------------------------------------

def fig10(scale: str = "quick", engine: Optional[SweepEngine] = None) -> FigureResult:
    """BFS / Bloom / Memcached / 4-read microbench, four panels:
    (a) prefetch 1-core, (b) SWQ 1-core, (c) prefetch 8-core,
    (d) SWQ 8-core -- all at 1 us."""
    result = FigureResult(
        "fig10",
        "Application benchmarks at 1us (panels a-d)",
        xlabel="threads per core",
        ylabel="normalized performance (vs 1-thread DRAM baseline)",
    )
    threads_grid = _threads_grid(
        scale, full=(1, 2, 4, 8, 16, 32), quick=(1, 4, 16)
    )
    panels = (
        ("a", AccessMechanism.PREFETCH, 1),
        ("b", AccessMechanism.SOFTWARE_QUEUE, 1),
        ("c", AccessMechanism.PREFETCH, 8),
        ("d", AccessMechanism.SOFTWARE_QUEUE, 8),
    )
    ops = 48 if scale == "full" else 24
    vertices = 2048 if scale == "full" else 1024
    grid = []
    for panel, mechanism, cores in panels:
        for app in APPLICATIONS:
            params = default_params(app, ops_per_thread=ops, bfs_vertices=vertices)
            line = result.new_series(f"{panel}/{app}")
            for threads in threads_grid:
                config = SystemConfig(
                    mechanism=mechanism,
                    cores=cores,
                    threads_per_core=threads,
                    device=DeviceConfig(total_latency_us=1.0),
                )
                job = SweepJob(config=config, app=app, params=params)
                grid.append((line, threads, job))
    _run_normalized_applications("fig10", grid, engine)
    return result


# ---------------------------------------------------------------------------
# Figure A (beyond the paper): open-loop tail latency vs offered load
# ---------------------------------------------------------------------------

#: Services need a longer steady-state window than the closed-loop
#: microbenchmarks: the tail percentiles are computed from the requests
#: *completing inside* the window, so the window must hold enough
#: arrivals for a p99 to be meaningful.
_SLO_WINDOW = MeasureWindow(warmup_us=40.0, measure_us=400.0)

#: Polling service workers per logical core (the fig8 regime where SWQ
#: keeps the device busy: enough threads to overlap many accesses).
_SLO_WORKERS = 16

#: Queue-sizing policies under test, as per-core SWQ ring entries.  At
#: 1 us device latency the paper's rule (section V-B) wants ~20
#: entries per core (~20 x latency_us x cores chip-wide); rings must
#: be powers of two, so 32 satisfies the rule and 8 violates it.
_SLO_POLICIES = (("under-rule", 8), ("rule-sized", 32))

#: Sojourn quantiles reported per curve.
_SLO_QUANTILES = (("p50", "p50_ns"), ("p99", "p99_ns"), ("p999", "p999_ns"))


def figA_slo(
    scale: str = "quick", engine: Optional[SweepEngine] = None
) -> FigureResult:
    """Open-loop Poisson load on the fig8 multicore SWQ configuration.

    X-axis: offered load (requests per microsecond per core); curves:
    p50/p99/p999 end-to-end sojourn time (microseconds, measurement
    window only) for each queue-sizing policy and core count.  This is
    the figure the paper does not have: what the closed-loop thread
    sweeps hide is exactly where tail latency becomes binding when
    requests keep arriving regardless of completion.
    """
    result = FigureResult(
        "figA_slo",
        "Open-loop tail latency vs offered load (SWQ, 1us device)",
        xlabel="offered load (requests/us/core)",
        ylabel="sojourn latency (us)",
    )
    cores_grid = (1, 2, 4, 8) if scale == "full" else (1, 8)
    loads = (
        (0.05, 0.1, 0.15, 0.2, 0.25, 0.3)
        if scale == "full"
        else (0.1, 0.2, 0.3)
    )
    engine = _resolve_engine(engine)
    sweep = SweepSpec("figA_slo")
    grid = []
    for policy, ring_entries in _SLO_POLICIES:
        for cores in cores_grid:
            lines = {
                key: result.new_series(f"{policy}/{cores}core/{key}")
                for key, _field in _SLO_QUANTILES
            }
            for load in loads:
                config = SystemConfig(
                    mechanism=AccessMechanism.SOFTWARE_QUEUE,
                    cores=cores,
                    threads_per_core=_SLO_WORKERS,
                    device=DeviceConfig(total_latency_us=1.0),
                    swq=SwqConfig(ring_entries=ring_entries),
                )
                service = ServiceParams(
                    open_loop=OpenLoopSpec(
                        arrivals=ArrivalSpec(rate_per_us=load),
                        keys=KeySpec(theta=0.0),
                    ),
                    workers_per_core=_SLO_WORKERS,
                )
                job = sweep.add(
                    SweepJob(config=config, service=service, window=_SLO_WINDOW)
                )
                grid.append((lines, load, job))
    outcomes = engine.run(sweep)
    ns_per_us = US / NS
    for (lines, load, _job), outcome in zip(grid, outcomes):
        payload = _checked_payload(outcome)
        for key, payload_field in _SLO_QUANTILES:
            lines[key].add(load, payload[payload_field] / ns_per_us)
    return result


def queue_rule_report(figure: FigureResult) -> dict:
    """Does the ~20 x latency_us x cores queue-sizing rule hold?

    For every core count in a :func:`figA_slo` result, compares the
    rule-sized and under-rule p99 curves at the highest common offered
    load.  The rule "holds" for a core count when the rule-sized queue
    meets or beats the undersized one at the tail (it may tie when the
    load is too light for the ring to ever fill).
    """
    per_cores: dict[int, dict] = {}
    for line in figure.series:
        policy, cores_tag, quantile = line.label.split("/")
        if quantile != "p99":
            continue
        cores = int(cores_tag.removesuffix("core"))
        x, y = line.points[-1]
        entry = per_cores.setdefault(cores, {"offered_per_core_us": x})
        entry[policy] = y
    for cores, entry in per_cores.items():
        entry["holds"] = entry["rule-sized"] <= entry["under-rule"] * 1.001
    return {
        "rule": "~20 x latency_us x cores total SWQ entries",
        "per_cores": per_cores,
        "holds": all(entry["holds"] for entry in per_cores.values()),
    }


#: Registry used by the report example and the benchmark suite.
ALL_FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "figA_slo": figA_slo,
}
