"""Live telemetry for multi-minute sweeps.

A full-scale figure grid is hundreds of simulator runs; without
feedback a ``repro figure fig10 --scale full`` is indistinguishable
from a hang.  :class:`SweepProgress` receives per-job heartbeats from
the :class:`~repro.harness.sweep.SweepEngine` -- done/total counts,
cache hits, and worker liveness -- and renders a throttled one-line
status with an EWMA-smoothed ETA.

On a TTY the line redraws in place (``\\r``); on a pipe (CI logs) it
prints at most one full line per ``min_interval_s`` so logs stay
readable.  The reporter only ever *observes* completions, so enabling
``--progress`` cannot change any result.
"""

from __future__ import annotations

import sys
import time
from typing import Optional

__all__ = ["SweepProgress"]


class SweepProgress:
    """Renders sweep heartbeats to a stream (stderr by default)."""

    #: Smoothing factor for the per-job wall EWMA: each new sample
    #: carries 20%, so the ETA tracks drift without jumping on outliers.
    ALPHA = 0.2

    def __init__(
        self,
        stream=None,
        min_interval_s: float = 0.2,
        # simlint: disable-next-line=SIM101 -- terminal redraw throttle
        # runs on host time by design (tests inject a fake clock)
        clock=time.monotonic,
    ) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._isatty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._name = "sweep"
        self._total = 0
        self._done = 0
        self._cache_hits = 0
        self._workers = 1
        self._observed_workers = 1
        self._ewma_s: Optional[float] = None
        self._started = 0.0
        self._last_render = float("-inf")
        self._open_line = False
        self._queue_counts: dict = {}

    # -- engine hooks ------------------------------------------------------

    def begin(
        self, name: str, total: int, cache_hits: int, workers: int
    ) -> None:
        """A sweep starts: ``total`` jobs must simulate; ``cache_hits``
        more were already served from the result cache."""
        self._name = name
        self._total = total
        self._done = 0
        self._cache_hits = cache_hits
        self._workers = max(1, workers)
        self._observed_workers = 1
        self._ewma_s = None
        self._started = self._clock()
        self._last_render = float("-inf")
        self._queue_counts = {}
        self._render(active=0, force=True)

    def job_done(self, wall_s: float, active: int = 0) -> None:
        """One job finished after ``wall_s`` seconds; ``active`` workers
        are still busy."""
        self._done += 1
        # ``active`` excludes the worker that just freed up, so the
        # concurrency this completion witnessed is ``active + 1``
        # (1 on the serial path, which reports active=0).
        self._observed_workers = max(self._observed_workers, active + 1)
        if self._ewma_s is None:
            self._ewma_s = wall_s
        else:
            self._ewma_s += self.ALPHA * (wall_s - self._ewma_s)
        self._render(active=active, force=self._done == self._total)

    def heartbeat(self, active: int) -> None:
        """Nothing finished, but the sweep is alive (poll-loop tick)."""
        self._render(active=active)

    def queue_snapshot(self, counts: dict) -> None:
        """Work-queue state from a coordinated sweep (the
        pending/leased/done/failed counts of
        :meth:`repro.harness.coordinator.WorkQueue.counts`); folded
        into the next rendered status line.  Observational only, like
        every other hook."""
        self._queue_counts = dict(counts)

    def finish(self, stats: dict) -> None:
        """The sweep completed; emit the final summary line."""
        self._render(active=0, force=True)
        if self._open_line:
            print(file=self.stream)
            self._open_line = False
        print(
            f"[{self._name}] done: {stats.get('simulated', self._done)} "
            f"simulated, {stats.get('cache_hits', self._cache_hits)} cached, "
            f"{stats.get('wall_s', self._clock() - self._started):.1f} s",
            file=self.stream,
        )

    # -- rendering ---------------------------------------------------------

    def eta_s(self) -> Optional[float]:
        """EWMA-based remaining wall time, None before the first sample."""
        if self._ewma_s is None or self._done >= self._total:
            return None
        remaining = self._total - self._done
        # Divide by the concurrency actually observed, not the
        # configured worker count: the serial in-process path reports
        # active=0 on every completion, so dividing by the configured
        # ``--jobs`` made serial ETAs up to jobs-times too optimistic.
        workers = min(self._workers, self._observed_workers)
        return self._ewma_s * remaining / workers

    def _render(self, active: int, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        eta = self.eta_s()
        eta_text = "--" if eta is None else f"{eta:.0f}s"
        line = (
            f"[{self._name}] {self._done}/{self._total} jobs, "
            f"{self._cache_hits} cache hits, {active} active, "
            f"eta {eta_text}"
        )
        leased = self._queue_counts.get("leased", 0)
        failed = self._queue_counts.get("failed", 0)
        if leased or failed:
            line += f" [queue: {leased} leased, {failed} failed]"
        if self._isatty:
            print(f"\r{line:<70}", end="", file=self.stream, flush=True)
            self._open_line = True
        else:
            print(line, file=self.stream, flush=True)
