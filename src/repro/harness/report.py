"""Text rendering of reproduced figures.

The benchmark harness prints each figure as an aligned table whose
rows are x-values and whose columns are the figure's series -- the
same numbers the paper plots, in a diff-friendly form.  ``to_csv``
exports the series for external plotting.
"""

from __future__ import annotations

import io
from typing import Iterable

from repro.harness.figures import FigureResult

__all__ = ["render_chart", "render_summary", "render_table", "to_csv"]


def _x_values(figure: FigureResult) -> list[float]:
    xs: list[float] = []
    for series in figure.series:
        for x, _y in series.points:
            if x not in xs:
                xs.append(x)
    return sorted(xs)


def render_table(figure: FigureResult, precision: int = 3) -> str:
    """The figure as an aligned text table (x rows, series columns)."""
    xs = _x_values(figure)
    labels = [series.label for series in figure.series]
    width = max(8, max((len(label) for label in labels), default=8) + 1)
    xwidth = max(len(figure.xlabel), 8) + 1
    out = io.StringIO()
    out.write(f"{figure.figure_id}: {figure.title}\n")
    out.write(f"  y = {figure.ylabel}\n")
    header = f"{figure.xlabel:>{xwidth}}" + "".join(
        f"{label:>{width}}" for label in labels
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    lookup = {
        (series.label, x): y for series in figure.series for x, y in series.points
    }
    for x in xs:
        x_text = f"{x:g}"
        row = f"{x_text:>{xwidth}}"
        for label in labels:
            y = lookup.get((label, x))
            row += f"{'-':>{width}}" if y is None else f"{y:>{width}.{precision}f}"
        out.write(row + "\n")
    return out.getvalue()


def to_csv(figure: FigureResult) -> str:
    """The figure as CSV: figure_id,series,x,y rows."""
    out = io.StringIO()
    out.write("figure,series,x,y\n")
    for series in figure.series:
        for x, y in series.points:
            out.write(f"{figure.figure_id},{series.label},{x:g},{y:.6f}\n")
    return out.getvalue()


#: Per-series plot markers, cycled.
_MARKERS = "ox+*#@%&"


def render_chart(
    figure: FigureResult, width: int = 64, height: int = 16
) -> str:
    """The figure as an ASCII scatter/line chart.

    Each series gets a marker; colliding points show the later series'
    marker.  Meant for terminals (the CLI's ``figure --chart``) -- the
    CSV output is the precision path.
    """
    points = [
        (x, y) for series in figure.series for x, y in series.points
    ]
    if not points:
        return f"{figure.figure_id}: (no data)\n"
    xs = [x for x, _y in points]
    ys = [y for _x, y in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(0.0, min(ys)), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, series in enumerate(figure.series):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in series.points:
            column = round((x - x_lo) / x_span * (width - 1))
            row = height - 1 - round((y - y_lo) / y_span * (height - 1))
            grid[row][column] = marker

    out = io.StringIO()
    out.write(f"{figure.figure_id}: {figure.title}\n")
    for index, series in enumerate(figure.series):
        marker = _MARKERS[index % len(_MARKERS)]
        out.write(f"  {marker} = {series.label}\n")
    top_label = f"{y_hi:.3g}"
    bottom_label = f"{y_lo:.3g}"
    gutter = max(len(top_label), len(bottom_label)) + 1
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = top_label
        elif row_index == height - 1:
            label = bottom_label
        else:
            label = ""
        out.write(f"{label:>{gutter}}|{''.join(row)}\n")
    out.write(f"{'':>{gutter}}+{'-' * width}\n")
    out.write(
        f"{'':>{gutter}} {x_lo:g}{'':>{max(1, width - 12)}}{x_hi:g}"
        f"  ({figure.xlabel})\n"
    )
    return out.getvalue()


def render_summary(figures: Iterable[FigureResult]) -> str:
    """Peak-per-series digest across several figures."""
    out = io.StringIO()
    for figure in figures:
        out.write(f"{figure.figure_id}:\n")
        for series in figure.series:
            peak = series.peak()
            at = max(series.points, key=lambda p: p[1])[0]
            out.write(f"  {series.label:24s} peak {peak:6.3f} at x={at:g}\n")
    return out.getvalue()
