"""Figure-result baselines: save once, diff later runs.

A simulator's results should not drift silently under refactoring.
This module serializes a :class:`FigureResult` to JSON and compares a
fresh run against a stored baseline point by point, reporting every
deviation beyond a tolerance.

CLI: ``repro figure fig3 --save-baseline b.json`` then later
``repro figure fig3 --compare-baseline b.json``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Union

from repro.errors import ConfigError
from repro.harness.figures import FigureResult

__all__ = [
    "Deviation",
    "compare_mappings",
    "compare_to_baseline",
    "figure_from_dict",
    "figure_to_dict",
    "flatten_numeric",
    "load_baseline",
    "save_baseline",
]

_FORMAT = "repro-figure-baseline-v1"


def figure_to_dict(figure: FigureResult) -> dict:
    return {
        "format": _FORMAT,
        "figure_id": figure.figure_id,
        "title": figure.title,
        "xlabel": figure.xlabel,
        "ylabel": figure.ylabel,
        "series": {
            series.label: [[x, y] for x, y in series.points]
            for series in figure.series
        },
    }


def figure_from_dict(payload: dict) -> FigureResult:
    if payload.get("format") != _FORMAT:
        raise ConfigError(
            f"not a figure baseline (format={payload.get('format')!r})"
        )
    figure = FigureResult(
        payload["figure_id"], payload["title"],
        payload["xlabel"], payload["ylabel"],
    )
    for label, points in payload["series"].items():
        series = figure.new_series(label)
        for x, y in points:
            series.add(x, y)
    return figure


def save_baseline(figure: FigureResult, path) -> None:
    with open(path, "w") as handle:
        json.dump(figure_to_dict(figure), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path) -> FigureResult:
    with open(path) as handle:
        return figure_from_dict(json.load(handle))


@dataclass(frozen=True)
class Deviation:
    """One point that moved beyond tolerance (or appeared/vanished)."""

    series: str
    x: Union[float, None]
    baseline_y: Union[float, None]
    current_y: Union[float, None]
    kind: str  # "value" | "missing-point" | "new-point" | "missing-series" | "new-series"

    def describe(self) -> str:
        at = "" if self.x is None else f" @ x={self.x:g}"
        if self.kind == "value":
            return (
                f"{self.series}{at}: {self.baseline_y:.4f} -> "
                f"{self.current_y:.4f}"
            )
        if self.kind in ("missing-point", "new-point"):
            return f"{self.series}{at}: {self.kind}"
        return f"{self.series}: {self.kind}"


def compare_to_baseline(
    figure: FigureResult,
    baseline: FigureResult,
    rtol: float = 0.05,
    atol: float = 0.01,
) -> list[Deviation]:
    """Every point of ``figure`` vs ``baseline``, within tolerance.

    A point deviates when ``|current - base| > atol + rtol * |base|``.
    Structural differences (series or points added/removed) are always
    reported.
    """
    if figure.figure_id != baseline.figure_id:
        raise ConfigError(
            f"comparing {figure.figure_id} against a {baseline.figure_id} "
            "baseline"
        )
    deviations: list[Deviation] = []
    current = {series.label: dict(series.points) for series in figure.series}
    expected = {series.label: dict(series.points) for series in baseline.series}
    for label in expected.keys() - current.keys():
        deviations.append(Deviation(label, None, None, None, "missing-series"))
    for label in current.keys() - expected.keys():
        deviations.append(Deviation(label, None, None, None, "new-series"))
    for label in expected.keys() & current.keys():
        base_points = expected[label]
        new_points = current[label]
        for x in base_points.keys() - new_points.keys():
            deviations.append(
                Deviation(label, x, base_points[x], None, "missing-point")
            )
        for x in new_points.keys() - base_points.keys():
            deviations.append(
                Deviation(label, x, None, new_points[x], "new-point")
            )
        for x in base_points.keys() & new_points.keys():
            base_y, new_y = base_points[x], new_points[x]
            if abs(new_y - base_y) > atol + rtol * abs(base_y):
                deviations.append(Deviation(label, x, base_y, new_y, "value"))
    deviations.sort(key=lambda d: (d.series, d.x if d.x is not None else -1))
    return deviations


def flatten_numeric(payload, prefix: str = "") -> dict[str, float]:
    """Dotted-key view of every number in a nested dict.

    Non-numeric leaves (strings, None, lists) are skipped: the run
    ledger mixes deterministic counters with metadata like digests and
    timestamps, and only the numbers are point-comparable.  Booleans
    are skipped too -- ``True == 1`` would make flag flips look like
    off-by-one counter drift.
    """
    flat: dict[str, float] = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            flat.update(flatten_numeric(value, f"{prefix}{key}."))
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        flat[prefix[:-1]] = payload
    return flat


def compare_mappings(
    current: dict,
    baseline: dict,
    rtol: float = 0.0,
    atol: float = 0.0,
    label: str = "",
) -> list[Deviation]:
    """Diff two nested numeric mappings (kernel stats, metrics
    snapshots) with the same tolerance rule as figure baselines.

    The default tolerance is exact: these are event counts, and two
    runs of the same model version on the same config must agree
    bit-for-bit.  Pass ``rtol``/``atol`` when diffing across model
    changes.  ``label`` prefixes every reported key (e.g. ``"metrics"``).
    """
    stem = f"{label}." if label else ""
    base_flat = flatten_numeric(baseline)
    new_flat = flatten_numeric(current)
    deviations: list[Deviation] = []
    for key in base_flat.keys() - new_flat.keys():
        deviations.append(
            Deviation(stem + key, None, base_flat[key], None, "missing-point")
        )
    for key in new_flat.keys() - base_flat.keys():
        deviations.append(
            Deviation(stem + key, None, None, new_flat[key], "new-point")
        )
    for key in base_flat.keys() & new_flat.keys():
        base_y, new_y = base_flat[key], new_flat[key]
        if abs(new_y - base_y) > atol + rtol * abs(base_y):
            deviations.append(
                Deviation(stem + key, None, base_y, new_y, "value")
            )
    deviations.sort(key=lambda d: d.series)
    return deviations
