"""Per-core memory subsystem: L1 + line-fill buffers + uncore routing.

This is the path every load and prefetch takes:

    L1 probe -> (hit: a few cycles)
             -> (merge: wait on the existing miss's fill)
             -> allocate an LFB entry      [10/core  -- Figure 3 cap]
             -> shared uncore path queue   [14 chip-wide -- Figure 5 cap]
             -> hop -> memory target (DRAM channel or PCIe+device) -> hop
             -> install in L1, wake waiters, free LFB + queue slot

LFB allocation happens on the caller's (front-end's) time; everything
downstream runs in a detached fill process so the core keeps
dispatching while fills are in flight.
"""

from __future__ import annotations

from repro.config import CacheConfig
from repro.cpu.cache import L1Cache
from repro.cpu.lfb import LineFillBuffers, MissEntry
from repro.cpu.uncore import AddressSpace, Uncore
from repro.sim import Event, Simulator
from repro.sim.trace import LatencyStat
from repro.units import Frequency

__all__ = ["CoreMemorySystem"]


class CoreMemorySystem:
    """One core's private cache/LFB view onto the shared uncore."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        cache_config: CacheConfig,
        lfb_entries: int,
        uncore: Uncore,
        frequency: Frequency,
        drop_prefetch_when_full: bool = False,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.line_bytes = cache_config.line_bytes
        self.l1 = L1Cache(cache_config, name=f"l1d{core_id}")
        self.lfb = LineFillBuffers(sim, lfb_entries, name=f"lfb{core_id}")
        self.uncore = uncore
        self.drop_prefetch_when_full = drop_prefetch_when_full
        #: Posted-write buffer; attached by the system builder (None in
        #: read-only unit-test rigs).
        self.store_buffer = None
        #: Optional hardware stride prefetcher (the paper disables it;
        #: the interference ablation enables it).
        self.hw_prefetcher = None
        self._hit_ticks = frequency.cycles(cache_config.hit_cycles)
        self.fill_latency = LatencyStat(f"core{core_id}-fill")
        #: Byte contents of L1-resident lines (hits must not consult
        #: the backing store; in replay mode it may not be readable).
        self._contents: dict[int, bytes] = {}

    def register_metrics(self, registry, prefix: str) -> None:
        self.lfb.register_metrics(registry, f"{prefix}.lfb")
        registry.register(f"{prefix}.fill_latency", self.fill_latency)
        registry.register(f"{prefix}.l1_hits", lambda: self.l1.hits)
        registry.register(f"{prefix}.l1_misses", lambda: self.l1.misses)

    def line_of(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def load_line(self, addr: int, space: AddressSpace) -> Event:
        """Start a load of ``addr``'s line; never blocks the caller.

        Returns an event that fires with the line's bytes: an L1 hit
        after the hit latency, a merge into an in-flight miss, or a
        fresh miss that waits in the reservation station for a
        line-fill buffer and then fills.
        """
        line = self.line_of(addr)
        if self.l1.lookup(line):
            if self.hw_prefetcher is not None:
                self.hw_prefetcher.note_hit(line)
            hit = Event(self.sim)
            self.sim._schedule_value(hit, self._hit_ticks, self._line_data(line))
            return hit
        merged = self.lfb.lookup(line)
        if merged is not None:
            if self.hw_prefetcher is not None:
                self.hw_prefetcher.note_hit(line)
            return merged.data_ready
        if self.hw_prefetcher is not None:
            self.hw_prefetcher.observe_miss(line, space)
        entry, granted = self.lfb.allocate_queued(line)
        granted.add_callback(
            lambda _ev: self.sim.process(
                self._fill(entry, line, space), name=f"fill-{line:#x}"
            )
        )
        return entry.data_ready

    def prefetch_line(self, addr: int, space: AddressSpace) -> Event:
        """Non-binding prefetch of a line (never blocks the caller).

        Returns the event marking the prefetch *issued* (the point the
        instruction can retire).  No-op (already fired) on an L1 hit or
        an in-flight miss.  On a fresh miss, behaviour follows the
        configured policy:

        * ``queue`` (default): with every line-fill buffer busy the
          prefetch waits in the reservation station; it cannot retire
          until a buffer frees, so ROB backpressure smoothly throttles
          dispatch to the fill rate -- the flat >10-thread plateau of
          Figure 3.
        * ``drop``: the prefetch is silently discarded when no buffer
          is free (counted in ``lfb.dropped_prefetches``); the later
          demand load then takes the full miss.
        """
        line = self.line_of(addr)
        if self.l1.contains(line) or self.lfb.contains(line):
            return self._fired()
        if self.drop_prefetch_when_full:
            entry = self.lfb.try_allocate(line)
            if entry is not None:
                self.sim.process(self._fill(entry, line, space), name=f"pf-{line:#x}")
            return self._fired()
        entry, granted = self.lfb.allocate_queued(line)
        granted.add_callback(
            lambda _ev: self.sim.process(
                self._fill(entry, line, space), name=f"pf-{line:#x}"
            )
        )
        return granted

    def _fired(self) -> Event:
        event = Event(self.sim)
        event.succeed(None)
        return event

    def _fill(self, entry: MissEntry, line: int, space: AddressSpace):
        queue = self.uncore.queue(space)
        grant = queue.acquire()
        try:
            if not grant.fired:
                yield grant
            if self.uncore.tracer is not None:
                self.uncore.trace_queue(space)
            yield self.sim.timeout(self.uncore.hop_ticks)
            data = yield self.uncore.target(space).read_line(line)
            yield self.sim.timeout(self.uncore.hop_ticks)
            victim = self.l1.install(line)
            if victim is not None:
                self._contents.pop(victim, None)
            self._contents[line] = data
        finally:
            # An exception thrown into the fill process must not strand
            # a shared-queue slot.  The slot is ours once the grant has
            # *triggered*; while still queued we own nothing to release.
            if grant.triggered:
                queue.release()
        if self.uncore.tracer is not None:
            self.uncore.trace_queue(space)
        self.fill_latency.record(self.sim.now - entry.issued_at)
        self.lfb.complete(entry, data)

    def _line_data(self, line: int) -> bytes:
        return self._contents.get(line, b"\x00" * self.line_bytes)
