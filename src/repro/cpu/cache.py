"""A set-associative, LRU, line-presence L1 data cache.

Timing-wise the cache answers one question: does this access hit (a
few cycles) or miss (allocate an LFB and go off-core)?  Contents are
functional and live in :class:`repro.memory.FlatMemory`; the cache
tracks presence only.

The microbenchmark defeats the cache on purpose ("we make each access
go to a different cache line", section IV-C); the applications get
realistic reuse on their hot structures.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.config import CacheConfig
from repro.errors import AddressError

__all__ = ["L1Cache"]


class L1Cache:
    """Presence tracker with per-set LRU replacement."""

    def __init__(self, config: CacheConfig, name: str = "l1d") -> None:
        self.config = config
        self.name = name
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.installs = 0

    def _index(self, line_addr: int) -> int:
        if line_addr % self.config.line_bytes != 0:
            raise AddressError(f"{line_addr:#x} is not line aligned")
        return (line_addr // self.config.line_bytes) % self.config.sets

    def lookup(self, line_addr: int) -> bool:
        """Probe for ``line_addr``; updates LRU order and hit stats."""
        bucket = self._sets[self._index(line_addr)]
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, line_addr: int) -> bool:
        """Probe without touching LRU state or statistics."""
        return line_addr in self._sets[self._index(line_addr)]

    def install(self, line_addr: int) -> int | None:
        """Insert a filled line, evicting the set's LRU victim if full.

        Returns the evicted line address, or None if nothing was
        evicted (callers tracking line contents drop the victim's).
        """
        bucket = self._sets[self._index(line_addr)]
        if line_addr in bucket:
            bucket.move_to_end(line_addr)
            return None
        victim: int | None = None
        if len(bucket) >= self.config.ways:
            victim, _ = bucket.popitem(last=False)
            self.evictions += 1
        bucket[line_addr] = None
        self.installs += 1
        return victim

    def invalidate_all(self) -> None:
        """Drop every line (used between experiment phases)."""
        for bucket in self._sets:
            bucket.clear()

    @property
    def resident_lines(self) -> int:
        return sum(len(bucket) for bucket in self._sets)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
