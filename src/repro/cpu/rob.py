"""Reorder-buffer occupancy tracking with in-order retirement.

The paper's on-demand result (Figure 2) is a story about the ROB: "a
load from a microsecond-latency device will rapidly reach the head of
the reorder buffer, causing it to fill up and stall further instruction
dispatch" (section III-B).  This module models exactly that: dispatch
allocates slots, completion is out of order, retirement is in order,
and a long-latency load at the head holds every younger instruction's
slots hostage.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Generator, Optional

from repro.errors import SimulationError
from repro.sim import Event, Simulator, Store

__all__ = ["ReorderBuffer"]

# Retirement FIFO entries are plain ``(slots, done, on_retire)`` tuples;
# a group is committed for every dispatched chunk, so the entry type is
# on the kernel's hot path and must not cost a class instance.


class ReorderBuffer:
    """Slot accounting for an out-of-order core's instruction window.

    Usage from the core's front-end (a single process):

    1. ``yield from rob.allocate(n)`` -- stall dispatch until ``n``
       slots are free.
    2. ``rob.commit(n, done_event[, on_retire])`` -- enter the dispatched
       group into the retirement FIFO; its slots free once ``done_event``
       has fired *and* every older group has retired.
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "rob") -> None:
        if capacity < 1:
            raise SimulationError("ROB capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.free = capacity
        self._entries: Store = Store(sim, name=f"{name}-entries")
        self._waiters: Deque[tuple[int, Event]] = deque()
        self._idle_waiters: list[Event] = []
        self.max_used = 0
        self.retired_groups = 0
        # Slot-level dispatch/retire accounting: the invariant monitor
        # checks ``allocated_slots - retired_slots == used``.
        self.allocated_slots = 0
        self.retired_slots = 0
        #: Optional observability hooks (attached by the System when a
        #: trace is requested); None keeps the hot path untouched.
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid = 0
        sim.process(self._retire_loop(), name=f"{name}-retire")

    def attach_tracer(self, tracer, pid: int, tid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid = tid

    def register_metrics(self, registry, prefix: str) -> None:
        """Export occupancy statistics under ``prefix``."""
        registry.register(f"{prefix}.capacity", lambda: self.capacity)
        registry.register(f"{prefix}.max_used", lambda: self.max_used)
        registry.register(
            f"{prefix}.retired_groups", lambda: self.retired_groups
        )
        registry.register(
            f"{prefix}.allocated_slots", lambda: self.allocated_slots
        )
        registry.register(
            f"{prefix}.retired_slots", lambda: self.retired_slots
        )

    @property
    def used(self) -> int:
        return self.capacity - self.free

    def allocate(self, slots: int) -> Generator[Event, object, None]:
        """Generator: stall until ``slots`` ROB slots are available."""
        if slots > self.capacity:
            raise SimulationError(
                f"{self.name}: group of {slots} exceeds ROB capacity "
                f"{self.capacity} (reduce the work chunk size)"
            )
        if slots <= 0:
            raise SimulationError("allocation must be positive")
        if self.free >= slots and not self._waiters:
            self.free -= slots
            self.allocated_slots += slots
        else:
            grant = Event(self.sim)
            self._waiters.append((slots, grant))
            tracer = self.tracer
            if tracer is None:
                yield grant
            else:
                stalled_at = self.sim.now
                yield grant
                tracer.complete(
                    "rob",
                    self._trace_pid,
                    self._trace_tid,
                    "rob-stall",
                    stalled_at,
                    self.sim.now,
                    args={"slots": slots, "used": self.used},
                )
        self.max_used = max(self.max_used, self.used)

    def commit(
        self,
        slots: int,
        done: Event,
        on_retire: Optional[Callable[[], None]] = None,
    ) -> None:
        """Enter an allocated group into the retirement FIFO."""
        self._entries.put((slots, done, on_retire))

    def _retire_loop(self):
        while True:
            slots, done, on_retire = yield self._entries.get()
            if not done.fired:
                yield done
            self.free += slots
            self.retired_slots += slots
            if self.free > self.capacity:  # pragma: no cover - invariant
                raise SimulationError(f"{self.name}: retired more than allocated")
            self.retired_groups += 1
            if on_retire is not None:
                on_retire()
            self._grant_waiters()
            if self.free == self.capacity and not self._waiters:
                waiters, self._idle_waiters = self._idle_waiters, []
                for waiter in waiters:
                    waiter.succeed(None)

    def idle(self) -> Event:
        """An event firing when the ROB has fully drained."""
        event = Event(self.sim)
        if self.free == self.capacity and not self._waiters:
            event.succeed(None)
        else:
            self._idle_waiters.append(event)
        return event

    def _grant_waiters(self) -> None:
        while self._waiters and self._waiters[0][0] <= self.free:
            slots, grant = self._waiters.popleft()
            self.free -= slots
            self.allocated_slots += slots
            grant.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ReorderBuffer {self.used}/{self.capacity}>"
