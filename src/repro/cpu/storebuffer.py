"""A store buffer: posted writes that retire ahead of completion.

Writes are the paper's declared future work (section VII): "because
writes do not have return values, are often off the critical path, and
do not prevent context switching by blocking at the head of the
reorder buffer, their latency can be more easily hidden by later
instructions of the same thread without requiring prefetch
instructions."

This model makes that concrete: a store occupies one ROB slot only for
dispatch, then sits in a bounded store buffer that drains to the
memory system in the background (write-through, no write-allocate).
Dispatch stalls only when the buffer itself is full -- which takes a
sustained write rate above the drain path's bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.uncore import AddressSpace, Uncore
from repro.errors import SimulationError
from repro.sim import Event, Simulator, Store

__all__ = ["PendingStore", "StoreBuffer"]


@dataclass
class PendingStore:
    """One buffered write (line-granular on the wire)."""

    addr: int
    space: AddressSpace
    num_bytes: int


class WriteSink:
    """Where drained stores go (set by the system builder)."""

    def write_line(self, store: PendingStore) -> Event:
        """Issue the write toward its target; fires when the write has
        left the chip (posted semantics -- no completion wait)."""
        raise NotImplementedError  # pragma: no cover - interface


class StoreBuffer:
    """Bounded buffer of posted writes, drained FIFO."""

    def __init__(
        self,
        sim: Simulator,
        entries: int,
        uncore: Uncore,
        name: str = "stb",
    ) -> None:
        if entries < 1:
            raise SimulationError("store buffer needs at least one entry")
        self.sim = sim
        self.name = name
        self.uncore = uncore
        self._slots: Store = Store(sim, capacity=entries, name=name)
        self._sinks: dict[AddressSpace, WriteSink] = {}
        self.stores_posted = 0
        self.stores_drained = 0
        self.full_stalls = 0
        sim.process(self._drain(), name=f"{name}-drain")

    def attach_sink(self, space: AddressSpace, sink: WriteSink) -> None:
        self._sinks[space] = sink

    @property
    def capacity(self) -> int:
        return self._slots.capacity or 0

    @property
    def occupancy(self) -> int:
        return len(self._slots)

    def post(self, store: PendingStore):
        """Generator (front-end time): enqueue a write.

        Returns immediately while the buffer has space; stalls the
        caller (dispatch) when it is full.
        """
        self.stores_posted += 1
        capacity = self._slots.capacity
        if capacity is not None and len(self._slots) >= capacity:
            self.full_stalls += 1
        accepted = self._slots.put(store)
        if not accepted.fired:
            yield accepted

    def _drain(self):
        while True:
            store = yield self._slots.get()
            sink = self._sinks.get(store.space)
            if sink is None:
                raise SimulationError(
                    f"{self.name}: no write sink for {store.space.value}"
                )
            # The write occupies a shared-queue slot only while it is
            # being injected; posted writes need no response tracking.
            queue = self.uncore.queue(store.space)
            grant = queue.acquire()
            try:
                if not grant.fired:
                    yield grant
                yield self.sim.timeout(self.uncore.hop_ticks)
                sent = sink.write_line(store)
                if not sent.fired:
                    yield sent
            finally:
                # An exception thrown into the drain process must not
                # strand a shared-queue slot (cores would deadlock on a
                # grant that never comes).  The slot is ours once the
                # grant has *triggered*; while still queued for a full
                # queue we own nothing to release.
                if grant.triggered:
                    queue.release()
            self.stores_drained += 1
