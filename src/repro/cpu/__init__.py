"""Cycle-approximate CPU model: core, ROB, caches, LFBs, uncore."""

from repro.cpu.cache import L1Cache
from repro.cpu.core import LoadToken, OutOfOrderCore
from repro.cpu.lfb import LineFillBuffers, MissEntry
from repro.cpu.memsys import CoreMemorySystem
from repro.cpu.rob import ReorderBuffer
from repro.cpu.uncore import AddressSpace, MemoryTarget, Uncore

__all__ = [
    "AddressSpace",
    "CoreMemorySystem",
    "L1Cache",
    "LineFillBuffers",
    "LoadToken",
    "MemoryTarget",
    "MissEntry",
    "OutOfOrderCore",
    "ReorderBuffer",
    "Uncore",
]
