"""An approximate out-of-order core executing macro-op effects.

The model captures the mechanisms the paper's analysis rests on, and
nothing more:

* a bounded reorder buffer with in-order retirement -- long-latency
  loads at the head stall dispatch (Figure 2's on-demand collapse);
* dispatch-width-limited front end and an IPC-limited "work" pipeline
  (the microbenchmark's dependent arithmetic runs at ~1.4 IPC);
* loads/prefetches that allocate line-fill buffers and travel through
  the shared uncore queues (Figures 3 and 5's plateaus);
* cheap primitives for the software overheads of the runtime: context
  switches, descriptor builds, completion polling, MMIO doorbells.

Work blocks dispatch and retire in chunks so that the instruction
window behaves like a window of instructions rather than a window of
loop iterations; the chunk size is a fidelity knob, not a hardware
parameter.

All methods that consume front-end time are generators and must be
driven from the core's single runtime process (``yield from``).
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.config import CpuConfig
from repro.cpu.memsys import CoreMemorySystem
from repro.cpu.rob import ReorderBuffer
from repro.cpu.uncore import AddressSpace
from repro.errors import SimulationError
from repro.sim import Event, Resource, Simulator, all_of
from repro.sim.trace import Counter

__all__ = ["LoadToken", "OutOfOrderCore"]


class LoadToken:
    """Handle to an in-flight (or completed) load.

    ``event`` fires with the full line's bytes; :meth:`word` extracts
    the 64-bit word the access asked for.
    """

    __slots__ = ("event", "addr", "line_addr")

    def __init__(self, event: Event, addr: int, line_addr: int) -> None:
        self.event = event
        self.addr = addr
        self.line_addr = line_addr

    @property
    def done(self) -> bool:
        return self.event.fired

    def word(self) -> int:
        """The loaded 64-bit value (line must have arrived)."""
        from repro.memory import FlatMemory

        return FlatMemory.word_from_line(self.line_addr, self.event.value, self.addr)


class OutOfOrderCore:
    """One core: front end, ROB, and a private memory subsystem."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        config: CpuConfig,
        memsys: CoreMemorySystem,
        work_counter: Counter,
        rob_entries: Optional[int] = None,
        front_end: Optional["Resource"] = None,
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.config = config
        self.frequency = config.frequency
        self.memsys = memsys
        entries = rob_entries if rob_entries is not None else config.rob_entries
        self.rob = ReorderBuffer(sim, entries, name=f"rob{core_id}")
        self.work = work_counter
        self.instructions = Counter(f"core{core_id}-instructions")
        #: Shared dispatch bandwidth between SMT contexts: while one
        #: context holds the front end, its sibling waits; a context
        #: stalled on a full ROB releases it, which is exactly SMT's
        #: benefit for on-demand accesses (section III-B).
        self._front_end = front_end
        self._mmio_sink: Optional[Callable[[int, int], None]] = None
        if config.work_chunk_instructions > entries:
            raise SimulationError("work chunk larger than the ROB")

    # -- wiring ---------------------------------------------------------------

    def set_mmio_sink(self, sink: Callable[[int, int], None]) -> None:
        """Attach the posted-MMIO-write path (doorbells)."""
        self._mmio_sink = sink

    def register_metrics(self, registry, prefix: str) -> None:
        """Export this logical core's private probes under ``prefix``
        (e.g. ``core0.rob.max_used``).  The memory subsystem registers
        separately: SMT siblings share it, so the System exports it
        once per *physical* core."""
        registry.register(f"{prefix}.instructions", self.instructions)
        self.rob.register_metrics(registry, f"{prefix}.rob")

    # -- time helpers ---------------------------------------------------------

    def cycles(self, n: float) -> int:
        return self.frequency.cycles(n)

    def _dispatch_ticks(self, instructions: int) -> int:
        return self.frequency.cycles(instructions / self.config.dispatch_width)

    def _execute_ticks(self, instructions: int) -> int:
        return self.frequency.cycles(instructions / self.config.work_ipc)

    def _fired_event(self) -> Event:
        event = Event(self.sim)
        event.succeed(None)
        return event

    def _dispatch(self, ticks: int):
        """Consume front-end time, arbitrating with any SMT sibling."""
        if self._front_end is None:
            yield self.sim.timeout(ticks)
            return
        grant = self._front_end.acquire()
        try:
            if not grant.fired:
                yield grant
            yield self.sim.timeout(ticks)
        finally:
            # An exception thrown into the owning process while it sits
            # on the dispatch timeout must not strand the front end --
            # the SMT sibling would deadlock waiting for a slot that is
            # never released.  The slot is ours once the grant has
            # *triggered* (an uncontended acquire grants immediately,
            # before the event fires); an exception while still queued
            # for a contended front end owns nothing to release.
            if grant.triggered:
                self._front_end.release()

    # -- primitives (front-end generators) ------------------------------------

    def dispatch_work(
        self,
        instructions: int,
        deps: Sequence[Event] = (),
        count_as_work: bool = True,
    ):
        """Dispatch a block of arithmetic instructions.

        The block's first chunk starts executing once every event in
        ``deps`` has fired (e.g. the load that produced its input);
        later chunks chain on their predecessor.  Dispatch consumes
        front-end time and ROB slots but does **not** wait for
        execution -- the out-of-order essence.  Returns the completion
        event of the final chunk.
        """
        if instructions < 0:
            raise SimulationError("negative instruction count")
        if instructions == 0:
            return self._fired_event()
        chunk_size = self.config.work_chunk_instructions
        previous: Optional[Event] = None
        remaining = instructions
        first = True
        while remaining > 0:
            chunk = min(chunk_size, remaining)
            remaining -= chunk
            yield from self.rob.allocate(chunk)
            yield from self._dispatch(self._dispatch_ticks(chunk))
            gates: list[Event] = []
            if previous is not None:
                gates.append(previous)
            if first:
                gates.extend(dep for dep in deps if not dep.fired)
                first = False
            exec_ticks = self._execute_ticks(chunk)
            if not gates:
                completion = self.sim.timeout(exec_ticks)
            elif len(gates) == 1:
                completion = self.sim.delayed(gates[0], exec_ticks)
            else:
                completion = self.sim.delayed(all_of(self.sim, gates), exec_ticks)
            self.rob.commit(chunk, completion, self._retire_hook(chunk, count_as_work))
            previous = completion
        return previous

    def _retire_hook(self, instructions: int, count_as_work: bool):
        def hook() -> None:
            self.instructions.add(instructions)
            if count_as_work:
                self.work.add(instructions)

        return hook

    def issue_load(self, addr: int, space: AddressSpace):
        """Dispatch one load; returns a :class:`LoadToken` immediately.

        The token's event fires with the line data.  The load occupies
        one ROB slot until it completes (and everything older retires).
        """
        yield from self.rob.allocate(1)
        yield from self._dispatch(self._dispatch_ticks(1))
        data_event = self.memsys.load_line(addr, space)
        self.rob.commit(1, data_event, self._retire_hook(1, False))
        return LoadToken(data_event, addr, self.memsys.line_of(addr))

    def issue_store(self, addr: int, space: AddressSpace, num_bytes: int = 8):
        """Dispatch one posted store (section VII's future-work path).

        The store retires at dispatch and drains through the store
        buffer in the background; dispatch stalls only while the
        buffer is full.  Functional memory contents are the caller's
        responsibility (program order at the writing thread).
        """
        if self.memsys.store_buffer is None:
            raise SimulationError(
                f"core{self.core_id}: no store buffer attached (writes "
                "need a System-built memory subsystem)"
            )
        yield from self.rob.allocate(1)
        yield from self._dispatch(self._dispatch_ticks(1))
        from repro.cpu.storebuffer import PendingStore

        yield from self.memsys.store_buffer.post(
            PendingStore(addr, space, num_bytes)
        )
        self.rob.commit(1, self._fired_event(), self._retire_hook(1, False))

    def wait_data(self, token: LoadToken):
        """Block the front end until ``token``'s line has arrived.

        Models a *use* whose result the program needs before it can
        produce any further instructions (pointer chasing).  Returns
        the line bytes.
        """
        if token.event.fired:
            return token.event.value
        data = yield token.event
        return data

    def issue_prefetch(self, addr: int, space: AddressSpace):
        """Dispatch one non-binding ``prefetcht0``.

        The instruction never waits for data.  Under the default
        ``queue`` policy it retires once it obtains a line-fill buffer
        (waiting in the reservation station while all are busy, so
        dispatch continues past it and ROB backpressure throttles the
        core to the fill rate); under the ``drop`` policy it retires
        immediately, discarded if no buffer was free.
        """
        yield from self.rob.allocate(1)
        yield from self._dispatch(self._dispatch_ticks(1))
        issued = self.memsys.prefetch_line(addr, space)
        self.rob.commit(1, issued, self._retire_hook(1, False))

    def run_instructions(self, instructions: int, count_as_work: bool = False):
        """Dispatch-and-forget an overhead instruction block.

        Shorthand for software costs (descriptor builds, completion
        handling) that are not "work" in the paper's work-IPC sense.
        """
        if instructions > 0:
            yield from self.dispatch_work(
                instructions, deps=(), count_as_work=count_as_work
            )

    def drain(self):
        """Wait until every dispatched instruction has retired.

        Finite workloads call this before reading the clock, so that
        "execution time" includes in-flight work.
        """
        yield self.rob.idle()

    def busy(self, ticks: int):
        """Occupy the front end for a fixed time (context switch cost,
        serializing instructions, ...)."""
        if ticks > 0:
            yield self.sim.timeout(ticks)

    def mmio_write(self, addr: int, num_bytes: int, cost_ticks: int):
        """A posted uncached write (doorbell): the core pays a fixed
        cost; the write travels to the device asynchronously."""
        if self._mmio_sink is None:
            raise SimulationError(f"core{self.core_id}: no MMIO sink attached")
        yield from self.busy(cost_ticks)
        self._mmio_sink(addr, num_bytes)

    # -- introspection ---------------------------------------------------------

    @property
    def lfb(self):
        return self.memsys.lfb

    @property
    def l1(self):
        return self.memsys.l1
