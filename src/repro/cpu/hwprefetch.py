"""A hardware stride prefetcher (the one the paper turns off).

Section IV-A: "hardware prefetching is also disabled to avoid
interference with the software prefetch mechanism."  This module
implements the disabled unit -- a classic stride detector -- so the
interference can be measured instead of assumed:

* on sequential streams it runs ahead of demand and hides latency
  (good for unmodified on-demand code);
* under the software-prefetch mechanism it competes for the same ten
  line-fill buffers, displacing useful software prefetches;
* on random access patterns (Bloom probes, hash chains) it issues
  useless device reads that waste buffers and bandwidth.

Hardware prefetches are droppable: when every LFB is busy they vanish
(unlike RS-queued software prefetches, they have no instruction to
hold).
"""

from __future__ import annotations

from repro.cpu.uncore import AddressSpace
from repro.errors import ConfigError

__all__ = ["StridePrefetcher"]


class StridePrefetcher:
    """A confidence-counting stride detector with a small stream table.

    Tracks up to ``streams`` concurrent access streams (keyed by 4 KiB
    region, like real L1 prefetchers).  After ``threshold`` repeats of
    the same line stride within a region, it prefetches ``degree``
    lines ahead of the demand stream.
    """

    REGION_BYTES = 4096

    def __init__(
        self,
        memsys,
        degree: int = 2,
        threshold: int = 2,
        streams: int = 8,
    ) -> None:
        if degree < 1 or threshold < 1 or streams < 1:
            raise ConfigError("prefetcher parameters must be positive")
        self.memsys = memsys
        self.degree = degree
        self.threshold = threshold
        self.streams = streams
        #: region -> (last_line, last_stride, confidence); insertion
        #: order doubles as LRU for stream-table replacement.
        self._table: dict[int, tuple[int, int, int]] = {}
        self.observed = 0
        self.issued = 0
        self.dropped = 0
        self.useful = 0
        #: Lines brought in by this prefetcher, to attribute usefulness.
        self._inflight_lines: set[int] = set()
        #: Space of the most recent training miss (streams stay within
        #: one backing store).
        self._last_space = AddressSpace.DEVICE

    def observe_miss(self, line_addr: int, space: AddressSpace) -> None:
        """Train on a demand miss and possibly prefetch ahead."""
        self.observed += 1
        self._last_space = space
        region = line_addr // self.REGION_BYTES
        last = self._table.pop(region, None)
        if last is None:
            self._table[region] = (line_addr, 0, 0)
            self._evict_streams()
            return
        last_line, last_stride, confidence = last
        stride = line_addr - last_line
        if stride != 0 and stride == last_stride:
            confidence += 1
        else:
            confidence = 0
        self._table[region] = (line_addr, stride, confidence)
        self._evict_streams()
        if confidence >= self.threshold and stride != 0:
            for ahead in range(1, self.degree + 1):
                target = line_addr + ahead * stride
                # Like real L1 prefetchers, never cross the training
                # region (page) boundary -- the physical mapping past
                # it is unknown to the hardware.
                if target // self.REGION_BYTES != region:
                    break
                self._issue(target, space)

    def note_hit(self, line_addr: int) -> None:
        """A demand access hit a line; if we brought it in, count it
        and keep the stream running.

        Without this, a trained stream would stall as soon as its own
        prefetches start hitting (no more misses to train on); real
        prefetchers advance their stream on prefetched-line hits.
        """
        if line_addr not in self._inflight_lines:
            return
        self._inflight_lines.discard(line_addr)
        self.useful += 1
        region = line_addr // self.REGION_BYTES
        entry = self._table.get(region)
        if entry is None:
            return
        _last_line, stride, confidence = entry
        if stride != 0 and confidence >= self.threshold:
            self._table.pop(region)
            self._table[region] = (line_addr, stride, confidence)
            for ahead in range(1, self.degree + 1):
                target = line_addr + ahead * stride
                if target // self.REGION_BYTES != region:
                    break
                self._issue(target, self._last_space)

    def _issue(self, line_addr: int, space: AddressSpace) -> None:
        if line_addr < 0:
            return
        memsys = self.memsys
        if memsys.l1.contains(line_addr) or memsys.lfb.contains(line_addr):
            return
        # Hardware prefetches drop at full LFBs (no RS entry to wait in).
        entry = memsys.lfb.try_allocate(line_addr)
        if entry is None:
            self.dropped += 1
            return
        self.issued += 1
        self._inflight_lines.add(line_addr)
        if len(self._inflight_lines) > 4 * self.streams * self.degree:
            self._inflight_lines.pop()
        memsys.sim.process(
            memsys._fill(entry, line_addr, space), name=f"hwpf-{line_addr:#x}"
        )

    def _evict_streams(self) -> None:
        while len(self._table) > self.streams:
            oldest = next(iter(self._table))
            del self._table[oldest]

    def coverage(self) -> float:
        """Fraction of issued prefetches that a demand access used."""
        return self.useful / self.issued if self.issued else 0.0
