"""Line-fill buffers (Intel's name for L1 miss-status holding registers).

"Once requests are issued with software prefetch instructions, the
outstanding device accesses are managed using a hardware queue called
Line Fill Buffers ... all state-of-the-art Xeon server processors have
at most 10 LFBs per core, severely limiting the number of in-flight
prefetches" (section V-B).  The 10-entry default here is the paper's
headline bottleneck; the queue-sizing ablation enlarges it.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.errors import SimulationError
from repro.sim import Event, Resource, Simulator

__all__ = ["LineFillBuffers", "MissEntry"]


class MissEntry:
    """One outstanding line fill.

    ``data_ready`` fires with the line's byte content when the fill
    completes.  Loads to the same line while the entry is live *merge*:
    they wait on the same event without consuming another buffer.
    """

    __slots__ = ("line_addr", "data_ready", "issued_at", "merged_loads")

    def __init__(self, sim: Simulator, line_addr: int) -> None:
        self.line_addr = line_addr
        self.data_ready = Event(sim)
        self.issued_at = sim.now
        self.merged_loads = 0


class LineFillBuffers:
    """A bounded table of outstanding L1 misses for one core."""

    def __init__(self, sim: Simulator, entries: int, name: str = "lfb") -> None:
        self.sim = sim
        self.name = name
        self._slots = Resource(sim, capacity=entries, name=name)
        self._entries: dict[int, MissEntry] = {}
        self.merges = 0
        self.fills = 0
        self.dropped_prefetches = 0
        #: Optional observability hooks (None keeps hot paths untouched).
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid = 0

    def attach_tracer(self, tracer, pid: int, tid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid = tid

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(f"{prefix}.capacity", lambda: self.capacity)
        registry.register(f"{prefix}.in_flight", lambda: self.in_flight)
        registry.register(f"{prefix}.max_in_flight", lambda: self.max_in_flight)
        registry.register(f"{prefix}.fills", lambda: self.fills)
        registry.register(f"{prefix}.merges", lambda: self.merges)
        registry.register(
            f"{prefix}.dropped_prefetches", lambda: self.dropped_prefetches
        )

    def _trace_occupancy(self) -> None:
        """Counter sample of granted buffers + queued misses (called
        only from tracer-guarded sites)."""
        occupied = self._slots.in_use
        # simlint: disable-next-line=SIM401 -- helper is only reached from
        # call sites that already guard on 'tracer is not None' (zero-cost
        # contract holds at the caller)
        self.tracer.counter(
            "lfb",
            self._trace_pid,
            f"{self.name}.occupancy",
            self.sim.now,
            {"buffers": occupied, "waiting": len(self._entries) - occupied},
        )

    @property
    def capacity(self) -> int:
        return self._slots.capacity

    @property
    def in_flight(self) -> int:
        return len(self._entries)

    @property
    def occupied(self) -> int:
        """Buffers actually granted (``in_flight`` additionally counts
        misses still queued for a buffer); never exceeds capacity."""
        return self._slots.in_use

    @property
    def max_in_flight(self) -> int:
        return self._slots.max_in_use

    def contains(self, line_addr: int) -> bool:
        """True if a fill for ``line_addr`` is already in flight."""
        return line_addr in self._entries

    def lookup(self, line_addr: int) -> Optional[MissEntry]:
        """Find a live entry for ``line_addr`` (merge opportunity)."""
        entry = self._entries.get(line_addr)
        if entry is not None:
            entry.merged_loads += 1
            self.merges += 1
        return entry

    def allocate(self, line_addr: int) -> Generator[Event, object, MissEntry]:
        """Generator: obtain a buffer for a new miss.

        Stalls (blocking the caller, i.e. the core's dispatch) while
        all buffers are occupied -- the mechanism behind the 10-thread
        plateau of Figure 3.
        """
        if line_addr in self._entries:
            raise SimulationError(
                f"{self.name}: duplicate allocation for line {line_addr:#x}; "
                "call lookup() first"
            )
        # Register the entry *before* waiting for a buffer so that a
        # same-line access arriving mid-wait merges instead of racing
        # into a duplicate allocation.
        entry = MissEntry(self.sim, line_addr)
        self._entries[line_addr] = entry
        grant = self._slots.acquire()
        if not grant.fired:
            yield grant
        entry.issued_at = self.sim.now
        if self.tracer is not None:
            self._trace_occupancy()
        return entry

    def allocate_queued(self, line_addr: int) -> tuple[MissEntry, Event]:
        """Queue for a buffer without blocking the caller.

        Models a prefetch waiting in the reservation station: the miss
        entry is visible immediately (same-line loads merge into it),
        and the returned event fires when a buffer is granted and the
        fill can start.  The caller must start the fill on that event.
        """
        if line_addr in self._entries:
            raise SimulationError(
                f"{self.name}: duplicate allocation for line {line_addr:#x}; "
                "call lookup() first"
            )
        entry = MissEntry(self.sim, line_addr)
        self._entries[line_addr] = entry
        grant = self._slots.acquire()

        def stamp(_event) -> None:
            entry.issued_at = self.sim.now
            if self.tracer is not None:
                self._trace_occupancy()

        grant.add_callback(stamp)
        return entry, grant

    def try_allocate(self, line_addr: int) -> Optional[MissEntry]:
        """Obtain a buffer only if one is free right now.

        This is the semantics of a software prefetch: "processors may
        drop the prefetch when all line-fill buffers are busy" -- the
        instruction never waits for a buffer.  Returns None (and counts
        a drop) when the LFB is full.
        """
        if line_addr in self._entries:
            raise SimulationError(
                f"{self.name}: duplicate allocation for line {line_addr:#x}; "
                "call lookup() first"
            )
        if not self._slots.try_acquire():
            self.dropped_prefetches += 1
            return None
        entry = MissEntry(self.sim, line_addr)
        self._entries[line_addr] = entry
        if self.tracer is not None:
            self._trace_occupancy()
        return entry

    def complete(self, entry: MissEntry, data: bytes) -> None:
        """Fill finished: wake every merged waiter, free the buffer."""
        live = self._entries.pop(entry.line_addr, None)
        if live is not entry:
            raise SimulationError(
                f"{self.name}: completion for unknown entry {entry.line_addr:#x}"
            )
        self.fills += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.complete(
                "lfb",
                self._trace_pid,
                self._trace_tid,
                "lfb-fill",
                entry.issued_at,
                self.sim.now,
                args={"merged": entry.merged_loads},
            )
        entry.data_ready.succeed(data)
        self._slots.release()
        if tracer is not None:
            self._trace_occupancy()

    def fill_latency_so_far(self, entry: MissEntry) -> int:
        """Ticks since the miss was issued (stats helper)."""
        return self.sim.now - entry.issued_at
