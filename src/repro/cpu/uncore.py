"""The shared on-chip fabric between cores and the outside world.

The paper's multicore prefetch experiment (Figure 5) uncovered "another
hardware queue which is shared among the cores" on the path to the
PCIe controller, with a measured maximum occupancy of 14; the DRAM
path sustains at least 48 simultaneous accesses (section V-B).  The
uncore therefore keeps one occupancy-limited queue *per path*, shared
by all cores, plus a fixed per-traversal hop latency.
"""

from __future__ import annotations

import enum
from typing import Protocol

from repro.config import UncoreConfig
from repro.errors import ConfigError
from repro.sim import Event, Resource, Simulator
from repro.units import ns

__all__ = ["AddressSpace", "MemoryTarget", "Uncore"]


class AddressSpace(enum.Enum):
    """Which physical path an address routes to."""

    #: Host DRAM (the baseline store, SWQ rings, response buffers).
    DRAM = "dram"
    #: The device BAR, reached over PCIe (MMIO loads and prefetches).
    DEVICE = "device"


class MemoryTarget(Protocol):
    """Anything that can serve a line read at the chip's edge."""

    def read_line(self, line_addr: int) -> Event:
        """Start a line read; the event fires with the line ``bytes``."""
        ...  # pragma: no cover - protocol


class Uncore:
    """Shared chip-level queues and routing to memory targets."""

    def __init__(
        self,
        sim: Simulator,
        config: UncoreConfig,
        device_queue_entries: int | None = None,
    ) -> None:
        """``device_queue_entries`` overrides the DEVICE path's shared
        queue depth -- a memory-bus-attached device rides the deeper
        DRAM-style queue instead of the 14-entry PCIe one."""
        self.sim = sim
        self.config = config
        self.hop_ticks = ns(config.hop_ns)
        if device_queue_entries is None:
            device_queue_entries = config.pcie_queue_entries
        self._queues = {
            AddressSpace.DRAM: Resource(
                sim, config.dram_queue_entries, name="uncore-dram-q"
            ),
            AddressSpace.DEVICE: Resource(
                sim, device_queue_entries, name="uncore-device-q"
            ),
        }
        self._targets: dict[AddressSpace, MemoryTarget] = {}
        #: Optional observability hooks (None keeps hot paths untouched).
        self.tracer = None
        self._trace_pid = 0

    def attach_tracer(self, tracer, pid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid

    def register_metrics(self, registry, prefix: str) -> None:
        for space, queue in self._queues.items():
            base = f"{prefix}.{space.value}_queue"
            registry.register(f"{base}.capacity", lambda q=queue: q.capacity)
            registry.register(f"{base}.max_in_use", lambda q=queue: q.max_in_use)
            registry.register(
                f"{base}.total_acquires", lambda q=queue: q.total_acquires
            )
            registry.register(
                f"{base}.mean_occupancy", lambda q=queue: q.average_occupancy()
            )

    def trace_queue(self, space: AddressSpace) -> None:
        """Counter sample of a path queue's occupancy (callers must
        guard on ``uncore.tracer is not None``)."""
        queue = self._queues[space]
        # simlint: disable-next-line=SIM401 -- helper is only reached from
        # call sites that already guard on 'uncore.tracer is not None'
        self.tracer.counter(
            "queues",
            self._trace_pid,
            f"uncore.{space.value}-q",
            self.sim.now,
            {"in_use": queue.in_use, "waiting": queue.queued},
        )

    def attach_target(self, space: AddressSpace, target: MemoryTarget) -> None:
        if space in self._targets:
            raise ConfigError(f"target for {space.value} already attached")
        self._targets[space] = target

    def queue(self, space: AddressSpace) -> Resource:
        """The shared occupancy-limited queue for ``space``'s path."""
        return self._queues[space]

    def target(self, space: AddressSpace) -> MemoryTarget:
        try:
            return self._targets[space]
        except KeyError:
            raise ConfigError(f"no memory target attached for {space.value}")

    def max_occupancy(self, space: AddressSpace) -> int:
        """Peak simultaneous in-flight accesses seen on a path --
        the statistic the paper measured to find the 14-entry limit."""
        return self._queues[space].max_in_use
