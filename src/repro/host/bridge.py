"""The host-side root complex: PCIe <-> cores <-> host DRAM.

Responsibilities:

* turn a core's MMIO line load into a downstream read TLP and match
  the returning completion to the waiting miss (the hardware-managed
  queue pair of section III);
* serve device-initiated DMA (descriptor reads, response-data and
  completion-queue writes) against the host DRAM channel;
* forward posted MMIO writes (doorbells) to the device.
"""

from __future__ import annotations

from repro.cpu.uncore import MemoryTarget
from repro.device.fetcher import DmaReadRequest, DmaWriteRequest
from repro.errors import ProtocolError
from repro.host.addressmap import AddressMap
from repro.interconnect.dram import DramChannel
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.sim import Event, Simulator

__all__ = ["DramTarget", "DramWriteSink", "HostBridge", "MmioTarget", "PcieWriteSink"]


class HostBridge:
    """Root complex + memory controller front end."""

    def __init__(
        self,
        sim: Simulator,
        link: PcieLink,
        dram: DramChannel,
        address_map: AddressMap,
    ) -> None:
        self.sim = sim
        self.link = link
        self.dram = dram
        self.map = address_map
        self._pending_reads: dict[int, Event] = {}
        self.mmio_reads = 0
        self.dma_reads = 0
        self.dma_writes = 0
        link.upstream.set_receiver(self.on_tlp)

    # -- core-initiated traffic ---------------------------------------------------

    def mmio_read_line(self, line_addr: int) -> Event:
        """Issue a cacheable MMIO read of a device line; the returned
        event fires with the line bytes when the completion arrives."""
        self.map.bar_offset(line_addr)  # validates the address
        done = Event(self.sim)
        tlp = Tlp(
            TlpKind.MEM_READ,
            address=line_addr,
            payload_bytes=0,
            requester="host",
        )
        self._pending_reads[tlp.tag] = done
        self.link.downstream.send(tlp)
        self.mmio_reads += 1
        return done

    def post_mmio_write(self, addr: int, num_bytes: int) -> None:
        """Forward a posted, uncached MMIO write (doorbell)."""
        self.link.downstream.send(
            Tlp(
                TlpKind.MEM_WRITE,
                address=addr,
                payload_bytes=num_bytes,
                requester="host",
            )
        )

    # -- device-initiated traffic ---------------------------------------------------

    def on_tlp(self, tlp: Tlp) -> None:
        if tlp.kind is TlpKind.COMPLETION:
            # Only the host's own MMIO reads produce upstream
            # completions (descriptor-read completions go downstream).
            self._complete_mmio_read(tlp)
        elif tlp.kind is TlpKind.MEM_READ:
            self.dma_reads += 1
            self.sim.process(self._serve_dma_read(tlp), name="dma-read")
        elif tlp.kind is TlpKind.MEM_WRITE:
            self.dma_writes += 1
            self.sim.process(self._serve_dma_write(tlp), name="dma-write")
        else:
            raise ProtocolError(f"host bridge got unexpected TLP {tlp!r}")

    def _complete_mmio_read(self, tlp: Tlp) -> None:
        pending = self._pending_reads.pop(tlp.tag, None)
        if pending is None:
            raise ProtocolError(f"completion for unknown read tag {tlp.tag}")
        pending.succeed(tlp.data)

    def _serve_dma_read(self, tlp: Tlp):
        context = tlp.context
        if not isinstance(context, DmaReadRequest):
            raise ProtocolError("DMA read TLP lacks a DmaReadRequest context")
        yield self.dram.access(max(1, context.reply_bytes))
        data = context.read_fn()
        self.link.downstream.send(
            Tlp(
                TlpKind.COMPLETION,
                address=tlp.address,
                payload_bytes=context.reply_bytes,
                tag=tlp.tag,
                requester=tlp.requester,
                data=data,
            )
        )

    def _serve_dma_write(self, tlp: Tlp):
        context = tlp.context
        if context is not None and not isinstance(context, DmaWriteRequest):
            raise ProtocolError("DMA write TLP has a non-DmaWriteRequest context")
        yield self.dram.access(max(1, tlp.payload_bytes))
        if context is not None and context.on_commit is not None:
            context.on_commit()


class PcieWriteSink:
    """Store-buffer sink for device writes: posted MemWr TLPs.

    The event returned fires immediately (the link's transmit queue
    provides the buffering); wire serialization and header overhead are
    charged by the link model.
    """

    def __init__(self, sim: Simulator, link: PcieLink) -> None:
        self.sim = sim
        self.link = link
        self.writes = 0

    def write_line(self, store) -> Event:
        self.writes += 1
        self.link.downstream.send(
            Tlp(
                TlpKind.MEM_WRITE,
                address=store.addr,
                payload_bytes=store.num_bytes,
                requester="host-store",
            )
        )
        done = Event(self.sim)
        done.succeed(None)
        return done


class DramWriteSink:
    """Store-buffer sink for host-DRAM writes (posted)."""

    def __init__(self, dram: DramChannel) -> None:
        self.dram = dram
        self.writes = 0

    def write_line(self, store) -> Event:
        self.writes += 1
        return self.dram.post_write(store.num_bytes)


class MmioTarget(MemoryTarget):
    """Adapter: the uncore's DEVICE-path target, backed by the bridge."""

    def __init__(self, bridge: HostBridge) -> None:
        self.bridge = bridge

    def read_line(self, line_addr: int) -> Event:
        return self.bridge.mmio_read_line(line_addr)


class DramTarget(MemoryTarget):
    """Adapter: the uncore's DRAM-path target.

    Shares the host DRAM channel with device DMA traffic, so heavy
    descriptor/response traffic and baseline loads contend, as on the
    real machine.
    """

    def __init__(self, dram: DramChannel, world, line_bytes: int = 64) -> None:
        self.dram = dram
        self.world = world
        self.line_bytes = line_bytes

    def read_line(self, line_addr: int) -> Event:
        data = self.world.read_line(line_addr)
        return self.dram.access(self.line_bytes, value=data)
