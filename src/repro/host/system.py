"""Assembly of the complete simulated platform.

A :class:`System` builds, from one :class:`~repro.config.SystemConfig`:
the simulator, the functional memory ("world"), cores with their
private cache/LFB stacks, the shared uncore, the PCIe link, the host
bridge, the device emulator matching the access mechanism, and one
runtime (scheduler) per core.  It also owns data placement (device
partitions vs host DRAM) and the measurement windows used to compute
work IPC.

Latency budgeting: the paper configures the *end-to-end* device
latency (the FPGA delay "accounts for the PCIe round-trip latency");
we do the same by subtracting the modeled uncontended path latency
from ``DeviceConfig.total_latency_us`` to obtain the delay module's
internal hold time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, Optional

from repro.config import (
    AccessMechanism,
    BackingStore,
    SystemConfig,
)
from repro.cpu.core import OutOfOrderCore
from repro.cpu.memsys import CoreMemorySystem
from repro.cpu.uncore import AddressSpace, Uncore
from repro.config import DeviceAttachment
from repro.device.emulator import MmioEmulator, SwqEmulator
from repro.device.membus import MemoryBusDevice
from repro.errors import ConfigError, SimulationError
from repro.host.addressmap import AddressMap
from repro.cpu.storebuffer import StoreBuffer
from repro.host.bridge import (
    DramTarget,
    DramWriteSink,
    HostBridge,
    MmioTarget,
    PcieWriteSink,
)
from repro.host.driver import PlatformConfig
from repro.interconnect.dram import DramChannel
from repro.interconnect.pcie import PcieLink
from repro.memory import FlatMemory
from repro.runtime.api import (
    AccessContext,
    KernelQueueContext,
    OnDemandContext,
    PrefetchContext,
    SoftwareQueueContext,
)
from repro.runtime.driver import CoreRuntime, SchedulerCosts
from repro.runtime.queuepair import QueuePair
from repro.runtime.uthread import UserThread
from repro.sim import Resource, Simulator, all_of, any_of
from repro.sim.trace import ProbeSet
from repro.units import ns, to_ns, transfer_ticks, us

__all__ = ["System", "WindowStats"]

#: Host-DRAM address where workload data is placed for the baseline.
_DRAM_DATA_BASE = 1 << 30
#: Host-DRAM region of the per-core descriptor rings.
_RING_BASE = 1 << 20
_RING_STRIDE = 4096
#: Host-DRAM region of per-thread response buffers.
_RESPONSE_BASE = 1 << 24
#: Maximum batched reads per dev_access_multi call (response slots).
MAX_BATCH = 8

ThreadFactory = Callable[[AccessContext], Generator]


@dataclass(frozen=True)
class WindowStats:
    """Measurements over one steady-state window."""

    ticks: int
    work_instructions: int
    cycles: float
    work_ipc: float
    accesses: int


class System:
    """One fully-wired simulated platform."""

    def __init__(
        self,
        config: SystemConfig,
        platform: Optional[PlatformConfig] = None,
        tracer=None,
    ) -> None:
        """``tracer`` (a :class:`repro.obs.Tracer`, or anything with
        its recording interface) turns on structured tracing: the
        builder attaches it to every instrumented component.  ``None``
        (the default) leaves every hook a no-op."""
        self.config = config
        self.platform = platform if platform is not None else PlatformConfig()
        self.platform.validate(config.mechanism, config.cores)
        self.sim = Simulator()
        line_bytes = config.cache.line_bytes
        self.world = FlatMemory(line_bytes=line_bytes)
        #: Logical cores: physical cores x SMT contexts.  Each logical
        #: core gets its own partition, runtime, and (for queue
        #: mechanisms) queue pair; SMT siblings share the L1/LFB stack
        #: and the front end.
        self.logical_cores = config.cores * config.cpu.smt_contexts
        self.map = AddressMap(
            cores=self.logical_cores,
            bar_bytes=config.device.bar_bytes,
            line_bytes=line_bytes,
        )
        self.probes = ProbeSet()
        self.work_counter = self.probes.counter("work")
        #: Thread-visible access latency across every context (issue to
        #: data-ready): min/mean/p50/p99/max of the killer microsecond.
        self.access_latency = self.probes.latency("access-latency")
        #: Request-scoped attribution ledger (:class:`repro.obs.spans.
        #: SpanLedger`); ``None`` unless a span-enabled service run
        #: attaches one.  Every hook is guarded, matching the tracer's
        #: zero-cost-when-off discipline.
        self.spans = None

        # -- shared fabric ---------------------------------------------------
        membus_attached = config.device.attachment is DeviceAttachment.MEMORY_BUS
        if membus_attached and config.mechanism in (
            AccessMechanism.SOFTWARE_QUEUE,
            AccessMechanism.KERNEL_QUEUE,
        ):
            raise ConfigError(
                "software-managed queues presume a PCIe-style doorbell/DMA "
                "device; memory-bus attachment supports the memory-mapped "
                "mechanisms (on-demand, prefetch)"
            )
        self.uncore = Uncore(
            self.sim,
            config.uncore,
            device_queue_entries=(
                config.uncore.dram_queue_entries if membus_attached else None
            ),
        )
        self.link = PcieLink(self.sim, config.pcie)
        self.dram = DramChannel(
            self.sim,
            latency_ticks=self._dram_internal_latency(),
            bandwidth_bytes_per_s=config.host_dram.bandwidth_bytes_per_s,
            name="host-dram",
        )
        self.bridge = HostBridge(self.sim, self.link, self.dram, self.map)
        self.uncore.attach_target(
            AddressSpace.DRAM, DramTarget(self.dram, self.world, line_bytes)
        )
        self.uncore.attach_target(AddressSpace.DEVICE, MmioTarget(self.bridge))

        # -- device ------------------------------------------------------------
        self.queue_pairs: list[QueuePair] = []
        internal_delay = self._device_internal_delay()
        if membus_attached:
            device = MemoryBusDevice(
                self.sim,
                config.device,
                config.host_dram,
                self.world,
                internal_delay_ticks=internal_delay,
            )
            self.device: MmioEmulator | SwqEmulator | MemoryBusDevice = device
            # Replace the DEVICE-path target: reads go straight to the
            # channel instead of through the PCIe bridge.
            self.uncore._targets[AddressSpace.DEVICE] = device
        elif config.mechanism in (
            AccessMechanism.SOFTWARE_QUEUE,
            AccessMechanism.KERNEL_QUEUE,
        ):
            self.queue_pairs = [
                QueuePair(core, config.swq.ring_entries)
                for core in range(self.logical_cores)
            ]
            self.device = SwqEmulator(
                self.sim,
                config.device,
                config.onboard_dram,
                config.swq,
                self.link,
                self.map,
                self.world,
                self.queue_pairs,
                ring_addrs=[
                    self.ring_addr(core) for core in range(self.logical_cores)
                ],
                internal_delay_ticks=internal_delay,
            )
        else:
            self.device = MmioEmulator(
                self.sim,
                config.device,
                config.onboard_dram,
                self.link,
                self.map,
                self.world,
                internal_delay_ticks=internal_delay,
            )

        # -- cores and runtimes ----------------------------------------------------
        # SMT: each physical core's contexts share an L1/LFB stack and
        # a front end, and statically partition the ROB (as Haswell
        # does with hyperthreading enabled).
        self.cores: list[OutOfOrderCore] = []
        self.runtimes: list[CoreRuntime] = []
        costs = self._scheduler_costs()
        smt = config.cpu.smt_contexts
        for physical in range(config.cores):
            memsys = CoreMemorySystem(
                self.sim,
                physical,
                config.cache,
                config.cpu.lfb_entries,
                self.uncore,
                config.cpu.frequency,
                drop_prefetch_when_full=config.cpu.prefetch_drop_when_full,
            )
            if self.platform.hardware_prefetcher:
                from repro.cpu.hwprefetch import StridePrefetcher

                memsys.hw_prefetcher = StridePrefetcher(memsys)
            store_buffer = StoreBuffer(
                self.sim,
                config.cpu.store_buffer_entries,
                self.uncore,
                name=f"stb{physical}",
            )
            store_buffer.attach_sink(
                AddressSpace.DRAM, DramWriteSink(self.dram)
            )
            if membus_attached:
                store_buffer.attach_sink(AddressSpace.DEVICE, device)
            else:
                store_buffer.attach_sink(
                    AddressSpace.DEVICE, PcieWriteSink(self.sim, self.link)
                )
            memsys.store_buffer = store_buffer
            front_end = (
                Resource(self.sim, 1, name=f"fe{physical}") if smt > 1 else None
            )
            for context in range(smt):
                core_id = physical * smt + context
                core = OutOfOrderCore(
                    self.sim,
                    core_id,
                    config.cpu,
                    memsys,
                    self.work_counter,
                    rob_entries=config.cpu.rob_entries // smt,
                    front_end=front_end,
                )
                core.set_mmio_sink(self.bridge.post_mmio_write)
                self.cores.append(core)
                queue_pair = (
                    self.queue_pairs[core_id] if self.queue_pairs else None
                )
                self.runtimes.append(
                    CoreRuntime(self.sim, core, costs, queue_pair=queue_pair)
                )

        # -- allocators ---------------------------------------------------------------
        self._device_bumps = [
            self.map.partition_base(core) for core in range(self.logical_cores)
        ]
        self._dram_bump = _DRAM_DATA_BASE
        self._response_bump = _RESPONSE_BASE
        self._started = False

        self.tracer = tracer
        if tracer is not None:
            self._attach_tracer(tracer)

    # -- observability -----------------------------------------------------------

    def _attach_tracer(self, tracer) -> None:
        """Wire ``tracer`` into every instrumented component, assigning
        the pid/tid layout of the rendered timeline (one Perfetto
        process group per hardware layer)."""
        from repro.obs import (
            PID_CORES,
            PID_DEVICE,
            PID_KERNEL,
            PID_PCIE,
            PID_UNCORE,
        )
        from repro.units import US

        tracer.process_name(PID_CORES, "cores")
        tracer.process_name(PID_UNCORE, "uncore")
        tracer.process_name(PID_PCIE, "pcie")
        tracer.process_name(PID_DEVICE, "device")
        tracer.process_name(PID_KERNEL, "sim kernel")

        # Scheduler gauges (calendar occupancy, overflow backlog, due
        # batch), sampled at most every quarter microsecond of simulated
        # time; the tracer's track filter drops the samples when the
        # ``kernel`` track is not recorded.
        self.sim.attach_tracer(tracer, PID_KERNEL, interval_ticks=US // 4)

        smt = self.config.cpu.smt_contexts
        # Two tids per logical core (pipeline + scheduler), then one
        # per physical core's shared LFB stack.
        for index, core in enumerate(self.cores):
            rob_tid = 2 * core.core_id + 1
            sched_tid = 2 * core.core_id + 2
            tracer.thread_name(PID_CORES, rob_tid, f"core{core.core_id} rob")
            tracer.thread_name(
                PID_CORES, sched_tid, f"core{core.core_id} sched"
            )
            core.rob.attach_tracer(tracer, PID_CORES, rob_tid)
            self.runtimes[index].attach_tracer(tracer, PID_CORES, sched_tid)
            if index % smt == 0:
                lfb_tid = 2 * self.logical_cores + core.core_id // smt + 1
                tracer.thread_name(
                    PID_CORES, lfb_tid, f"lfb{core.core_id // smt}"
                )
                core.memsys.lfb.attach_tracer(tracer, PID_CORES, lfb_tid)

        self.uncore.attach_tracer(tracer, PID_UNCORE)

        for tid, (direction, role) in enumerate(
            (
                (self.link.downstream, "wire"),
                (self.link.downstream, "prop"),
                (self.link.upstream, "wire"),
                (self.link.upstream, "prop"),
            ),
            start=1,
        ):
            tracer.thread_name(PID_PCIE, tid, f"{direction.name} {role}")
        self.link.downstream.attach_tracer(tracer, PID_PCIE, 1, 2)
        self.link.upstream.attach_tracer(tracer, PID_PCIE, 3, 4)

        delay = getattr(self.device, "delay", None)
        if delay is not None and hasattr(delay, "attach_tracer"):
            tracer.thread_name(PID_DEVICE, 1, "delay")
            delay.attach_tracer(tracer, PID_DEVICE, 1)
        for offset, fetcher in enumerate(getattr(self.device, "fetchers", ())):
            tid = 2 + offset
            tracer.thread_name(PID_DEVICE, tid, fetcher.name)
            fetcher.attach_tracer(tracer, PID_DEVICE, tid)

    def register_metrics(self, registry) -> None:
        """Register every component's probes under the hierarchical
        naming scheme (``core0.lfb.in_flight``, ``pcie.upstream.util``,
        ...)."""
        registry.register("work", self.work_counter)
        registry.register("access_latency", self.access_latency)
        smt = self.config.cpu.smt_contexts
        for index, core in enumerate(self.cores):
            prefix = f"core{core.core_id}"
            core.register_metrics(registry, prefix)
            if index % smt == 0:
                # SMT siblings share the L1/LFB stack: export it once,
                # under the physical core's first logical context.
                core.memsys.register_metrics(registry, prefix)
        self.uncore.register_metrics(registry, "uncore")
        self.link.register_metrics(registry, "pcie")
        self.dram.register_metrics(registry, "host_dram")
        self.device.register_metrics(registry, "device")
        for runtime in self.runtimes:
            runtime.register_metrics(
                registry, f"runtime{runtime.core.core_id}"
            )
        if self.spans is not None:
            self.spans.register_metrics(registry, "spans")

    def metrics_snapshot(self) -> dict:
        """One JSON-able dump of every registered probe, now."""
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        self.register_metrics(registry)
        return registry.snapshot(self.sim.now)

    # -- latency budgeting -------------------------------------------------------

    def _dram_internal_latency(self) -> int:
        config = self.config
        line = config.cache.line_bytes
        overhead = 2 * self.uncore.hop_ticks + transfer_ticks(
            line, config.host_dram.bandwidth_bytes_per_s
        )
        internal = ns(config.host_dram.latency_ns) - overhead
        if internal < 0:
            raise ConfigError(
                "host DRAM latency is smaller than the modeled uncore path; "
                "raise host_dram.latency_ns or lower uncore.hop_ns"
            )
        return internal

    def _device_internal_delay(self) -> int:
        config = self.config
        if config.device.attachment is DeviceAttachment.MEMORY_BUS:
            # Path: uncore hops + channel serialization (no PCIe).
            path = 2 * self.uncore.hop_ticks + transfer_ticks(
                config.cache.line_bytes, config.host_dram.bandwidth_bytes_per_s
            )
        else:
            path = 2 * self.uncore.hop_ticks + self.link.round_trip_ticks(
                config.cache.line_bytes
            )
        internal = config.device.total_latency_ticks - path
        if internal < 0:
            raise ConfigError(
                f"device latency {config.device.total_latency_us} us is below "
                f"the modeled PCIe path latency (~{path / us(1):.2f} us); the "
                "paper's emulator has the same floor"
            )
        return internal

    def _scheduler_costs(self) -> SchedulerCosts:
        config = self.config
        switch = ns(config.threading.context_switch_ns)
        frequency = config.cpu.frequency
        ipc = config.threading.overhead_ipc

        def serialized(instructions: int) -> int:
            return frequency.cycles(instructions / ipc)

        if config.mechanism is AccessMechanism.SOFTWARE_QUEUE:
            return SchedulerCosts(
                switch_ticks=switch,
                poll_ticks=serialized(config.swq.poll_instructions),
                completion_ticks=serialized(config.swq.completion_instructions),
                wakeup_ticks=serialized(config.swq.wakeup_instructions),
            )
        if config.mechanism is AccessMechanism.KERNEL_QUEUE:
            kq = config.kernel_queue
            return SchedulerCosts(
                switch_ticks=switch,
                poll_ticks=serialized(config.swq.poll_instructions),
                completion_ticks=serialized(config.swq.completion_instructions),
                wakeup_ticks=serialized(config.swq.wakeup_instructions),
                wake_busy_ticks=ns(kq.interrupt_ns + kq.kernel_switch_ns),
            )
        return SchedulerCosts(switch_ticks=switch)

    # -- placement -----------------------------------------------------------------

    def ring_addr(self, core: int) -> int:
        """Host-DRAM address of ``core``'s request ring."""
        return _RING_BASE + core * _RING_STRIDE

    def alloc_device(self, core: int, num_bytes: int) -> int:
        """Carve ``num_bytes`` from ``core``'s device partition."""
        line = self.config.cache.line_bytes
        aligned = (num_bytes + line - 1) // line * line
        base = self._device_bumps[core]
        limit = self.map.partition_base(core) + self.map.partition_bytes
        if base + aligned > limit:
            raise ConfigError(
                f"core {core}'s device partition exhausted "
                f"({self.map.partition_bytes} bytes)"
            )
        self._device_bumps[core] = base + aligned
        return base

    def alloc_dram(self, num_bytes: int) -> int:
        """Carve ``num_bytes`` of host DRAM for workload data."""
        line = self.config.cache.line_bytes
        aligned = (num_bytes + line - 1) // line * line
        base = self._dram_bump
        self._dram_bump = base + aligned
        return base

    def alloc_data(self, core: int, num_bytes: int) -> int:
        """Place workload data where the config says it lives: the
        device (measured runs) or host DRAM (the baseline)."""
        if self.config.backing is BackingStore.DRAM:
            return self.alloc_dram(num_bytes)
        return self.alloc_device(core, num_bytes)

    @property
    def data_space(self) -> AddressSpace:
        return (
            AddressSpace.DRAM
            if self.config.backing is BackingStore.DRAM
            else AddressSpace.DEVICE
        )

    # -- threads --------------------------------------------------------------------

    def make_context(self, core_id: int, thread_id: int) -> AccessContext:
        """Build the mechanism's access context for one thread."""
        config = self.config
        core = self.cores[core_id]
        space = self.data_space
        context: AccessContext
        if (
            config.backing is BackingStore.DRAM
            or config.mechanism is AccessMechanism.ON_DEMAND
        ):
            context = OnDemandContext(
                core, thread_id, space, config.threading, world=self.world
            )
        elif config.mechanism is AccessMechanism.PREFETCH:
            context = PrefetchContext(
                core, thread_id, space, config.threading, world=self.world
            )
        else:
            context = None
        if context is not None:
            context.access_latency = self.access_latency
            return context
        response_base = self._alloc_response_buffer()
        common = dict(
            threading_config=config.threading,
            world=self.world,
            swq_config=config.swq,
            queue_pair=self.queue_pairs[core_id],
            doorbell_addr=self.map.doorbell_addr(core_id),
            response_base=response_base,
            line_bytes=config.cache.line_bytes,
        )
        if config.mechanism is AccessMechanism.SOFTWARE_QUEUE:
            context = SoftwareQueueContext(core, thread_id, space, **common)
        else:
            kq = config.kernel_queue
            context = KernelQueueContext(
                core,
                thread_id,
                space,
                syscall_ticks=ns(kq.syscall_ns),
                kernel_switch_ticks=ns(kq.kernel_switch_ns),
                **common,
            )
        context.access_latency = self.access_latency
        return context

    def _alloc_response_buffer(self) -> int:
        line = self.config.cache.line_bytes
        base = self._response_bump
        self._response_bump += MAX_BATCH * line
        return base

    def spawn(self, core_id: int, factory: ThreadFactory) -> UserThread:
        """Create one user thread on ``core_id`` from ``factory``."""
        runtime = self.runtimes[core_id]
        thread_id = len(runtime.threads)
        context = self.make_context(core_id, thread_id)
        return runtime.add_thread(factory(context))

    def spawn_per_core(self, threads_per_core: int, factory) -> None:
        """Spawn ``factory(context, core_id, slot)`` threads uniformly
        across every logical core."""
        for core_id in range(self.logical_cores):
            for slot in range(threads_per_core):
                runtime = self.runtimes[core_id]
                thread_id = len(runtime.threads)
                context = self.make_context(core_id, thread_id)
                runtime.add_thread(factory(context, core_id, slot))

    # -- running ---------------------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._processes = [runtime.start() for runtime in self.runtimes]

    def run_window(self, warmup_ticks: int, measure_ticks: int) -> WindowStats:
        """Run, then measure work IPC over a steady-state window."""
        self.start()
        self.sim.run(until=self.sim.now + warmup_ticks)
        self.probes.reset_windows()
        if self.spans is not None:
            # Exemplar reservoirs follow the same window discipline as
            # the probes: warmup spans never become exemplars.
            self.spans.reset_window()
        self.probes.set_window_active(True)
        accesses_before = self._total_accesses()
        start = self.sim.now
        self.sim.run(until=start + measure_ticks)
        self.probes.set_window_active(False)
        ticks = self.sim.now - start
        work = self.work_counter.windowed
        cycles = self.config.cpu.frequency.to_cycles(ticks)
        return WindowStats(
            ticks=ticks,
            work_instructions=work,
            cycles=cycles,
            work_ipc=work / cycles if cycles else 0.0,
            accesses=self._total_accesses() - accesses_before,
        )

    def run_to_completion(self, limit_ticks: Optional[int] = None) -> int:
        """Run until every thread has finished; returns elapsed ticks."""
        self.start()
        done = all_of(self.sim, self._processes)
        if limit_ticks is not None:
            deadline = self.sim.timeout(limit_ticks)
            self.sim.run(any_of(self.sim, [done, deadline]))
            if not done.triggered:
                raise SimulationError(
                    f"workload did not finish within {limit_ticks} ticks"
                )
        else:
            self.sim.run(done)
        return self.sim.now

    def _total_accesses(self) -> int:
        if self.config.backing is BackingStore.DRAM:
            return sum(core.memsys.lfb.fills for core in self.cores)
        return self.device.requests_served

    # -- diagnostics -------------------------------------------------------------------

    def report(self) -> dict:
        """Occupancy / bandwidth diagnostics for tests and benches."""
        report = {
            "lfb_max_per_core": [
                core.memsys.lfb.max_in_flight for core in self.cores
            ],
            "uncore_pcie_max": self.uncore.max_occupancy(AddressSpace.DEVICE),
            "uncore_dram_max": self.uncore.max_occupancy(AddressSpace.DRAM),
            "pcie_up_wire_bytes": self.link.upstream.wire_bytes,
            "pcie_up_payload_bytes": self.link.upstream.payload_bytes,
            "pcie_down_wire_bytes": self.link.downstream.wire_bytes,
            "pcie_down_payload_bytes": self.link.downstream.payload_bytes,
            "context_switches": [
                runtime.context_switches for runtime in self.runtimes
            ],
            "device_requests": self.device.requests_served,
            "deadline_misses": self.device.delay.deadline_misses,
            "access_latency_ns": self._latency_report(self.access_latency),
        }
        if self.spans is not None:
            report["attribution"] = self.spans.attribution()
        return report

    @staticmethod
    def _latency_report(stat) -> Optional[dict]:
        """Window-aware latency summary in ns.  Once the measurement
        window has recorded samples, *every* value (count/mean/max as
        well as the percentiles) comes from the window -- the same rule
        as ``LatencyStat.percentile`` and the registry render, which
        previously disagreed with this report's lifetime mean/max."""
        if stat.windowed_count:
            count = stat.windowed_count
            mean = stat.windowed_mean
            maximum = stat.windowed_max
        elif stat.count:
            count = stat.count
            mean = stat.mean
            maximum = stat.maximum
        else:
            return None
        return {
            "count": count,
            "mean": to_ns(mean),
            "p50": to_ns(stat.percentile(50)),
            "p99": to_ns(stat.percentile(99)),
            "p999": to_ns(stat.percentile(99.9)),
            "jitter": to_ns(stat.jitter),
            "max": to_ns(maximum or 0),
        }
