"""Host-side integration: address map, root complex, platform, system."""

from repro.host.addressmap import DEVICE_BASE, AddressMap
from repro.host.bridge import DramTarget, HostBridge, MmioTarget
from repro.host.driver import PlatformConfig
from repro.host.system import System, WindowStats

__all__ = [
    "AddressMap",
    "DEVICE_BASE",
    "DramTarget",
    "HostBridge",
    "MmioTarget",
    "PlatformConfig",
    "System",
    "WindowStats",
]
