"""Host platform / kernel-driver configuration.

Models the experiment-environment knobs the paper sets up on its Xeon
host (section IV): the BAR mapped cacheable via MTRRs (so loads and
prefetches go through the cache hierarchy), hyperthreading disabled,
the hardware prefetcher disabled (it would interfere with software
prefetching), and ``isolcpus`` reserving the measured cores.

These are configuration objects with validation: building a
:class:`~repro.host.system.System` with an inconsistent platform (e.g.
prefetch-based access against an uncacheable BAR) fails loudly instead
of silently modeling a machine that cannot exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import AccessMechanism
from repro.errors import ConfigError

__all__ = ["PlatformConfig"]


@dataclass(frozen=True)
class PlatformConfig:
    """Kernel and BIOS settings of the simulated host."""

    #: MTRRs mark the data BAR cacheable (required for on-demand and
    #: prefetch-based access; irrelevant for software queues).
    bar_cacheable: bool = True
    #: Hyperthreading: the paper's experiments disable it.
    hyperthreading: bool = False
    #: The hardware stride prefetcher: the paper disables it "to avoid
    #: interference with the software prefetch mechanism" (section
    #: IV-A); enabling it alongside software prefetching is permitted
    #: here precisely so that interference can be measured
    #: (benchmarks/test_ablation_hw_prefetcher.py).
    hardware_prefetcher: bool = False
    #: Cores reserved for the experiment via the isolcpus kernel option
    #: (empty means "reserve as many as the system config asks for").
    isolated_cores: tuple[int, ...] = field(default=())

    def validate(self, mechanism: AccessMechanism, cores: int) -> None:
        """Reject configurations the paper's methodology excludes."""
        if mechanism in (AccessMechanism.ON_DEMAND, AccessMechanism.PREFETCH):
            if not self.bar_cacheable:
                raise ConfigError(
                    f"{mechanism.value} access requires the device BAR to be "
                    "mapped cacheable (set MTRRs / bar_cacheable=True)"
                )
        if self.isolated_cores and len(self.isolated_cores) < cores:
            raise ConfigError(
                f"isolcpus reserves {len(self.isolated_cores)} cores but the "
                f"experiment uses {cores}"
            )
        if self.isolated_cores and len(set(self.isolated_cores)) != len(
            self.isolated_cores
        ):
            raise ConfigError("isolcpus list contains duplicates")
