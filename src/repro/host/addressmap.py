"""The simulated physical address map.

Host DRAM occupies low addresses; the device's data BAR is mapped high
(and marked cacheable via MTRRs, as the paper does, so loads and
prefetches travel the cache hierarchy); a small uncached control BAR
above it holds the per-core doorbell registers.

"Because PCIe transactions do not include the originating processor
core's ID, we subdivide the exposed memory region and assign each core
a separate address range" (section IV-A): the data BAR is split into
per-core partitions so the device can steer requests to per-core
replay modules and request fetchers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpu.uncore import AddressSpace
from repro.errors import AddressError, ConfigError

__all__ = ["AddressMap", "DEVICE_BASE"]

#: Host-physical base of the device's data BAR (1 TiB mark).
DEVICE_BASE = 1 << 40


@dataclass(frozen=True)
class AddressMap:
    """Routing and partitioning of the simulated physical space."""

    cores: int
    bar_bytes: int
    line_bytes: int = 64
    dram_bytes: int = DEVICE_BASE

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError("address map needs at least one core")
        if self.bar_bytes < self.cores * self.line_bytes:
            raise ConfigError("BAR too small for one line per core")
        if self.dram_bytes > DEVICE_BASE:
            raise ConfigError("DRAM region would overlap the device BAR")

    # -- regions ---------------------------------------------------------------

    @property
    def partition_bytes(self) -> int:
        """Size of each core's slice of the data BAR (line-aligned)."""
        raw = self.bar_bytes // self.cores
        return raw - (raw % self.line_bytes)

    @property
    def control_base(self) -> int:
        """Base of the uncached control BAR (doorbell registers)."""
        return DEVICE_BASE + self.bar_bytes

    def space_of(self, addr: int) -> AddressSpace:
        """Which path an address routes to."""
        if 0 <= addr < self.dram_bytes:
            return AddressSpace.DRAM
        if DEVICE_BASE <= addr < self.control_base + 8 * self.cores:
            return AddressSpace.DEVICE
        raise AddressError(f"address {addr:#x} is unmapped")

    # -- data BAR --------------------------------------------------------------

    def bar_offset(self, addr: int) -> int:
        """Translate a host-physical address to a device BAR offset."""
        if not DEVICE_BASE <= addr < DEVICE_BASE + self.bar_bytes:
            raise AddressError(f"address {addr:#x} is not in the data BAR")
        return addr - DEVICE_BASE

    def host_addr(self, offset: int) -> int:
        """Translate a device BAR offset to a host-physical address."""
        if not 0 <= offset < self.bar_bytes:
            raise AddressError(f"offset {offset:#x} is outside the BAR")
        return DEVICE_BASE + offset

    def core_of_offset(self, offset: int) -> int:
        """Which core's partition a BAR offset belongs to."""
        if not 0 <= offset < self.bar_bytes:
            raise AddressError(f"offset {offset:#x} is outside the BAR")
        core = offset // self.partition_bytes
        if core >= self.cores:
            # Tail slack from partition alignment belongs to the last core.
            core = self.cores - 1
        return core

    def partition_base(self, core: int) -> int:
        """Host-physical base of ``core``'s data partition."""
        self._check_core(core)
        return DEVICE_BASE + core * self.partition_bytes

    def partition_offset(self, core: int, offset: int) -> int:
        """A partition-relative offset (what per-core replay traces use)."""
        self._check_core(core)
        base = core * self.partition_bytes
        if not base <= offset < base + self.partition_bytes and not (
            core == self.cores - 1 and base <= offset < self.bar_bytes
        ):
            raise AddressError(
                f"offset {offset:#x} is not in core {core}'s partition"
            )
        return offset - base

    # -- control BAR -------------------------------------------------------------

    def doorbell_addr(self, core: int) -> int:
        """Host-physical address of ``core``'s doorbell register."""
        self._check_core(core)
        return self.control_base + 8 * core

    def doorbell_core(self, addr: int) -> int | None:
        """The core whose doorbell ``addr`` is, or None."""
        if self.control_base <= addr < self.control_base + 8 * self.cores:
            offset = addr - self.control_base
            if offset % 8 == 0:
                return offset // 8
        return None

    def _check_core(self, core: int) -> None:
        if not 0 <= core < self.cores:
            raise AddressError(f"no such core: {core}")
