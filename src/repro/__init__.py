"""repro: a reproduction of "Taming the Killer Microsecond" (MICRO 2018).

A cycle-approximate, queue-accurate simulator of microsecond-latency
storage access mechanisms: on-demand memory-mapped loads, software
prefetching with user-level context switching, and application-managed
software queues -- plus the FPGA device emulator, the PCIe link, and
the Xeon-like host the paper measured them on.

Quick start::

    from repro import (
        AccessMechanism, DeviceConfig, MicrobenchSpec, SystemConfig,
        install_microbench, System, us,
    )

    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        threads_per_core=10,
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=200), 10)
    stats = system.run_window(us(30), us(100))
    print(stats.work_ipc)
"""

from repro.config import (
    AccessMechanism,
    BackingStore,
    DeviceAttachment,
    CacheConfig,
    CpuConfig,
    DeviceConfig,
    HostDramConfig,
    KernelQueueConfig,
    OnboardDramConfig,
    PcieConfig,
    SwqConfig,
    SystemConfig,
    ThreadingConfig,
    UncoreConfig,
)
from repro.host.driver import PlatformConfig
from repro.host.system import System, WindowStats
from repro.units import gigahertz, ns, us
from repro.workloads.bfs import BfsParams, install_bfs
from repro.workloads.bloom import BloomParams, install_bloom
from repro.workloads.memcached import MemcachedParams, install_memcached
from repro.workloads.microbench import MicrobenchSpec, install_microbench

__version__ = "1.0.0"

__all__ = [
    "AccessMechanism",
    "BackingStore",
    "BfsParams",
    "BloomParams",
    "CacheConfig",
    "CpuConfig",
    "DeviceAttachment",
    "DeviceConfig",
    "HostDramConfig",
    "KernelQueueConfig",
    "MemcachedParams",
    "MicrobenchSpec",
    "OnboardDramConfig",
    "PcieConfig",
    "PlatformConfig",
    "SwqConfig",
    "System",
    "SystemConfig",
    "ThreadingConfig",
    "UncoreConfig",
    "WindowStats",
    "gigahertz",
    "install_bfs",
    "install_bloom",
    "install_memcached",
    "install_microbench",
    "ns",
    "us",
    "__version__",
]
