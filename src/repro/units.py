"""Time, frequency, and data-size units used throughout the simulator.

The simulation clock is an integer number of **picoseconds**.  Integer
time makes event ordering exact and lets tests assert equalities instead
of tolerances.  All public model parameters are expressed in natural
units (nanoseconds, gigahertz, bytes) and converted at the boundary.
"""

from __future__ import annotations

from dataclasses import dataclass

#: One picosecond, the base tick of the simulation clock.
PS = 1
#: Picoseconds per nanosecond.
NS = 1_000
#: Picoseconds per microsecond.
US = 1_000_000
#: Picoseconds per millisecond.
MS = 1_000_000_000
#: Picoseconds per second.
S = 1_000_000_000_000

#: Bytes per kibibyte / mebibyte / gibibyte.
KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

#: Bytes per (decimal) kilobyte / megabyte / gigabyte.
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

#: Nanoseconds per second (host wall-clock conversions, not ticks).
NS_PER_S = 1_000_000_000


def ps(value: float) -> int:
    """Convert a picosecond quantity to integer simulation ticks."""
    return round(value)


def ns(value: float) -> int:
    """Convert nanoseconds to integer simulation ticks."""
    return round(value * NS)


def us(value: float) -> int:
    """Convert microseconds to integer simulation ticks."""
    return round(value * US)


def ms(value: float) -> int:
    """Convert milliseconds to integer simulation ticks."""
    return round(value * MS)


def seconds(value: float) -> int:
    """Convert seconds to integer simulation ticks."""
    return round(value * S)


def to_ns(ticks: int) -> float:
    """Convert integer simulation ticks back to (float) nanoseconds."""
    return ticks / NS


def to_us(ticks: int) -> float:
    """Convert integer simulation ticks back to (float) microseconds."""
    return ticks / US


def to_seconds(ticks: int) -> float:
    """Convert integer simulation ticks back to (float) seconds."""
    return ticks / S


@dataclass(frozen=True)
class Frequency:
    """A clock frequency with an integer-picosecond period.

    The period is rounded to the nearest picosecond, so e.g. 2.3 GHz is
    represented with a 435 ps period (an effective 2.2989 GHz).  The
    rounding error is far below the fidelity of a cycle-approximate
    model and buys exact integer time arithmetic.
    """

    hertz: float

    def __post_init__(self) -> None:
        if self.hertz <= 0:
            raise ValueError(f"frequency must be positive, got {self.hertz}")

    @property
    def period_ps(self) -> int:
        """Length of one cycle in simulation ticks (>= 1)."""
        return max(1, round(S / self.hertz))

    def cycles(self, n: float) -> int:
        """Duration of ``n`` cycles in simulation ticks.

        ``n`` may be fractional (e.g. instructions / IPC); the result is
        rounded to the nearest tick.
        """
        return round(n * self.period_ps)

    def to_cycles(self, ticks: int) -> float:
        """Convert a tick duration to (float) cycles of this clock."""
        return ticks / self.period_ps


def gigahertz(value: float) -> Frequency:
    """Build a :class:`Frequency` from a value in GHz."""
    return Frequency(value * 1e9)


def bytes_per_second(rate: float) -> float:
    """Convert bytes/second to bytes **per tick** (float).

    Link models multiply by a byte count and round, so keeping the rate
    as a float loses no generality.
    """
    return rate / S


def transfer_ticks(num_bytes: int, rate_bytes_per_s: float) -> int:
    """Serialization delay of ``num_bytes`` at ``rate_bytes_per_s``.

    Always at least one tick for a non-empty transfer so that ordering
    through a link is strict.
    """
    if num_bytes <= 0:
        return 0
    return max(1, round(num_bytes * S / rate_bytes_per_s))
