"""Test doubles and harness shortcuts used by the test suite.

Shipping these in the package (rather than burying them in conftest)
lets downstream users unit-test their own extensions against the same
fakes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from repro.memory import FlatMemory
from repro.sim import Event, Simulator

__all__ = ["FixedLatencyTarget", "enforce_invariants"]


@contextmanager
def enforce_invariants():
    """Force the invariant sanitizer on for every run in the block.

    Inside the context, every :func:`repro.harness.run_microbench` /
    :func:`repro.harness.run_application` call attaches an
    :class:`repro.obs.InvariantMonitor` as if ``check_invariants=True``
    had been passed -- so a test exercising any harness path also
    asserts the model's conservation laws.  Process-local only: sweep
    worker processes must be asked explicitly via
    ``SweepEngine(check_invariants=True)``.
    """
    from repro.obs import invariants

    previous = invariants.forced()
    invariants.set_forced(True)
    try:
        yield
    finally:
        invariants.set_forced(previous)


class FixedLatencyTarget:
    """A :class:`repro.cpu.uncore.MemoryTarget` with a constant service
    time and unlimited parallelism, backed by a functional memory."""

    def __init__(
        self,
        sim: Simulator,
        latency_ticks: int,
        memory: Optional[FlatMemory] = None,
        line_bytes: int = 64,
    ) -> None:
        self.sim = sim
        self.latency_ticks = latency_ticks
        self.memory = memory if memory is not None else FlatMemory(line_bytes)
        self.reads = 0
        self.in_flight = 0
        self.max_in_flight = 0

    def read_line(self, line_addr: int) -> Event:
        self.reads += 1
        self.in_flight += 1
        self.max_in_flight = max(self.max_in_flight, self.in_flight)
        event = Event(self.sim)
        data = self.memory.read_line(line_addr)
        event.add_callback(lambda _ev: self._finish())
        self.sim._schedule_value(event, self.latency_ticks, data)
        return event

    def _finish(self) -> None:
        self.in_flight -= 1
