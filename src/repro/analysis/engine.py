"""The simlint engine: file walking, parsing, checker orchestration.

The engine owns everything that is not contract knowledge: discovering
files, parsing them once, annotating the AST with parent links, running
every registered checker, applying pragmas, folding in the baseline,
and keeping the whole pipeline deterministic (files and findings are
always processed and reported in sorted order).
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.analysis.codes import CODES
from repro.analysis.pragmas import PragmaSet, parse_pragmas

__all__ = [
    "Finding",
    "ModuleInfo",
    "AnalysisResult",
    "analyze_paths",
    "analyze_source",
]


@dataclass(frozen=True)
class Finding:
    """One diagnostic, pinned to a source location."""

    code: str
    message: str
    path: str  # as reported (cwd-relative when possible)
    line: int
    col: int
    snippet: str  # the stripped source line
    #: Machine-stable path used for fingerprints (starts at the package
    #: root when the file is inside a ``repro`` package).
    fingerprint_path: str
    #: Disambiguates identical (code, path, snippet) findings.
    occurrence: int = 0

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity for baselines: a finding
        keeps its fingerprint when unrelated lines shift."""
        payload = (
            f"{self.code}|{self.fingerprint_path}|{self.snippet}"
            f"|{self.occurrence}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    @property
    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def describe(self) -> str:
        title = CODES[self.code].title if self.code in CODES else ""
        return (
            f"{self.path}:{self.line}:{self.col}: {self.code} "
            f"[{title}] {self.message}"
        )


@dataclass
class ModuleInfo:
    """One parsed source file, as handed to every checker."""

    path: Path
    report_path: str
    fingerprint_path: str
    module: str  # dotted module name, e.g. "repro.cpu.lfb"
    source: str
    lines: List[str]
    tree: ast.Module
    pragmas: PragmaSet

    def finding(
        self, code: str, node_or_line, message: str, col: Optional[int] = None
    ) -> Finding:
        """Build a finding at an AST node (or a bare line number)."""
        if isinstance(node_or_line, int):
            line, column = node_or_line, 0
        else:
            line = getattr(node_or_line, "lineno", 1)
            column = getattr(node_or_line, "col_offset", 0)
        if col is not None:
            column = col
        snippet = ""
        if 1 <= line <= len(self.lines):
            snippet = self.lines[line - 1].strip()
        return Finding(
            code=code,
            message=message,
            path=self.report_path,
            line=line,
            col=column,
            snippet=snippet,
            fingerprint_path=self.fingerprint_path,
        )


@dataclass
class AnalysisResult:
    """Everything one lint run produced."""

    findings: List[Finding]  # new (non-baselined, non-suppressed)
    baselined: List[Finding]
    stale_baseline: List[str]  # fingerprints no longer present
    files_scanned: int
    #: Every raw finding before suppression/baseline (for --update-baseline).
    all_findings: List[Finding] = field(default_factory=list)

    @property
    def counts_by_code(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))


def _link_parents(tree: ast.Module) -> None:
    """Annotate every node with ``_simlint_parent`` (checkers climb
    these for guard/scope analysis)."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._simlint_parent = node  # type: ignore[attr-defined]


def _module_name(path: Path) -> str:
    """Dotted module name; files outside a ``repro`` package fall back
    to their stem (fixtures, ad-hoc scripts)."""
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if "repro" in parts:
        parts = parts[len(parts) - 1 - parts[::-1].index("repro"):]
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)
    return path.stem


def _fingerprint_path(path: Path) -> str:
    parts = list(path.parts)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return path.name


def _report_path(path: Path) -> str:
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return str(path)


def _collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        else:
            files.append(path)
    unique = {file.resolve().as_posix(): file for file in files}
    return [unique[key] for key in sorted(unique)]


def _load_module(path: Path) -> Union[ModuleInfo, Finding]:
    report_path = _report_path(path)
    fingerprint_path = _fingerprint_path(path)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as error:
        return Finding(
            code="SIM003",
            message=f"cannot read: {error}",
            path=report_path, line=1, col=0, snippet="",
            fingerprint_path=fingerprint_path,
        )
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        line = error.lineno or 1
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return Finding(
            code="SIM003",
            message=f"syntax error: {error.msg}",
            path=report_path, line=line, col=error.offset or 0,
            snippet=snippet, fingerprint_path=fingerprint_path,
        )
    _link_parents(tree)
    return ModuleInfo(
        path=path,
        report_path=report_path,
        fingerprint_path=fingerprint_path,
        module=_module_name(path),
        source=source,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(source),
    )


def _check_module(module: ModuleInfo, checkers) -> List[Finding]:
    """Raw checker + pragma-hygiene findings for one module, with
    pragma suppression applied (suppression marks pragmas used, so it
    must run before the unused-pragma pass)."""
    raw: List[Finding] = []
    for checker in checkers:
        raw.extend(checker.check(module))
    kept = [
        finding for finding in raw
        if not module.pragmas.suppress(finding.code, finding.line)
    ]
    for pragma in module.pragmas.pragmas:
        if pragma.problem:
            kept.append(
                module.finding(
                    "SIM001", pragma.line, f"pragma {pragma.problem}"
                )
            )
        elif pragma.unused:
            kept.append(
                module.finding(
                    "SIM002",
                    pragma.line,
                    "pragma suppresses nothing (codes "
                    f"{', '.join(pragma.codes)}); remove it",
                )
            )
    return kept


def _number_occurrences(findings: List[Finding]) -> List[Finding]:
    """Assign occurrence indices so identical (code, path, snippet)
    findings get distinct, order-stable fingerprints."""
    findings = sorted(findings, key=lambda finding: finding.sort_key)
    seen: Dict[tuple, int] = {}
    numbered: List[Finding] = []
    for finding in findings:
        key = (finding.code, finding.fingerprint_path, finding.snippet)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        numbered.append(
            finding if occurrence == finding.occurrence else Finding(
                code=finding.code, message=finding.message,
                path=finding.path, line=finding.line, col=finding.col,
                snippet=finding.snippet,
                fingerprint_path=finding.fingerprint_path,
                occurrence=occurrence,
            )
        )
    return numbered


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    *,
    checkers=None,
    baseline: Optional[Dict[str, dict]] = None,
) -> AnalysisResult:
    """Lint every ``.py`` file under ``paths`` (files or directories).

    ``baseline`` maps fingerprints to metadata (see
    :mod:`repro.analysis.baseline`); matching findings are reported
    separately and do not count as new.
    """
    if checkers is None:
        from repro.analysis.checkers import default_checkers

        checkers = default_checkers()
    baseline = baseline or {}
    collected: List[Finding] = []
    files = _collect_files(paths)
    for path in files:
        loaded = _load_module(path)
        if isinstance(loaded, Finding):
            collected.append(loaded)
            continue
        collected.extend(_check_module(loaded, checkers))
    numbered = _number_occurrences(collected)
    fresh = [f for f in numbered if f.fingerprint not in baseline]
    old = [f for f in numbered if f.fingerprint in baseline]
    present = {finding.fingerprint for finding in numbered}
    stale = sorted(fp for fp in baseline if fp not in present)
    return AnalysisResult(
        findings=fresh,
        baselined=old,
        stale_baseline=stale,
        files_scanned=len(files),
        all_findings=numbered,
    )


def analyze_source(
    source: str, *, module: str = "snippet", checkers=None
) -> List[Finding]:
    """Lint a source string (the unit-test entry point)."""
    if checkers is None:
        from repro.analysis.checkers import default_checkers

        checkers = default_checkers()
    lines = source.splitlines()
    try:
        tree = ast.parse(source, filename=f"{module}.py")
    except SyntaxError as error:
        line = error.lineno or 1
        snippet = lines[line - 1].strip() if 0 < line <= len(lines) else ""
        return [
            Finding(
                code="SIM003", message=f"syntax error: {error.msg}",
                path=f"{module}.py", line=line, col=error.offset or 0,
                snippet=snippet, fingerprint_path=f"{module}.py",
            )
        ]
    _link_parents(tree)
    info = ModuleInfo(
        path=Path(f"{module}.py"),
        report_path=f"{module}.py",
        fingerprint_path=f"{module}.py",
        module=module,
        source=source,
        lines=lines,
        tree=tree,
        pragmas=parse_pragmas(source),
    )
    return _number_occurrences(_check_module(info, checkers))


def iter_findings(result: AnalysisResult) -> Iterable[Finding]:
    return iter(result.findings)
