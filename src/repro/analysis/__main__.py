"""``python -m repro.analysis`` -- run simlint standalone."""

from repro.analysis.main import main

if __name__ == "__main__":
    raise SystemExit(main())
