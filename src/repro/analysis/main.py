"""The ``repro lint`` / ``python -m repro.analysis`` entry point.

Exit codes: 0 clean, 1 findings (or, with ``--strict``, stale baseline
entries), 2 configuration errors (unreadable baseline, no files).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    save_baseline,
)
from repro.analysis.engine import analyze_paths
from repro.analysis.reporting import render_json, render_text
from repro.errors import ConfigError

__all__ = ["add_lint_arguments", "run_from_args", "main"]


def _default_target() -> str:
    """With no paths given, lint the installed ``repro`` package."""
    import repro

    return str(Path(repro.__file__).resolve().parent)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Shared flag definitions for ``repro lint`` and ``-m`` use."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is the CI artifact schema)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help="baseline file of accepted findings (default: "
             f"./{DEFAULT_BASELINE_NAME} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="also fail on stale baseline entries (fingerprints whose "
             "finding no longer exists)",
    )


def run_from_args(args: argparse.Namespace, out=None) -> int:
    out = out if out is not None else sys.stdout
    paths = args.paths or [_default_target()]
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(f"simlint: no such path: {', '.join(missing)}",
              file=sys.stderr)
        return 2
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).exists():
        baseline_path = DEFAULT_BASELINE_NAME
    if args.no_baseline:
        baseline_path = None
    try:
        baseline = load_baseline(baseline_path)
    except ConfigError as error:
        print(f"simlint: {error}", file=sys.stderr)
        return 2
    result = analyze_paths(paths, baseline=baseline)
    if result.files_scanned == 0:
        print("simlint: no Python files found", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        save_baseline(target, result.all_findings)
        print(
            f"baseline updated: {len(result.all_findings)} finding(s) "
            f"written to {target}",
            file=out,
        )
        return 0
    if args.format == "json":
        json.dump(render_json(result), out, indent=2, sort_keys=True)
        out.write("\n")
    else:
        render_text(result, out)
    if result.findings:
        return 1
    if args.strict and result.stale_baseline:
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="simlint: static analysis of the simulator's "
                    "determinism, kernel, units, and observability "
                    "contracts",
    )
    add_lint_arguments(parser)
    return run_from_args(parser.parse_args(argv), out)
