"""The committed findings baseline.

A baseline lets the lint gate start at zero *new* findings while the
backlog is burned down.  Each finding is identified by a fingerprint
that is independent of line numbers (code + fingerprint path + the
normalized source line + an occurrence counter), so unrelated edits do
not churn the file.

This tree's policy is an **empty** committed baseline -- every real
finding is fixed or pragma-annotated -- but the mechanism is kept
first-class so a future checker can land before its backlog is cleared.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Union

from repro.errors import ConfigError

__all__ = [
    "BASELINE_FORMAT",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "save_baseline",
]

BASELINE_FORMAT = "simlint-baseline-v1"

#: Discovered in the working directory when ``--baseline`` is not given.
DEFAULT_BASELINE_NAME = "simlint-baseline.json"


def load_baseline(path: Union[str, Path, None]) -> Dict[str, dict]:
    """Fingerprint -> metadata mapping; a missing file is an empty
    baseline, a corrupt one is a :class:`ConfigError` (a silently
    ignored baseline would un-gate CI)."""
    if path is None:
        return {}
    path = Path(path)
    if not path.exists():
        return {}
    try:
        data = json.loads(path.read_text())
    except ValueError as error:
        raise ConfigError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(data, dict) or data.get("format") != BASELINE_FORMAT:
        raise ConfigError(
            f"baseline {path}: expected format {BASELINE_FORMAT!r}, "
            f"got {data.get('format')!r}"
        )
    findings = data.get("findings")
    if not isinstance(findings, dict):
        raise ConfigError(f"baseline {path}: 'findings' must be an object")
    return findings


def save_baseline(path: Union[str, Path], findings: Iterable) -> None:
    """Write the given findings (engine ``Finding`` objects) as the new
    baseline, sorted for stable diffs."""
    payload = {
        "format": BASELINE_FORMAT,
        "findings": {
            finding.fingerprint: {
                "code": finding.code,
                "path": finding.fingerprint_path,
                "summary": finding.message,
            }
            for finding in findings
        },
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
