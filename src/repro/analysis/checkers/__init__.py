"""Checker registry and shared AST utilities.

A checker is a class with a ``codes`` tuple (the diagnostics it can
emit) and a ``check(module) -> Iterable[Finding]`` method.  Checkers
are pure AST consumers: the engine hands them a parsed
:class:`~repro.analysis.engine.ModuleInfo` with parent links already
annotated, and they never import the code under analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

__all__ = [
    "Checker",
    "default_checkers",
    "ancestors",
    "dotted",
    "import_map",
    "canonical",
    "is_generator",
    "scopes",
]


class Checker:
    """Base class; subclasses set ``codes`` and implement ``check``."""

    codes: tuple = ()

    def check(self, module) -> Iterable:  # pragma: no cover - interface
        raise NotImplementedError


def default_checkers() -> List[Checker]:
    """One instance of every registered checker (import-cycle-free:
    checker modules import only this module and the engine types)."""
    from repro.analysis.checkers.determinism import (
        UnorderedIterationChecker,
        UnseededRandomChecker,
        WallClockChecker,
    )
    from repro.analysis.checkers.kernel import (
        AcquireReleaseChecker,
        BlockingCallChecker,
        NegativeDelayChecker,
        PrivateQueueChecker,
    )
    from repro.analysis.checkers.observability import (
        ProbeNameChecker,
        SpanGuardChecker,
        TraceGuardChecker,
    )
    from repro.analysis.checkers.units import (
        MagicUnitLiteralChecker,
        UnitSuffixChecker,
    )

    return [
        WallClockChecker(),
        UnseededRandomChecker(),
        UnorderedIterationChecker(),
        AcquireReleaseChecker(),
        NegativeDelayChecker(),
        BlockingCallChecker(),
        PrivateQueueChecker(),
        MagicUnitLiteralChecker(),
        UnitSuffixChecker(),
        TraceGuardChecker(),
        SpanGuardChecker(),
        ProbeNameChecker(),
    ]


# -- shared AST helpers ----------------------------------------------------


def ancestors(node: ast.AST) -> Iterable[ast.AST]:
    """Walk parent links up to the module (engine-annotated)."""
    current = getattr(node, "_simlint_parent", None)
    while current is not None:
        yield current
        current = getattr(current, "_simlint_parent", None)


def dotted(node: ast.AST) -> Optional[str]:
    """Render a Name/Attribute chain as ``a.b.c`` (None otherwise)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_map(tree: ast.Module) -> Dict[str, str]:
    """Local alias -> canonical dotted prefix, from the module's
    imports (``import numpy as np`` -> ``{"np": "numpy"}``,
    ``from time import perf_counter as pc`` ->
    ``{"pc": "time.perf_counter"}``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                full = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = full
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def canonical(node: ast.AST, aliases: Dict[str, str]) -> Optional[str]:
    """The canonical dotted name a reference resolves to, or None for
    anything that is not rooted in an imported name."""
    path = dotted(node)
    if path is None:
        return None
    head, _, rest = path.partition(".")
    if head not in aliases:
        return None
    base = aliases[head]
    return f"{base}.{rest}" if rest else base


def is_generator(func: ast.AST) -> bool:
    """True for functions containing a yield in their own scope."""
    if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return False
    todo: List[ast.AST] = list(func.body)
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope
        todo.extend(ast.iter_child_nodes(node))
    return False


def scopes(tree: ast.Module) -> Iterable[ast.AST]:
    """The module plus every (possibly nested) function definition."""
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
