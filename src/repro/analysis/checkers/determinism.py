"""SIM1xx: the determinism contract.

The provenance ledger's ``runs diff`` gate (PR 4) asserts that two
identical invocations are bit-for-bit equal.  Everything this module
flags is a way to silently break that: reading the host's clock,
drawing from an unseeded RNG, or iterating an unordered container into
simulation state.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Set

from repro.analysis.checkers import Checker, canonical, import_map

__all__ = [
    "WallClockChecker",
    "UnseededRandomChecker",
    "UnorderedIterationChecker",
]

#: Wall-clock reads that poison determinism when they feed model state.
_WALL_CLOCK = frozenset(
    {
        "time.time", "time.time_ns",
        "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns",
        "time.process_time", "time.process_time_ns",
        "time.localtime", "time.gmtime", "time.strftime",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
    }
)

#: Modules whose *job* is wall-clock measurement (CLI wall-time
#: reporting, sweep worker timeouts/ETA, work-queue lease expiry).
#: Everything else -- including the run ledger and progress renderer --
#: must carry an explicit pragma with a justification.
_WALL_CLOCK_ALLOWED = frozenset(
    {"repro.cli", "repro.harness.sweep", "repro.harness.coordinator"}
)

#: numpy.random entry points that take an explicit seed and are fine
#: when one is passed.
_SEEDABLE = frozenset(
    {
        "numpy.random.RandomState",
        "numpy.random.default_rng",
        "numpy.random.SeedSequence",
        "numpy.random.Generator",
        "random.Random",
    }
)


class WallClockChecker(Checker):
    """SIM101: wall-clock reads outside the whitelisted modules."""

    codes = ("SIM101",)

    def check(self, module) -> Iterable:
        if module.module in _WALL_CLOCK_ALLOWED:
            return
        aliases = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            if isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Load
            ):
                continue
            name = canonical(node, aliases)
            if name in _WALL_CLOCK:
                yield module.finding(
                    "SIM101",
                    node,
                    f"wall-clock read {name}; simulated time is sim.now "
                    "(pragma with a justification if this is "
                    "intentionally host-side)",
                )


class UnseededRandomChecker(Checker):
    """SIM102: global-RNG draws and seedless RNG construction."""

    codes = ("SIM102",)

    def check(self, module) -> Iterable:
        aliases = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = canonical(node.func, aliases)
            if name is None:
                continue
            if name in _SEEDABLE:
                if not node.args and not node.keywords:
                    yield module.finding(
                        "SIM102",
                        node,
                        f"{name}() constructed without a seed; thread "
                        "an explicit seed through the config",
                    )
                continue
            if name.startswith("random.") or name.startswith(
                "numpy.random."
            ):
                yield module.finding(
                    "SIM102",
                    node,
                    f"{name}() draws from the global (unseeded) RNG; "
                    "use a seeded RandomState/Generator instance",
                )


#: Directory/namespace listings with unspecified order.
_UNORDERED_CALLS = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)


def _set_valued(node: ast.AST, set_names: Set[str]) -> bool:
    """Syntactically set-typed: literal, comprehension, set()/
    frozenset() call, a tracked local, or a set-algebra expression
    over one."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _set_valued(node.left, set_names) or _set_valued(
            node.right, set_names
        )
    return False


class UnorderedIterationChecker(Checker):
    """SIM103: iterating a set (or directory listing) directly.

    Scope-local and deliberately conservative: a name counts as a set
    only while *every* assignment to it in the scope is syntactically
    set-valued.  Wrapping the iterable in ``sorted()`` is the fix and
    naturally silences the check (the loop then iterates a list).
    """

    codes = ("SIM103",)

    def check(self, module) -> Iterable:
        aliases = import_map(module.tree)
        from repro.analysis.checkers import scopes

        for scope in scopes(module.tree):
            yield from self._check_scope(module, scope, aliases)

    def _scope_sets(self, scope: ast.AST) -> Set[str]:
        assigned: Dict[str, List[bool]] = {}

        def record(target: ast.AST, is_set: bool) -> None:
            if isinstance(target, ast.Name):
                assigned.setdefault(target.id, []).append(is_set)

        for node in self._scope_nodes(scope):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(target, _set_valued(node.value, set()))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                record(node.target, _set_valued(node.value, set()))
            elif isinstance(node, ast.AugAssign):
                record(node.target, isinstance(node.op, (ast.BitOr, ast.BitAnd)))
        return {
            name for name, flags in assigned.items() if flags and all(flags)
        }

    @staticmethod
    def _scope_nodes(scope: ast.AST) -> Iterable[ast.AST]:
        """Walk a scope without descending into nested functions."""
        body = scope.body if hasattr(scope, "body") else []
        todo: List[ast.AST] = list(body)
        while todo:
            node = todo.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            yield node
            todo.extend(ast.iter_child_nodes(node))

    def _check_scope(self, module, scope, aliases) -> Iterable:
        set_names = self._scope_sets(scope)
        iter_sites: List[ast.AST] = []
        for node in self._scope_nodes(scope):
            if isinstance(node, ast.For):
                iter_sites.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                iter_sites.extend(gen.iter for gen in node.generators)
        for site in iter_sites:
            if _set_valued(site, set_names):
                yield module.finding(
                    "SIM103",
                    site,
                    "iteration over a set has unspecified order; wrap "
                    "in sorted() before it can feed event scheduling",
                )
                continue
            if isinstance(site, ast.Call):
                name = canonical(site.func, aliases)
                if name in _UNORDERED_CALLS:
                    yield module.finding(
                        "SIM103",
                        site,
                        f"{name}() returns entries in unspecified "
                        "order; wrap in sorted()",
                    )
                elif (
                    isinstance(site.func, ast.Attribute)
                    and site.func.attr == "iterdir"
                ):
                    yield module.finding(
                        "SIM103",
                        site,
                        "Path.iterdir() returns entries in unspecified "
                        "order; wrap in sorted()",
                    )
