"""SIM2xx: the kernel resource/time contract.

The discrete-event kernel trusts its callers: a Resource slot leaks
forever if the owning process dies between acquire and release, a
negative delay corrupts the heap's time order, and a host-blocking call
inside a coroutine stalls the entire simulation (every process shares
the driving thread).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.checkers import (
    Checker,
    ancestors,
    canonical,
    dotted,
    import_map,
    is_generator,
)

__all__ = [
    "AcquireReleaseChecker",
    "NegativeDelayChecker",
    "BlockingCallChecker",
    "PrivateQueueChecker",
]


def _receiver(call: ast.Call) -> Optional[str]:
    """Dotted receiver of a method call (``queue.acquire()`` ->
    ``queue``)."""
    if isinstance(call.func, ast.Attribute):
        return dotted(call.func.value)
    return None


def _in_finalbody(node: ast.AST) -> bool:
    """True when ``node`` sits inside the ``finally`` of some try."""
    child = node
    for parent in ancestors(node):
        if isinstance(parent, ast.Try):
            for stmt in parent.finalbody:
                if child is stmt or any(
                    child is sub for sub in ast.walk(stmt)
                ):
                    return True
        child = parent
    return False


class AcquireReleaseChecker(Checker):
    """SIM201: in-function acquire whose release is not in a finally.

    Cross-function hand-off protocols (the LFB acquires in
    ``allocate`` and releases in ``complete``) are out of static
    reach and deliberately not flagged: the check fires only when a
    function contains *both* the ``.acquire()`` and a matching
    ``.release()``, yet no matching release is exception-safe.
    """

    codes = ("SIM201",)

    def check(self, module) -> Iterable:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            yield from self._check_function(module, node)

    def _check_function(self, module, func) -> Iterable:
        acquires: Dict[str, List[ast.Call]] = {}
        releases: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            receiver = _receiver(node)
            if receiver is None:
                continue
            if node.func.attr == "acquire" and not node.args:
                acquires.setdefault(receiver, []).append(node)
            elif node.func.attr == "release":
                releases.setdefault(receiver, []).append(node)
        for receiver, sites in sorted(acquires.items()):
            matching = releases.get(receiver)
            if not matching:
                continue  # released elsewhere: a hand-off protocol
            if any(_in_finalbody(release) for release in matching):
                continue
            for site in sites:
                yield module.finding(
                    "SIM201",
                    site,
                    f"{receiver}.acquire() is released in this function "
                    "but not from a finally block; an exception thrown "
                    "into the process leaks the slot "
                    "(see OutOfOrderCore._dispatch for the pattern)",
                )


#: delay-taking kernel entry points: name -> index of the delay argument.
_DELAY_CALLS = {"timeout": 0, "delayed": 1, "_schedule": 1, "_schedule_value": 1}


def _possibly_negative(node: ast.AST) -> Optional[str]:
    """A reason string when the expression can plausibly be negative."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return "negated expression"
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ):
        if node.value < 0:
            return f"negative literal {node.value}"
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
        return "bare subtraction"
    return None


class NegativeDelayChecker(Checker):
    """SIM202: a delay expression that can schedule into the past."""

    codes = ("SIM202",)

    def check(self, module) -> Iterable:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            index = _DELAY_CALLS.get(node.func.attr)
            if index is None or len(node.args) <= index:
                continue
            delay = node.args[index]
            reason = _possibly_negative(delay)
            if reason is None:
                continue
            yield module.finding(
                "SIM202",
                delay,
                f"{node.func.attr}() delay is a {reason}, which can "
                "schedule into the past; clamp with max(0, ...) or "
                "pragma with the proof it cannot go negative",
            )


#: The sanctioned home of the timed queue: the kernel package itself
#: (the calendar-queue scheduler and the frozen ``_reference`` kernel).
_QUEUE_EXEMPT = "repro.sim"


class PrivateQueueChecker(Checker):
    """SIM210: a private priority queue outside ``repro.sim``.

    The kernel's calendar-queue scheduler is the only sanctioned timed
    queue.  A module-private heap keyed by (deadline, seq) duplicates
    the scheduler's ordering work, re-introduces the per-event
    comparison costs the calendar removed, and -- worse -- creates a
    second ordering authority that can silently disagree with the
    kernel's (tick, schedule-order) contract.  Schedule one timeout per
    item and close over the payload instead
    (``repro.device.delay.DelayModule.submit`` is the pattern).
    """

    codes = ("SIM210",)

    def check(self, module) -> Iterable:
        name = module.module
        if name == _QUEUE_EXEMPT or name.startswith(_QUEUE_EXEMPT + "."):
            return
        aliases = import_map(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "heapq" or alias.name.startswith(
                        "heapq."
                    ):
                        yield module.finding(
                            "SIM210",
                            node,
                            "heapq import outside repro.sim; the kernel "
                            "scheduler is the only sanctioned timed "
                            "queue -- schedule per-item timeouts and "
                            "close over the payload",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "heapq":
                    yield module.finding(
                        "SIM210",
                        node,
                        "heapq import outside repro.sim; the kernel "
                        "scheduler is the only sanctioned timed queue "
                        "-- schedule per-item timeouts and close over "
                        "the payload",
                    )
            elif isinstance(node, ast.Call):
                if canonical(node.func, aliases) == "queue.PriorityQueue":
                    yield module.finding(
                        "SIM210",
                        node,
                        "queue.PriorityQueue outside repro.sim; the "
                        "kernel scheduler is the only sanctioned timed "
                        "queue -- schedule per-item timeouts and close "
                        "over the payload",
                    )


#: Host-blocking entry points that must never run inside a coroutine.
_BLOCKING = frozenset(
    {
        "time.sleep",
        "subprocess.run", "subprocess.call", "subprocess.Popen",
        "subprocess.check_call", "subprocess.check_output",
        "os.system", "os.popen", "os.wait", "os.waitpid",
        "socket.socket", "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get", "requests.post", "requests.request",
    }
)

#: Builtins that block on host I/O.
_BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Packages that host no simulation coroutines: harness orchestration,
#: observability, the CLI, and simlint itself.
_HOST_SIDE_PREFIXES = ("repro.harness", "repro.obs", "repro.analysis")


class BlockingCallChecker(Checker):
    """SIM203: blocking host calls inside simulation generators."""

    codes = ("SIM203",)

    def check(self, module) -> Iterable:
        if (
            module.module == "repro.cli"
            or module.module.startswith(_HOST_SIDE_PREFIXES)
        ):
            return
        aliases = import_map(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not is_generator(node):
                continue
            yield from self._check_coroutine(module, node, aliases)

    def _check_coroutine(self, module, func, aliases) -> Iterable:
        todo: List[ast.AST] = list(func.body)
        while todo:
            node = todo.pop()
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            todo.extend(ast.iter_child_nodes(node))
            if not isinstance(node, ast.Call):
                continue
            name = canonical(node.func, aliases)
            if name is None and isinstance(node.func, ast.Name):
                if node.func.id in _BLOCKING_BUILTINS:
                    name = node.func.id
            if name in _BLOCKING or name in _BLOCKING_BUILTINS:
                yield module.finding(
                    "SIM203",
                    node,
                    f"{name}() blocks the host thread inside a "
                    "simulation coroutine; model waiting with "
                    "sim.timeout()/events instead",
                )
