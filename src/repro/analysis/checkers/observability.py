"""SIM4xx: the observability contracts.

Tracing is zero-cost when disabled only if every emission sits behind a
``tracer is None`` guard (PR 3's golden bit-for-bit test depends on
it), and metric snapshots only diff cleanly if probe names are stable
across runs.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional

from repro.analysis.checkers import Checker, ancestors, dotted

__all__ = ["TraceGuardChecker", "SpanGuardChecker", "ProbeNameChecker"]

#: Tracer emission methods (see repro.obs.tracer.Tracer).
_EMIT_METHODS = frozenset({"complete", "counter", "instant", "async_span"})

#: Span-layer emission methods, by the receiver name they hang off:
#: a request-span cursor is conventionally bound to ``span`` (see
#: repro.runtime.api.AccessContext.span), the ledger to ``spans``.
_SPAN_EMIT = {
    "span": frozenset({"mark"}),
    "spans": frozenset({"open", "close"}),
}


def _tracer_receiver(call: ast.Call) -> Optional[str]:
    """Dotted receiver when this is ``<something>.tracer.<emit>()`` or
    ``tracer.<emit>()``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    if call.func.attr not in _EMIT_METHODS:
        return None
    receiver = dotted(call.func.value)
    if receiver is None:
        return None
    if receiver == "tracer" or receiver.endswith(".tracer"):
        return receiver
    return None


def _test_guards(test: ast.AST, receiver: str) -> Optional[bool]:
    """Does ``test`` establish the receiver is live?

    Returns True when the *body* branch is guarded (``x is not None``,
    truthiness, or an ``and`` chain containing either), False when the
    *else* branch is (``x is None``), None when the test says nothing.
    """
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        for clause in test.values:
            verdict = _test_guards(clause, receiver)
            if verdict is not None:
                return verdict
        return None
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        left = dotted(test.left)
        if left == receiver and isinstance(
            test.comparators[0], ast.Constant
        ) and test.comparators[0].value is None:
            if isinstance(test.ops[0], ast.IsNot):
                return True
            if isinstance(test.ops[0], ast.Is):
                return False
    if dotted(test) == receiver:
        return True
    return None


def _contains(branch: List[ast.stmt], node: ast.AST) -> bool:
    return any(node is sub for stmt in branch for sub in ast.walk(stmt))


def _is_guarded(call: ast.Call, receiver: str) -> bool:
    for parent in ancestors(call):
        if isinstance(call.func, ast.Attribute) and parent is call.func:
            continue
        if isinstance(parent, ast.If):
            verdict = _test_guards(parent.test, receiver)
            if verdict is True and _contains(parent.body, call):
                return True
            if verdict is False and _contains(parent.orelse, call):
                return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return _early_return_guard(parent, call, receiver)
    return False


def _early_return_guard(
    func: ast.AST, call: ast.Call, receiver: str
) -> bool:
    """``if x is None: return`` earlier in the function also guards."""
    for node in ast.walk(func):
        if not isinstance(node, ast.If):
            continue
        if node.lineno >= call.lineno:
            continue
        if _test_guards(node.test, receiver) is not False:
            continue
        if node.body and isinstance(
            node.body[-1], (ast.Return, ast.Raise, ast.Continue)
        ):
            return True
    return False


class TraceGuardChecker(Checker):
    """SIM401: tracer emission without an ``is not None`` guard."""

    codes = ("SIM401",)

    def check(self, module) -> Iterable:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver = _tracer_receiver(node)
            if receiver is None:
                continue
            if _is_guarded(node, receiver):
                continue
            yield module.finding(
                "SIM401",
                node,
                f"{receiver}.{node.func.attr}() is not behind a "
                f"'{receiver} is not None' guard; emission must be "
                "zero-cost when tracing is off",
            )


def _span_receiver(call: ast.Call) -> Optional[str]:
    """Dotted receiver when this is a span-layer emission:
    ``<...>.span.mark()`` / ``span.mark()`` or ``<...>.spans.open()`` /
    ``spans.close()``."""
    if not isinstance(call.func, ast.Attribute):
        return None
    receiver = dotted(call.func.value)
    if receiver is None:
        return None
    tail = receiver.rsplit(".", 1)[-1]
    methods = _SPAN_EMIT.get(tail)
    if methods is None or call.func.attr not in methods:
        return None
    return receiver


class SpanGuardChecker(Checker):
    """SIM404: span emission without an ``is not None`` guard.

    The span layer promises the same zero-cost-when-off discipline as
    the tracer: components hold a ``span``/``spans`` attribute
    defaulting to ``None`` and guard every ``mark``/``open``/``close``
    on an already-loaded local.  The attribution module itself is
    exempt -- inside :mod:`repro.obs.spans` the ledger and its spans
    are ``self``, never optional attributes.
    """

    codes = ("SIM404",)

    def check(self, module) -> Iterable:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            receiver = _span_receiver(node)
            if receiver is None:
                continue
            if _is_guarded(node, receiver):
                continue
            yield module.finding(
                "SIM404",
                node,
                f"{receiver}.{node.func.attr}() is not behind a "
                f"'{receiver} is not None' guard; span emission must "
                "be zero-cost when attribution is off",
            )


def _name_instability(arg: ast.AST) -> Optional[str]:
    """Why a probe-name expression changes between identical runs."""
    for node in ast.walk(arg):
        if isinstance(node, ast.Call):
            callee = dotted(node.func)
            if callee in ("id", "hash", "repr"):
                return f"{callee}() of a live object"
            if callee is not None and (
                callee.startswith("uuid.")
                or callee.startswith("random.")
                or callee.startswith("time.")
            ):
                return f"{callee}()"
    return None


class ProbeNameChecker(Checker):
    """SIM402/SIM403: duplicate or run-unstable metric names."""

    codes = ("SIM402", "SIM403")

    def check(self, module) -> Iterable:
        literal_sites: Dict[str, List[ast.Call]] = {}
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "register"
                and len(node.args) >= 2
            ):
                continue
            name_arg = node.args[0]
            instability = _name_instability(name_arg)
            if instability is not None:
                yield module.finding(
                    "SIM403",
                    name_arg,
                    f"probe name embeds {instability}, which differs "
                    "every run; derive names from stable indices/"
                    "config instead",
                )
            if isinstance(name_arg, ast.Constant) and isinstance(
                name_arg.value, str
            ):
                literal_sites.setdefault(name_arg.value, []).append(node)
        for name, sites in sorted(literal_sites.items()):
            for duplicate in sites[1:]:
                yield module.finding(
                    "SIM402",
                    duplicate,
                    f"probe name {name!r} is registered more than once "
                    "in this module; the registry raises ConfigError "
                    "on the second register()",
                )
