"""SIM3xx: the tick/ns/bytes units discipline.

The clock is integer picoseconds and every conversion constant lives in
:mod:`repro.units` (DESIGN.md section 1).  A literal ``1e6`` in model
code is a latent "is this ticks-per-us or bytes-per-MB?" bug; a
``latency_ns = ns(...)`` binding mislabels ticks as nanoseconds.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.analysis.checkers import Checker, canonical, import_map

__all__ = ["MagicUnitLiteralChecker", "UnitSuffixChecker"]

# simlint: disable-file=SIM301 -- this module defines the unit-scale
# literal table simlint itself checks against

#: The unit-scale magnitudes that must come from repro.units.
_UNIT_SCALES = {
    10**3: "units.NS (or KB)",
    10**6: "units.US (or MB)",
    10**9: "units.MS / units.GB / units.NS_PER_S",
    10**12: "units.S",
    1024: "units.KIB",
    1024**2: "units.MIB",
    1024**3: "units.GIB",
}

#: Modules that *define* the units/config vocabulary.
_UNIT_DEFINERS = frozenset({"repro.units", "repro.config"})


def _is_conversion_context(node: ast.Constant) -> bool:
    """Only arithmetic operands and module-level ALL_CAPS constant
    definitions are treated as unit conversions -- a ``1000`` in a
    sweep grid tuple or a dataclass default is a count, not a scale."""
    from repro.analysis.checkers import ancestors

    parent = getattr(node, "_simlint_parent", None)
    if isinstance(parent, ast.BinOp):
        return True
    if isinstance(parent, ast.Assign):
        targets = parent.targets
        if all(
            isinstance(target, ast.Name) and target.id.isupper()
            for target in targets
        ):
            return not any(
                isinstance(
                    ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
                )
                for ancestor in ancestors(parent)
            )
    return False


class MagicUnitLiteralChecker(Checker):
    """SIM301: unit-scale numeric literals outside units/config."""

    codes = ("SIM301",)

    def check(self, module) -> Iterable:
        if module.module in _UNIT_DEFINERS:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Constant):
                continue
            value = node.value
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                continue
            if isinstance(value, float) and not value.is_integer():
                continue
            suggestion = _UNIT_SCALES.get(int(value))
            if suggestion is None:
                continue
            if not _is_conversion_context(node):
                continue
            yield module.finding(
                "SIM301",
                node,
                f"magic unit-scale literal {value:g}; use "
                f"{suggestion} or a repro.units conversion helper",
            )


#: Unit a repro.units call's *result* is denominated in.
_PRODUCES = {
    "repro.units.ps": "ticks",
    "repro.units.ns": "ticks",
    "repro.units.us": "ticks",
    "repro.units.ms": "ticks",
    "repro.units.seconds": "ticks",
    "repro.units.to_ns": "ns",
    "repro.units.to_us": "us",
    "repro.units.to_seconds": "s",
}

#: Name suffix -> the unit the name claims.
_SUFFIX_UNITS = {
    "_ticks": "ticks",
    "_ps": "ticks",  # a tick IS a picosecond
    "_ns": "ns",
    "_us": "us",
    "_ms": "ms",
}


def _claimed_unit(name: str) -> Optional[str]:
    for suffix, unit in _SUFFIX_UNITS.items():
        if name.endswith(suffix):
            return unit
    return None


class UnitSuffixChecker(Checker):
    """SIM302: unit-suffixed names bound to a mismatched conversion."""

    codes = ("SIM302",)

    def check(self, module) -> Iterable:
        aliases = import_map(module.tree)
        for node in ast.walk(module.tree):
            bindings = []
            if isinstance(node, ast.Assign):
                bindings = [
                    (target.id, node.value)
                    for target in node.targets
                    if isinstance(target, ast.Name)
                ]
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if isinstance(node.target, ast.Name):
                    bindings = [(node.target.id, node.value)]
            elif isinstance(node, ast.Call):
                bindings = [
                    (keyword.arg, keyword.value)
                    for keyword in node.keywords
                    if keyword.arg is not None
                ]
            for name, value in bindings:
                yield from self._check_binding(module, aliases, name, value)

    def _check_binding(self, module, aliases, name, value) -> Iterable:
        claimed = _claimed_unit(name)
        if claimed is None or not isinstance(value, ast.Call):
            return
        produced = _PRODUCES.get(canonical(value.func, aliases) or "")
        if produced is None or produced == claimed:
            return
        unit_text = (
            "integer ticks (picoseconds)" if produced == "ticks"
            else f"float {produced}"
        )
        yield module.finding(
            "SIM302",
            value,
            f"{name!r} claims {claimed} but the conversion returns "
            f"{unit_text}; rename the binding or change the helper",
        )
