"""Rendering lint results as text or machine-readable JSON.

The JSON report is the CI artifact format; its schema is versioned so
downstream tooling can gate on it.
"""

from __future__ import annotations

from typing import TextIO

from repro.analysis.codes import CODES
from repro.analysis.engine import AnalysisResult

__all__ = ["REPORT_FORMAT", "render_text", "render_json"]

REPORT_FORMAT = "simlint-report-v1"


def render_text(result: AnalysisResult, out: TextIO) -> None:
    for finding in result.findings:
        print(finding.describe(), file=out)
        if finding.snippet:
            print(f"    {finding.snippet}", file=out)
    summary = (
        f"{len(result.findings)} finding(s) in "
        f"{result.files_scanned} file(s)"
    )
    if result.baselined:
        summary += f", {len(result.baselined)} baselined"
    if result.stale_baseline:
        summary += (
            f", {len(result.stale_baseline)} stale baseline entr"
            f"{'y' if len(result.stale_baseline) == 1 else 'ies'}"
        )
    print(summary, file=out)
    if result.findings:
        by_code = result.counts_by_code
        for code, count in by_code.items():
            title = CODES[code].title if code in CODES else "?"
            print(f"    {code} [{title}]: {count}", file=out)


def render_json(result: AnalysisResult) -> dict:
    return {
        "format": REPORT_FORMAT,
        "files_scanned": result.files_scanned,
        "summary": result.counts_by_code,
        "findings": [
            {
                "code": finding.code,
                "title": CODES.get(finding.code).title
                if finding.code in CODES else "",
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
                "fingerprint": finding.fingerprint,
            }
            for finding in result.findings
        ],
        "baselined": sorted(
            finding.fingerprint for finding in result.baselined
        ),
        "stale_baseline": list(result.stale_baseline),
    }
