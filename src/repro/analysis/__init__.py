"""simlint: an AST-based static analyzer for the simulator's contracts.

The simulator's correctness rests on contracts that runtime checks
(`repro.obs.invariants`, the provenance-ledger diff) can only verify on
paths a test happens to execute:

* **determinism** -- no wall-clock or unseeded randomness feeding
  simulation state, no unordered iteration feeding event scheduling;
* **kernel discipline** -- every ``Resource.acquire()`` released on all
  exit paths, no negative delays, no host blocking inside coroutines;
* **units** -- tick/ns/bytes conversions centralized in
  :mod:`repro.units` / :mod:`repro.config`, not scattered magic numbers;
* **observability** -- trace emission behind the zero-cost
  ``tracer is None`` guard, stable dotted probe names.

simlint walks :mod:`repro`'s AST and reports violations of the whole
class at review time, with stable ``SIMxxx`` codes, inline
``# simlint: disable=SIMxxx -- justification`` pragmas, and a committed
baseline so the gate starts at zero findings.

Usage::

    repro lint                        # lint the installed repro package
    repro lint src/repro --format=json --strict
    python -m repro.analysis path/to/file.py

Layered as a library: :mod:`repro.analysis.engine` (file walking and
orchestration), :mod:`repro.analysis.checkers` (one module per code
family), :mod:`repro.analysis.pragmas`, :mod:`repro.analysis.baseline`,
:mod:`repro.analysis.reporting`.
"""

from __future__ import annotations

from repro.analysis.codes import CODES, CodeInfo
from repro.analysis.engine import (
    AnalysisResult,
    Finding,
    analyze_paths,
    analyze_source,
)
from repro.analysis.main import add_lint_arguments, main, run_from_args

__all__ = [
    "CODES",
    "CodeInfo",
    "AnalysisResult",
    "Finding",
    "analyze_paths",
    "analyze_source",
    "add_lint_arguments",
    "run_from_args",
    "main",
]
