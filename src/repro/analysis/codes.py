"""The stable simlint code registry.

Codes are grouped by contract family and never renumbered; retiring a
check leaves a tombstone comment here.  ``SIM0xx`` codes are emitted by
the engine itself (pragma hygiene, parse failures) rather than by a
checker, and cannot be suppressed with pragmas -- only baselined.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["CodeInfo", "CODES", "META_CODES", "is_valid_code"]


@dataclass(frozen=True)
class CodeInfo:
    """One stable diagnostic code."""

    code: str
    title: str
    rationale: str
    #: Engine-emitted codes are not pragma-suppressible (a pragma that
    #: silences pragma hygiene would be self-defeating).
    meta: bool = False


_ALL = [
    # -- SIM0xx: engine / pragma hygiene ---------------------------------
    CodeInfo(
        "SIM001",
        "malformed pragma",
        "a '# simlint:' comment that does not parse, names an unknown "
        "code, or carries no '-- justification' string; unexplained "
        "suppressions rot",
        meta=True,
    ),
    CodeInfo(
        "SIM002",
        "unused pragma",
        "a disable pragma that suppresses nothing; stale suppressions "
        "hide future regressions",
        meta=True,
    ),
    CodeInfo(
        "SIM003",
        "unparsable file",
        "a Python file the analyzer cannot parse is a file no contract "
        "can be checked in",
        meta=True,
    ),
    # -- SIM1xx: determinism ---------------------------------------------
    CodeInfo(
        "SIM101",
        "wall-clock read",
        "time.time()/monotonic()/perf_counter()/datetime.now() feeding "
        "simulation state breaks bit-for-bit reproducibility (the "
        "ledger-diff contract); simulated time is sim.now",
    ),
    CodeInfo(
        "SIM102",
        "unseeded randomness",
        "bare random.* / numpy global RNG / RandomState() without a "
        "seed makes runs irreproducible; thread an explicit seed",
    ),
    CodeInfo(
        "SIM103",
        "unordered iteration",
        "iterating a set/frozenset or a directory listing yields an "
        "unspecified order; if the results feed schedule()/event "
        "ordering the run is no longer deterministic -- wrap in "
        "sorted()",
    ),
    # -- SIM2xx: kernel contract -----------------------------------------
    CodeInfo(
        "SIM201",
        "acquire without try/finally release",
        "a Resource.acquire() whose release is not in a finally block "
        "leaks the slot when an exception is thrown into the process "
        "(the PR-2 _dispatch deadlock class)",
    ),
    CodeInfo(
        "SIM202",
        "possibly negative delay",
        "timeout()/delayed() with a bare subtraction or negative "
        "literal can schedule into the past; clamp with max(0, ...) or "
        "prove and pragma",
    ),
    CodeInfo(
        "SIM203",
        "blocking call in coroutine",
        "time.sleep()/open()/subprocess/input() inside a simulation "
        "generator blocks the host thread mid-tick instead of yielding "
        "simulated time",
    ),
    CodeInfo(
        "SIM210",
        "private priority queue",
        "heapq / queue.PriorityQueue outside repro.sim duplicates the "
        "kernel's calendar-queue scheduler (and its ordering "
        "guarantees); schedule per-item timeouts and close over the "
        "payload instead",
    ),
    # -- SIM3xx: units / config ------------------------------------------
    CodeInfo(
        "SIM301",
        "magic unit-scale literal",
        "1e3/1e6/1e9/1e12/1024**n literals outside repro.units / "
        "repro.config are latent unit bugs; use the named constants "
        "and to_ns()/to_us()/to_seconds() helpers",
    ),
    CodeInfo(
        "SIM302",
        "unit-suffix mismatch",
        "binding ns()/us()/ms() (which return integer ticks) to a "
        "*_ns/*_us name, or to_ns() to a *_ticks name, mislabels the "
        "quantity's unit",
    ),
    # -- SIM4xx: observability -------------------------------------------
    CodeInfo(
        "SIM401",
        "unguarded trace emission",
        "tracer.complete()/counter()/instant() outside an "
        "'is not None' guard breaks the zero-cost-when-disabled "
        "contract (and crashes untraced runs)",
    ),
    CodeInfo(
        "SIM402",
        "duplicate probe name",
        "registering the same literal dotted metric name twice in one "
        "module is a guaranteed runtime ConfigError",
    ),
    CodeInfo(
        "SIM403",
        "unstable probe name",
        "a metric name built from id()/hash()/object repr/uuid/wall "
        "time changes every run, so snapshots never diff clean",
    ),
    CodeInfo(
        "SIM404",
        "unguarded span emission",
        "span.mark() / spans.open() / spans.close() outside an "
        "'is not None' guard breaks the spans-off zero-cost contract "
        "(BENCH_attrib gates it) and crashes unattributed runs",
    ),
]

#: code -> :class:`CodeInfo`, the single source of truth for docs,
#: pragma validation, and the fixture meta-test.
CODES: Dict[str, CodeInfo] = {info.code: info for info in _ALL}

#: Engine-emitted codes (not pragma-suppressible).
META_CODES = frozenset(info.code for info in _ALL if info.meta)


def is_valid_code(code: str) -> bool:
    return code in CODES
