"""Inline suppression pragmas.

Three forms, all requiring a ``--`` justification string so every
suppression documents *why* the contract does not apply::

    x = time.time()  # simlint: disable=SIM101 -- provenance timestamp
    # simlint: disable-next-line=SIM202 -- deadline clamped to now above
    release = sim.timeout(deadline - sim.now)
    # simlint: disable-file=SIM301 -- generated lookup tables

A pragma with no justification, an unknown code, or one that fails to
parse is itself reported as SIM001; a pragma that suppresses nothing is
SIM002.  Engine codes (SIM0xx) cannot be suppressed with pragmas.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, List

from repro.analysis.codes import is_valid_code

__all__ = ["Pragma", "PragmaSet", "parse_pragmas"]

#: Any comment that invokes simlint at all (used to catch malformed ones).
_MENTION = re.compile(r"#\s*simlint\s*:")

_PRAGMA = re.compile(
    r"#\s*simlint\s*:\s*"
    r"(?P<scope>disable(?:-next-line|-file)?)\s*=\s*"
    r"(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>\S.*?))?"
    r"\s*$"
)


@dataclass
class Pragma:
    """One parsed suppression comment."""

    line: int  # 1-based line the comment sits on
    scope: str  # "line" | "next-line" | "file"
    codes: tuple  # of str
    justification: str
    #: Codes this pragma actually suppressed at least one finding for.
    used_codes: set = field(default_factory=set)
    #: Parse/validation problems ("" when clean); reported as SIM001.
    problem: str = ""
    #: Resolved target for "next-line" pragmas (set by the parser so a
    #: justification wrapped across several comment lines still points
    #: at the first following *code* line).
    resolved_target: int = 0

    @property
    def target_line(self) -> int:
        """The source line this pragma's suppression applies to."""
        if self.scope == "next-line":
            return self.resolved_target or self.line + 1
        return self.line

    def suppresses(self, code: str, line: int) -> bool:
        if self.problem or code not in self.codes:
            return False
        if self.scope == "file":
            return True
        return line == self.target_line

    @property
    def unused(self) -> bool:
        return not self.problem and not self.used_codes


class PragmaSet:
    """All pragmas of one file, with suppression bookkeeping."""

    def __init__(self, pragmas: Iterable[Pragma]) -> None:
        self.pragmas: List[Pragma] = list(pragmas)

    def suppress(self, code: str, line: int) -> bool:
        """True (and marks the pragma used) if a pragma covers the
        finding.  Engine codes are never suppressible."""
        from repro.analysis.codes import META_CODES

        if code in META_CODES:
            return False
        hit = False
        for pragma in self.pragmas:
            if pragma.suppresses(code, line):
                pragma.used_codes.add(code)
                hit = True
        return hit


def _comment_tokens(source: str) -> List[tuple]:
    """(line, text) of every real comment (tokenized, so pragma-shaped
    text inside strings and docstrings is never mistaken for one)."""
    comments: List[tuple] = []
    try:
        for token in tokenize.generate_tokens(
            io.StringIO(source).readline
        ):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.string))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        # Unparsable files are reported as SIM003 by the engine; any
        # comments tokenized before the error still count.
        pass
    return comments


def parse_pragmas(source: str) -> PragmaSet:
    """Scan a module's comments for simlint pragmas (malformed ones
    included, carrying their ``problem`` text for SIM001 reporting)."""
    pragmas: List[Pragma] = []
    lines = source.splitlines()
    for lineno, text in _comment_tokens(source):
        if not _MENTION.search(text):
            continue
        match = _PRAGMA.search(text)
        if match is None:
            pragmas.append(
                Pragma(
                    line=lineno, scope="line", codes=(), justification="",
                    problem="does not parse; expected "
                    "'# simlint: disable[=|-next-line=|-file=]SIMxxx "
                    "-- justification'",
                )
            )
            continue
        scope = {
            "disable": "line",
            "disable-next-line": "next-line",
            "disable-file": "file",
        }[match.group("scope")]
        codes = tuple(
            code.strip() for code in match.group("codes").split(",")
            if code.strip()
        )
        why = (match.group("why") or "").strip()
        problem = ""
        unknown = [code for code in codes if not is_valid_code(code)]
        from repro.analysis.codes import META_CODES

        meta = [code for code in codes if code in META_CODES]
        if not codes:
            problem = "no codes given"
        elif unknown:
            problem = f"unknown code(s) {', '.join(unknown)}"
        elif meta:
            problem = (
                f"engine code(s) {', '.join(meta)} cannot be "
                "pragma-suppressed (baseline them instead)"
            )
        elif not why:
            problem = "missing '-- justification' string"
        pragmas.append(
            Pragma(
                line=lineno, scope=scope, codes=codes,
                justification=why, problem=problem,
                resolved_target=_next_code_line(lines, lineno),
            )
        )
    return PragmaSet(pragmas)


def _next_code_line(lines: List[str], lineno: int) -> int:
    """First line after ``lineno`` that is not a comment (a wrapped
    justification keeps a next-line pragma pointing at real code).  A
    blank line ends the comment block, so a pragma never suppresses at
    a distance."""
    target = lineno + 1
    while target <= len(lines) and lines[target - 1].strip().startswith("#"):
        target += 1
    return target
