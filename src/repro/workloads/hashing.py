"""Deterministic 64-bit hashing used by the application workloads.

A splitmix64-style finalizer: cheap, stateless, and reproducible
across runs, which both the replay methodology and the functional
correctness tests rely on.
"""

from __future__ import annotations

__all__ = ["mix64", "hash_with_seed"]

_MASK = (1 << 64) - 1


def mix64(value: int) -> int:
    """The splitmix64 finalizer: a well-distributed 64-bit mix."""
    value &= _MASK
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & _MASK
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & _MASK
    return value ^ (value >> 31)


def hash_with_seed(value: int, seed: int) -> int:
    """An independent hash family member, selected by ``seed``."""
    return mix64(value ^ mix64(seed + 0x9E3779B97F4A7C15))
