"""The Graph500-style BFS benchmark (section IV-C).

"BFS begins with a source vertex and iteratively explores its
neighbors ... graph traversal is a central component of many data
analytics problems."

The graph is stored in CSR form in the microsecond-latency device:
an offsets array (data-dependent row bounds) and an edge array.  Hot
state -- the frontier, the visited map, per-level bookkeeping -- lives
in host memory, as in the paper ("hot data structures ... are all
placed in main memory").  The traversal is level-synchronous with a
shared work pool and a spin barrier between levels.

Per the paper, "inherent data dependencies" limit BFS to two-read
batches: the two row bounds of a vertex are fetched together, and edge
words are scanned in two-word batches; the computation after each
batch is the benign work loop.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import WORD_BYTES, FlatMemory
from repro.runtime.api import AccessContext
from repro.workloads.spin import SpinBarrier

__all__ = ["BfsParams", "CsrGraph", "BfsRun", "install_bfs", "generate_graph"]


@dataclass(frozen=True)
class BfsParams:
    """Graph generation and traversal parameters."""

    #: Default sized so the CSR image (~150 KB) dwarfs the L1, as in
    #: the paper's big-data setting.
    vertices: int = 2048
    average_degree: int = 8
    seed: int = 42
    source: int = 0
    #: Work instructions per access batch (the benign work loop).
    work_count: int = 200

    def __post_init__(self) -> None:
        if self.vertices < 2:
            raise ConfigError("graph needs at least two vertices")
        if self.average_degree < 1:
            raise ConfigError("average degree must be positive")
        if not 0 <= self.source < self.vertices:
            raise ConfigError("source vertex out of range")


def generate_graph(params: BfsParams) -> list[list[int]]:
    """A reproducible random graph as adjacency lists.

    Undirected Erdos-Renyi-style with a guaranteed spine so the
    traversal reaches every vertex within a handful of levels (like
    the Graph500 generator's connected component).
    """
    rng = np.random.RandomState(params.seed)
    n = params.vertices
    adjacency: list[set[int]] = [set() for _ in range(n)]
    # Spine: vertex i links to i+1, keeping the graph connected.
    for i in range(n - 1):
        adjacency[i].add(i + 1)
        adjacency[i + 1].add(i)
    target_edges = n * params.average_degree // 2
    sources = rng.randint(0, n, size=2 * target_edges)
    destinations = rng.randint(0, n, size=2 * target_edges)
    added = 0
    for u, v in zip(sources, destinations):
        if added >= target_edges:
            break
        u, v = int(u), int(v)
        if u != v and v not in adjacency[u]:
            adjacency[u].add(v)
            adjacency[v].add(u)
            added += 1
    # Relabel with a random permutation: real big-data graphs have no
    # correlation between a vertex's id and its neighbours' ids, so
    # frontier processing shows the "little spatial locality" the
    # paper's server workloads exhibit.  Without this, the spine and
    # the ordered frontier would walk the offsets array sequentially.
    permutation = rng.permutation(n)
    relabeled: list[list[int]] = [[] for _ in range(n)]
    for vertex, neighbors in enumerate(adjacency):
        relabeled[permutation[vertex]] = sorted(
            int(permutation[neighbor]) for neighbor in neighbors
        )
    return relabeled


class CsrGraph:
    """CSR (offsets + edges) image of a graph in simulated memory."""

    def __init__(
        self,
        adjacency: list[list[int]],
        base_addr: int,
        world: FlatMemory,
    ) -> None:
        self.n = len(adjacency)
        self.base_addr = base_addr
        self.world = world
        self.edge_count = sum(len(neighbors) for neighbors in adjacency)
        self._edges_base = base_addr + (self.n + 1) * WORD_BYTES
        offset = 0
        for vertex, neighbors in enumerate(adjacency):
            world.write_word(self._offset_addr(vertex), offset)
            for position, neighbor in enumerate(neighbors):
                world.write_word(self._edge_addr(offset + position), neighbor)
            offset += len(neighbors)
        world.write_word(self._offset_addr(self.n), offset)

    @staticmethod
    def size_bytes(adjacency: list[list[int]]) -> int:
        n = len(adjacency)
        edges = sum(len(neighbors) for neighbors in adjacency)
        return (n + 1 + edges) * WORD_BYTES

    def _offset_addr(self, vertex: int) -> int:
        return self.base_addr + vertex * WORD_BYTES

    def _edge_addr(self, index: int) -> int:
        return self._edges_base + index * WORD_BYTES

    def neighbors_timed(self, ctx: AccessContext, vertex: int, work_count: int):
        """Read a vertex's neighbor list through the device API.

        One 2-read batch for the row bounds, then 2-read batches over
        the edge words, each followed by the benign work loop.
        """
        bounds = yield from ctx.read_batch(
            [self._offset_addr(vertex), self._offset_addr(vertex + 1)]
        )
        yield from ctx.work(work_count)
        start, end = bounds
        neighbors: list[int] = []
        index = start
        while index < end:
            batch = [self._edge_addr(index)]
            if index + 1 < end:
                batch.append(self._edge_addr(index + 1))
            words = yield from ctx.read_batch(batch)
            neighbors.extend(words)
            yield from ctx.work(work_count)
            index += len(batch)
        return neighbors


class BfsRun:
    """Shared state of one parallel, level-synchronous traversal."""

    def __init__(self, graph: CsrGraph, params: BfsParams, total_threads: int) -> None:
        self.graph = graph
        self.params = params
        self.distance = [-1] * graph.n
        self.distance[params.source] = 0
        self.frontier: list[int] = [params.source]
        self.next_frontier: list[int] = []
        self.level = 0
        self.done = False
        self._cursor = 0
        self.barrier = SpinBarrier(total_threads)

    def claim_vertex(self) -> int | None:
        """Hand the next frontier vertex to a worker (host-memory
        bookkeeping; shared work pool)."""
        if self._cursor >= len(self.frontier):
            return None
        vertex = self.frontier[self._cursor]
        self._cursor += 1
        return vertex

    def visit(self, neighbor: int) -> None:
        if self.distance[neighbor] < 0:
            self.distance[neighbor] = self.level + 1
            self.next_frontier.append(neighbor)

    def advance_level(self) -> None:
        """Called by exactly one thread per level, inside the barrier."""
        self.frontier = self.next_frontier
        self.next_frontier = []
        self._cursor = 0
        self.level += 1
        if not self.frontier:
            self.done = True


def bfs_thread(ctx: AccessContext, run: BfsRun, is_coordinator: bool):
    """One BFS worker: drain the frontier pool, sync, repeat."""
    graph = run.graph
    while not run.done:
        while True:
            vertex = run.claim_vertex()
            if vertex is None:
                break
            neighbors = yield from graph.neighbors_timed(
                ctx, vertex, run.params.work_count
            )
            for neighbor in neighbors:
                run.visit(neighbor)
        yield from run.barrier.wait(ctx)
        if is_coordinator:
            run.advance_level()
        yield from run.barrier.wait(ctx)


def install_bfs(
    system: System, params: BfsParams, threads_per_core: int
) -> list[BfsRun]:
    """Spawn one independent traversal per core.

    Each core gets its own copy of the graph in its own device
    partition and traverses it with its own threads -- the paper's
    multicore methodology ("we reuse the same recorded access sequence,
    after applying an address offset, to handle requests from multiple
    cores"), which also avoids cross-core barrier serialization.
    """
    adjacency = generate_graph(params)
    runs: list[BfsRun] = []
    for core_id in range(system.config.cores):
        base = system.alloc_data(core_id, CsrGraph.size_bytes(adjacency))
        graph = CsrGraph(adjacency, base, system.world)
        runs.append(BfsRun(graph, params, threads_per_core))

    def factory(ctx: AccessContext, core_id: int, slot: int):
        return bfs_thread(ctx, runs[core_id], is_coordinator=(slot == 0))

    system.spawn_per_core(threads_per_core, factory)
    return runs
