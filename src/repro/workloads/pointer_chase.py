"""Pointer chasing: the access pattern that motivates the paper.

"Existing micro-architectural techniques ... cannot hide microsecond
delays, especially in the presence of pointer-based serial dependence
chains commonly found in modern server workloads" (section I).  Within
one chain nothing can help: the next address is unknown until the
current load returns.  The paper's whole thesis is that software can
still find parallelism *across* threads -- each user thread walks its
own chain, and prefetch + context switching overlaps the chains.

The chain is a random cyclic permutation of line-spaced nodes, so
traversal order is uncorrelated with memory order (no stride for a
hardware prefetcher to learn, no spatial locality).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import FlatMemory
from repro.runtime.api import AccessContext
from repro.workloads.seeds import thread_seed

__all__ = ["PointerChaseParams", "PointerChain", "install_pointer_chase"]


@dataclass(frozen=True)
class PointerChaseParams:
    """Chain sizing and traversal parameters."""

    #: Nodes per chain (one cache line each).
    nodes: int = 512
    #: Hops each thread performs (may wrap around the cycle).
    hops_per_thread: int = 64
    #: Work instructions per hop (the benign work loop).
    work_count: int = 100
    seed: int = 7

    def __post_init__(self) -> None:
        if self.nodes < 2:
            raise ConfigError("a chain needs at least two nodes")
        if self.hops_per_thread < 1:
            raise ConfigError("need at least one hop per thread")


class PointerChain:
    """One cyclic linked list of line-sized nodes in simulated memory.

    Each node's first word holds the address of the next node.
    """

    def __init__(
        self,
        params: PointerChaseParams,
        base_addr: int,
        world: FlatMemory,
        seed_offset: int = 0,
    ) -> None:
        self.params = params
        self.base_addr = base_addr
        self.world = world
        rng = np.random.RandomState(params.seed + seed_offset)
        order = rng.permutation(params.nodes)
        self.head = base_addr + int(order[0]) * 64
        for position in range(params.nodes):
            node = base_addr + int(order[position]) * 64
            successor = base_addr + int(order[(position + 1) % params.nodes]) * 64
            world.write_word(node, successor)

    @staticmethod
    def size_bytes(params: PointerChaseParams) -> int:
        return params.nodes * 64

    def walk_functional(self, hops: int) -> int:
        """Untimed traversal (test oracle): the final node address."""
        node = self.head
        for _ in range(hops):
            node = self.world.read_word(node)
        return node

    def walk(self, ctx: AccessContext, hops: int, work_count: int):
        """Timed traversal: strictly serial data-dependent reads."""
        node = self.head
        for _ in range(hops):
            node = yield from ctx.read(node)
            yield from ctx.work(work_count)
        return node


def install_pointer_chase(
    system: System, params: PointerChaseParams, threads_per_core: int
) -> dict[tuple[int, int], PointerChain]:
    """One private chain per thread: serial within, parallel across."""
    chains: dict[tuple[int, int], PointerChain] = {}

    def factory(ctx: AccessContext, core_id: int, slot: int):
        base = system.alloc_data(core_id, PointerChain.size_bytes(params))
        chain = PointerChain(
            params, base, system.world, seed_offset=thread_seed(core_id, slot)
        )
        chains[(core_id, slot)] = chain

        def body():
            final = yield from chain.walk(
                ctx, params.hops_per_thread, params.work_count
            )
            return final

        return body()

    system.spawn_per_core(threads_per_core, factory)
    return chains
