"""Open-loop load generation: arrivals, key popularity, service wiring.

The paper validates SWQ-style queueing with *closed-loop* threads: each
thread issues its next access only after the previous one returns, so
offered load collapses exactly when the system slows down -- the
coordinated-omission blind spot.  Service-scale tail-latency questions
(ROADMAP item 2) need the opposite: an **open-loop** generator whose
requests arrive on a simulated timeline *regardless of completion*,
queue at the host, and record end-to-end sojourn time (arrival to
response), the quantity SLOs are written against.

Everything here is deterministic and seeded via the repo's splitmix64
hash family (:mod:`repro.workloads.hashing`): a stream is a pure
function of (seed, index), so arrival and key sequences are
bit-identical across runs, across ``--jobs`` settings, and across
chunked consumption.

Three layers:

* **streams** -- :class:`UniformStream` (unit doubles from counter
  hashing), :func:`arrival_gaps` (Poisson / two-state MMPP interarrival
  ticks), :class:`ZipfianKeys` (YCSB-style scrambled Zipfian, theta=0
  degenerating to uniform);
* **specs** -- frozen dataclasses (:class:`ArrivalSpec`,
  :class:`KeySpec`, :class:`OpenLoopSpec`) that are content-addressable
  by :func:`repro.config.stable_digest` for the sweep cache;
* **wiring** -- :func:`install_service` builds per-core
  :class:`~repro.workloads.memcached.KvStore` instances, spawns
  spin-polling worker threads, and launches one off-core arrival
  injector process per core (arrivals never consume core cycles:
  they model network ingress).
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterator, Optional

from repro.errors import ConfigError
from repro.host.system import System
from repro.runtime.api import AccessContext
from repro.units import US
from repro.workloads.hashing import hash_with_seed
from repro.workloads.memcached import KvStore, MemcachedParams

__all__ = [
    "ArrivalKind",
    "ArrivalSpec",
    "KeySpec",
    "OpenLoopSpec",
    "UniformStream",
    "ZipfianKeys",
    "arrival_gaps",
    "Request",
    "ServiceState",
    "install_service",
]

#: 53-bit mantissa scale for unit-interval doubles.
_UNIT_SCALE = float(1 << 53)


class UniformStream:
    """Deterministic unit-interval doubles from counter hashing.

    ``value(i)`` is a pure function of ``(seed, i)``, so the stream has
    random access and chunk-invariant sequential reads: consuming 100
    values then 100 more yields exactly the first 200.
    """

    __slots__ = ("seed", "index")

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self.index = 0

    def value_at(self, index: int) -> float:
        """The ``index``-th draw, in (0, 1] (never 0: safe for log)."""
        bits = hash_with_seed(index, self.seed) >> 11
        return (bits + 1) / _UNIT_SCALE

    def next_unit(self) -> float:
        value = self.value_at(self.index)
        self.index += 1
        return value

    def next_exponential(self, mean: float) -> float:
        """An Exp(1/mean) draw via inversion sampling."""
        return -mean * math.log(self.next_unit())


class ArrivalKind(enum.Enum):
    """Supported open-loop interarrival processes."""

    POISSON = "poisson"
    MMPP = "mmpp"


@dataclass(frozen=True)
class ArrivalSpec:
    """One core's offered-load process.

    ``rate_per_us`` is the *mean* offered load in requests per
    microsecond per core for both kinds; the MMPP parameters shape its
    burstiness around that mean.  The two-state MMPP spends
    ``burst_fraction`` of the time in a burst state whose rate is
    ``burst_ratio`` times the quiet state's, with exponentially
    distributed state dwells (mean ``mean_dwell_us`` in the burst
    state), so the long-run mean equals ``rate_per_us`` exactly.
    """

    kind: ArrivalKind = ArrivalKind.POISSON
    rate_per_us: float = 1.0
    burst_ratio: float = 8.0
    burst_fraction: float = 0.1
    mean_dwell_us: float = 20.0

    def __post_init__(self) -> None:
        if not self.rate_per_us > 0:
            raise ConfigError("offered load must be positive")
        if self.kind is ArrivalKind.MMPP:
            if self.burst_ratio < 1:
                raise ConfigError("burst ratio must be >= 1")
            if not 0 < self.burst_fraction < 1:
                raise ConfigError("burst fraction must be in (0, 1)")
            if not self.mean_dwell_us > 0:
                raise ConfigError("mean burst dwell must be positive")

    @property
    def mean_gap_ticks(self) -> float:
        return US / self.rate_per_us


@dataclass(frozen=True)
class KeySpec:
    """Key popularity over the populated key space."""

    items: int = 2048
    #: Zipfian skew; 0 selects the uniform distribution.  The YCSB
    #: generator's closed form requires theta < 1 (theta ~ 0.99 is the
    #: classic "hot keys" setting).
    theta: float = 0.0

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ConfigError("key space must be non-empty")
        if not 0 <= self.theta < 1:
            raise ConfigError("zipfian theta must be in [0, 1)")


@dataclass(frozen=True)
class OpenLoopSpec:
    """A full open-loop service workload: arrivals, keys, seed."""

    arrivals: ArrivalSpec = ArrivalSpec()
    keys: KeySpec = KeySpec()
    seed: int = 1


def arrival_gaps(spec: ArrivalSpec, seed: int) -> Iterator[int]:
    """Infinite interarrival-tick stream for one core (ticks >= 1).

    Poisson: i.i.d. exponential gaps.  MMPP: exponential gaps at the
    current state's rate; when a gap would cross the (exponentially
    distributed) state-switch boundary the clock advances to the
    boundary and the gap is redrawn at the new rate -- valid because
    the exponential is memoryless, and what makes the modulated
    process's mean exact.
    """
    stream = UniformStream(seed)
    if spec.kind is ArrivalKind.POISSON:
        mean = spec.mean_gap_ticks
        while True:
            yield max(1, round(stream.next_exponential(mean)))
        # -- not reached --
    # Two-state MMPP around the requested mean rate.
    ratio = spec.burst_ratio
    fraction = spec.burst_fraction
    quiet_rate = spec.rate_per_us / ((1 - fraction) + fraction * ratio)
    rates = (quiet_rate, quiet_rate * ratio)  # requests per us
    dwell_means = (
        spec.mean_dwell_us * US * (1 - fraction) / fraction,
        spec.mean_dwell_us * US,
    )
    state = 0
    now = 0.0
    switch_at = now + stream.next_exponential(dwell_means[state])
    last_emit = 0.0
    while True:
        gap = stream.next_exponential(US / rates[state])
        while now + gap >= switch_at:
            # Advance to the boundary, flip state, redraw (memoryless).
            now = switch_at
            state = 1 - state
            switch_at = now + stream.next_exponential(dwell_means[state])
            gap = stream.next_exponential(US / rates[state])
        now += gap
        ticks = max(1, round(now - last_emit))
        last_emit += ticks
        yield ticks


class ZipfianKeys:
    """Scrambled Zipfian key stream (Gray et al., as popularized by
    YCSB): rank ``r`` has popularity proportional to ``1/(r+1)^theta``,
    and ranks are scattered over the key space by hashing so hot keys
    do not cluster in one hash-table region.  ``theta=0`` is uniform.
    """

    __slots__ = (
        "items", "theta", "_stream",
        "_alpha", "_zetan", "_eta", "_half_pow",
    )

    def __init__(self, spec: KeySpec, seed: int) -> None:
        self.items = spec.items
        self.theta = spec.theta
        self._stream = UniformStream(seed)
        if self.theta:
            n = self.items
            theta = self.theta
            self._zetan = sum(1.0 / (i + 1) ** theta for i in range(n))
            zeta2 = 1.0 + 0.5**theta if n >= 2 else self._zetan
            self._alpha = 1.0 / (1.0 - theta)
            self._eta = (1 - (2.0 / n) ** (1 - theta)) / (
                1 - zeta2 / self._zetan
            )
            self._half_pow = 1.0 + 0.5**theta

    def next_key(self) -> int:
        unit = self._stream.next_unit()
        if not self.theta:
            # Uniform: the rank is already a uniform key; scrambling
            # would only introduce hash-collision lumpiness.
            return min(self.items - 1, int(unit * self.items))
        else:
            scaled = unit * self._zetan
            if scaled < 1.0 or self.items == 1:
                rank = 0
            elif scaled < self._half_pow:
                rank = 1
            else:
                rank = int(
                    self.items * (self._eta * unit - self._eta + 1) ** self._alpha
                )
                rank = min(self.items - 1, rank)
        # Scramble: spread popular ranks across the key space.
        return hash_with_seed(rank, self._stream.seed ^ 0x5CA1AB1E) % self.items


# -- service wiring -----------------------------------------------------------


@dataclass
class Request:
    """One in-flight GET request on the open-loop timeline."""

    key: int
    arrived_at: int
    started_at: int = -1
    finished_at: int = -1
    value: Optional[list] = None
    #: Attribution span (:class:`repro.obs.spans.RequestSpan`) when the
    #: service runs with a span ledger; ``None`` otherwise.
    span: Optional[object] = None


#: Seed-space offsets separating a core's arrival stream from its key
#: stream (arbitrary odd constants, fixed forever for reproducibility).
_ARRIVAL_STREAM = 0x0A441AAF
_KEY_STREAM = 0x1CEB00DA


def _core_seed(base_seed: int, core_id: int, stream: int) -> int:
    return hash_with_seed(core_id, base_seed ^ stream)


class ServiceState:
    """Live state of an installed open-loop service."""

    def __init__(
        self, system: System, spec: OpenLoopSpec, spans=None
    ) -> None:
        self.system = system
        self.spec = spec
        #: Attribution ledger (:class:`repro.obs.spans.SpanLedger`) or
        #: ``None``; every emission below is guarded on a local so the
        #: disabled path costs one attribute load per transition.
        self.spans = spans
        probes = system.probes
        #: End-to-end sojourn (arrival to response): the SLO metric.
        self.sojourn = probes.latency("service-sojourn")
        #: Host-queue wait (arrival to service start).
        self.queue_wait = probes.latency("service-wait")
        self.arrivals = probes.counter("service-arrivals")
        self.completions = probes.counter("service-completions")
        self.queue_depth = probes.time_weighted("service-queue-depth")
        self.queues: list[Deque[Request]] = [
            deque() for _ in range(system.logical_cores)
        ]
        self.completed: list[Request] = []
        self._pending = 0

    @property
    def pending(self) -> int:
        return self._pending

    def _note_depth(self) -> None:
        now = self.system.sim.now
        self.queue_depth.update(now, self._pending)
        tracer = self.system.tracer
        if tracer is not None:
            from repro.obs import PID_SERVICE

            tracer.counter(
                "service",
                PID_SERVICE,
                "host-queue",
                now,
                {"pending": self._pending},
            )

    def enqueue(self, core_id: int, request: Request) -> None:
        spans = self.spans
        if spans is not None:
            request.span = spans.open(request.key, core_id, request.arrived_at)
        self.queues[core_id].append(request)
        self.arrivals.add()
        self._pending += 1
        self._note_depth()

    def begin_service(self, core_id: int) -> Optional[Request]:
        queue = self.queues[core_id]
        if not queue:
            return None
        request = queue.popleft()
        request.started_at = self.system.sim.now
        span = request.span
        if span is not None:
            # Worker pickup: host-queue wait ends, on-core service
            # time begins.
            span.mark("work", request.started_at)
        self.queue_wait.record(request.started_at - request.arrived_at)
        self._pending -= 1
        self._note_depth()
        return request

    def finish(self, core_id: int, request: Request) -> None:
        request.finished_at = self.system.sim.now
        spans = self.spans
        if spans is not None:
            spans.close(request.span, request.finished_at)
        self.sojourn.record(request.finished_at - request.arrived_at)
        self.completions.add()
        self.completed.append(request)
        tracer = self.system.tracer
        if tracer is not None:
            from repro.obs import PID_SERVICE

            tracer.complete(
                "service",
                PID_SERVICE,
                core_id + 1,
                "get",
                request.arrived_at,
                request.finished_at,
                args={
                    "key": request.key,
                    "wait_ticks": request.started_at - request.arrived_at,
                },
            )


def _injector(system: System, state: ServiceState, core_id: int):
    """Off-core arrival process: requests land on the simulated
    timeline whether or not the host keeps up (the open loop)."""
    sim = system.sim
    spec = state.spec
    gaps = arrival_gaps(
        spec.arrivals, _core_seed(spec.seed, core_id, _ARRIVAL_STREAM)
    )
    keys = ZipfianKeys(spec.keys, _core_seed(spec.seed, core_id, _KEY_STREAM))
    while True:
        yield sim.timeout(next(gaps))
        state.enqueue(core_id, Request(key=keys.next_key(), arrived_at=sim.now))


def _service_worker(
    ctx: AccessContext, store: KvStore, state: ServiceState, core_id: int
):
    """One worker uthread: poll the host queue, serve GETs forever.

    Idle workers spin-yield (each yield charges the context-switch
    cost), modeling a polling service loop; they must *not* block on a
    hardware event, which would stall the whole core.
    """
    params = store.params
    while True:
        request = state.begin_service(core_id)
        if request is None:
            yield from ctx.yield_control()
            continue
        # Point the context's span cursor at this request so the
        # mechanism paths stamp layer transitions into it (each worker
        # serves one request at a time, so the slot is exclusive).
        ctx.span = request.span
        request.value = yield from store.get(ctx, request.key)
        yield from ctx.work(params.work_count)
        ctx.span = None
        state.finish(core_id, request)


def install_service(
    system: System,
    params: MemcachedParams,
    spec: OpenLoopSpec,
    workers_per_core: int,
    spans=None,
) -> ServiceState:
    """Wire the open-loop memcached service into ``system``.

    Builds one populated :class:`KvStore` per logical core, spawns
    ``workers_per_core`` polling worker threads per core, and launches
    one arrival-injector kernel process per core.  The injectors run
    off-core: arrival timing models network ingress and consumes no
    core cycles, so the offered load is independent of service rate.

    ``spans`` (a :class:`repro.obs.spans.SpanLedger`) enables
    per-request latency attribution; it is also hung on the system so
    ``System.report()`` and the registry export the attribution table.
    """
    if workers_per_core < 1:
        raise ConfigError("need at least one service worker per core")
    if spec.keys.items > params.items:
        raise ConfigError(
            "key popularity space exceeds the populated store "
            f"({spec.keys.items} > {params.items})"
        )
    if spans is not None:
        system.spans = spans
    state = ServiceState(system, spec, spans=spans)
    stores: dict[int, KvStore] = {}

    def factory(ctx: AccessContext, core_id: int, slot: int):
        if core_id not in stores:
            base = system.alloc_data(core_id, KvStore.size_bytes(params))
            store = KvStore(params, base, system.world)
            store.populate(range(params.items))
            stores[core_id] = store
        return _service_worker(ctx, stores[core_id], state, core_id)

    system.spawn_per_core(workers_per_core, factory)
    for core_id in range(system.logical_cores):
        system.sim.process(
            _injector(system, state, core_id), name=f"loadgen-core{core_id}"
        )
    tracer = system.tracer
    if tracer is not None:
        from repro.obs import PID_SERVICE

        tracer.process_name(PID_SERVICE, "service")
        for core_id in range(system.logical_cores):
            tracer.thread_name(PID_SERVICE, core_id + 1, f"core{core_id} queue")
    # Anchor the depth probe at time zero so idle spans count.
    state.queue_depth.update(system.sim.now, 0.0)
    return state
