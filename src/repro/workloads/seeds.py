"""Deterministic per-thread seed derivation shared by the workloads.

Every workload that gives each simulated thread its own RNG stream
derives the seed the same way, so a (core, slot) pair always sees the
same data regardless of which workload or sweep point is running.
"""

from __future__ import annotations

__all__ = ["SEED_STRIDE", "thread_seed"]

#: Seed-space stride between cores: each core owns this many
#: consecutive slot seeds, so distinct (core, slot) pairs never
#: collide while slot < SEED_STRIDE.
SEED_STRIDE = 1000  # simlint: disable=SIM301 -- seed-space stride, not a unit conversion


def thread_seed(core_id: int, slot: int) -> int:
    """Deterministic RNG seed for the thread at (core, slot)."""
    return core_id * SEED_STRIDE + slot
