"""Synchronization primitives built on cooperative yielding.

User-level threads cannot block in the kernel; they spin-yield, which
is exactly what the paper's threads do when "they encountered a
synchronization operation that prevents further progress" (section
III-B) -- the scheduler keeps rotating through them.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.runtime.api import AccessContext

__all__ = ["SpinBarrier"]


class SpinBarrier:
    """A reusable (generation-counted) barrier for user threads."""

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ConfigError("barrier needs at least one party")
        self.parties = parties
        self.generation = 0
        self._arrived = 0
        self.spins = 0

    def wait(self, ctx: AccessContext):
        """Generator: arrive, then spin-yield until everyone has."""
        generation = self.generation
        self._arrived += 1
        if self._arrived == self.parties:
            self._arrived = 0
            self.generation += 1
            return
        while self.generation == generation:
            self.spins += 1
            yield from ctx.yield_control()
