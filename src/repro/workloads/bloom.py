"""The Bloom filter benchmark (section IV-C).

"A high-performance implementation of lookups in a pre-populated
dataset ... space-efficient probabilistic data structures for
determining if a searched object is likely present in a set."

The bit array lives in the microsecond-latency device (or in host DRAM
for the baseline); each lookup probes ``hash_count`` independent bit
positions -- a natural batch of four independent reads, which is how
the paper runs it ("the nature of the applications permits batches of
four reads for Memcached and Bloomfilter").  As in the paper, the
post-access computation is replaced by the microbenchmark's benign
work loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import WORD_BYTES, FlatMemory
from repro.runtime.api import AccessContext
from repro.workloads.hashing import hash_with_seed
from repro.workloads.seeds import thread_seed

__all__ = ["BloomParams", "BloomFilter", "bloom_lookup_thread", "install_bloom"]


@dataclass(frozen=True)
class BloomParams:
    """Sizing and query-mix parameters."""

    #: Logical capacity.  The default makes the bit array ~1.3 MB --
    #: 40x the L1 -- so probes are genuine device reads, like the
    #: paper's big-data setting.  Only queried keys are materialized
    #: in the sparse functional memory, so setup stays cheap.
    items: int = 1 << 20
    bits_per_item: int = 10
    hash_count: int = 4
    #: Work instructions per lookup (the benign work loop).
    work_count: int = 200
    #: Queries per thread; half hit, half miss, interleaved.
    queries_per_thread: int = 64

    def __post_init__(self) -> None:
        if self.items < 1:
            raise ConfigError("bloom filter needs at least one item")
        if self.bits_per_item < 1:
            raise ConfigError("need at least one bit per item")
        if not 1 <= self.hash_count <= 8:
            raise ConfigError("hash count must be in [1, 8]")
        if self.queries_per_thread < 1:
            raise ConfigError("need at least one query per thread")

    @property
    def bits(self) -> int:
        """Bit-array size, rounded up to a whole number of words."""
        raw = self.items * self.bits_per_item
        return (raw + 63) // 64 * 64


class BloomFilter:
    """A Bloom filter whose bit array lives in simulated memory."""

    def __init__(self, params: BloomParams, base_addr: int, world: FlatMemory) -> None:
        self.params = params
        self.base_addr = base_addr
        self.world = world

    @property
    def size_bytes(self) -> int:
        return self.params.bits // 8

    def _bit_positions(self, key: int) -> list[int]:
        return [
            hash_with_seed(key, seed) % self.params.bits
            for seed in range(self.params.hash_count)
        ]

    def _word_addr(self, bit: int) -> int:
        return self.base_addr + (bit // 64) * WORD_BYTES

    def populate(self, keys) -> None:
        """Functional setup: set the bits of every key (untimed, like
        the paper's pre-populated dataset)."""
        for key in keys:
            for bit in self._bit_positions(key):
                addr = self._word_addr(bit)
                word = self.world.read_word(addr)
                self.world.write_word(addr, word | (1 << (bit % 64)))

    def contains_functional(self, key: int) -> bool:
        """Untimed membership check (test oracle)."""
        return all(
            self.world.read_word(self._word_addr(bit)) >> (bit % 64) & 1
            for bit in self._bit_positions(key)
        )

    def lookup(self, ctx: AccessContext, key: int):
        """Timed membership check through the device-access API.

        Issues one batched dev_access for all probe words, then tests
        the bits in the returned values.
        """
        bits = self._bit_positions(key)
        addrs = [self._word_addr(bit) for bit in bits]
        words = yield from ctx.read_batch(addrs)
        present = all(
            (word >> (bit % 64)) & 1 for word, bit in zip(words, bits)
        )
        return present


def bloom_lookup_thread(
    ctx: AccessContext,
    bloom: BloomFilter,
    keys: list[int],
    results: list[bool],
):
    """One lookup thread: query each key, then run the work loop."""
    for key in keys:
        present = yield from bloom.lookup(ctx, key)
        results.append(present)
        yield from ctx.work(bloom.params.work_count)


def make_query_keys(params: BloomParams, thread_seed: int) -> list[int]:
    """Half present keys, half absent, deterministically interleaved."""
    keys = []
    for i in range(params.queries_per_thread):
        if i % 2 == 0:
            keys.append(hash_with_seed(i + thread_seed * 7919, 100) % params.items)
        else:
            keys.append(params.items + hash_with_seed(i, thread_seed) % params.items)
    return keys


def install_bloom(
    system: System, params: BloomParams, threads_per_core: int
) -> dict[tuple[int, int], list[bool]]:
    """Build one filter per core, populate it, spawn lookup threads.

    Returns a (core, slot) -> results mapping filled during the run;
    keys below ``params.items`` are the populated ones.
    """
    filters: dict[int, BloomFilter] = {}
    results: dict[tuple[int, int], list[bool]] = {}
    # Pre-compute every thread's queries so each core's filter can be
    # populated with exactly the present keys (the sparse functional
    # memory then only materializes words the run will touch).
    present_by_core: dict[int, set[int]] = {}
    for core_id in range(system.config.cores):
        present: set[int] = set()
        for slot in range(threads_per_core):
            keys = make_query_keys(params, thread_seed=thread_seed(core_id, slot))
            present.update(key for key in keys if key < params.items)
        present_by_core[core_id] = present

    def factory(ctx: AccessContext, core_id: int, slot: int):
        if core_id not in filters:
            base = system.alloc_data(core_id, params.bits // 8)
            bloom = BloomFilter(params, base, system.world)
            bloom.populate(present_by_core[core_id])
            filters[core_id] = bloom
        out: list[bool] = []
        results[(core_id, slot)] = out
        keys = make_query_keys(params, thread_seed=thread_seed(core_id, slot))
        return bloom_lookup_thread(ctx, filters[core_id], keys, out)

    system.spawn_per_core(threads_per_core, factory)
    return results
