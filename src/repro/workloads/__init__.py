"""Workloads: the microbenchmark and the three application studies."""

from repro.workloads.bfs import BfsParams, BfsRun, CsrGraph, generate_graph, install_bfs
from repro.workloads.bloom import BloomFilter, BloomParams, install_bloom
from repro.workloads.memcached import KvStore, MemcachedParams, install_memcached
from repro.workloads.microbench import (
    MicrobenchSpec,
    install_microbench,
    microbench_thread,
)
from repro.workloads.seeds import SEED_STRIDE, thread_seed
from repro.workloads.spin import SpinBarrier

__all__ = [
    "BfsParams",
    "BfsRun",
    "BloomFilter",
    "BloomParams",
    "CsrGraph",
    "KvStore",
    "MemcachedParams",
    "MicrobenchSpec",
    "SEED_STRIDE",
    "SpinBarrier",
    "generate_graph",
    "install_bfs",
    "install_bloom",
    "install_memcached",
    "install_microbench",
    "microbench_thread",
    "thread_seed",
]
