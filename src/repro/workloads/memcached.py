"""The Memcached lookup benchmark (section IV-C).

"Performs the lookup operations of the Memcached in-memory key-value
store."  The hash table -- bucket array, chained entries, and value
blocks -- lives in the microsecond-latency device; a GET hashes the
key, walks the chain with data-dependent reads (pointer chasing:
impossible to batch), and once the key matches, retrieves the value,
which "can span multiple cache lines, resulting in independent memory
accesses that can overlap" -- the four-read batch of Figure 10.  The
post-access computation is the benign work loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.host.system import System
from repro.memory import WORD_BYTES, FlatMemory
from repro.runtime.api import AccessContext
from repro.workloads.hashing import hash_with_seed, mix64
from repro.workloads.seeds import thread_seed

__all__ = ["MemcachedParams", "KvStore", "memcached_get_thread", "install_memcached"]

#: Entry layout (one cache line): key, value pointer, next pointer.
_ENTRY_KEY = 0
_ENTRY_VALUE = 8
_ENTRY_NEXT = 16
_ENTRY_BYTES = 64


@dataclass(frozen=True)
class MemcachedParams:
    """Store sizing and query parameters."""

    items: int = 2048
    buckets: int = 2048
    #: Value size; 256 B spans four cache lines -> the 4-read batch.
    value_bytes: int = 256
    work_count: int = 200
    gets_per_thread: int = 64

    def __post_init__(self) -> None:
        if self.items < 1 or self.buckets < 1:
            raise ConfigError("store must have items and buckets")
        if self.value_bytes < 8 or self.value_bytes % 64 != 0:
            raise ConfigError("value size must be a positive multiple of 64")
        if self.gets_per_thread < 1:
            raise ConfigError("need at least one GET per thread")

    @property
    def value_lines(self) -> int:
        return self.value_bytes // 64


def value_word(key: int, index: int) -> int:
    """The deterministic content of word ``index`` of ``key``'s value
    (lets tests verify end-to-end data integrity)."""
    return mix64(key * 31 + index)


class KvStore:
    """A chained hash table in simulated memory."""

    def __init__(
        self, params: MemcachedParams, base_addr: int, world: FlatMemory
    ) -> None:
        self.params = params
        self.base_addr = base_addr
        self.world = world
        self._entries_base = base_addr + params.buckets * WORD_BYTES
        self._values_base = self._entries_base + params.items * _ENTRY_BYTES
        self.max_chain = 0

    @staticmethod
    def size_bytes(params: MemcachedParams) -> int:
        return (
            params.buckets * WORD_BYTES
            + params.items * _ENTRY_BYTES
            + params.items * params.value_bytes
        )

    # -- layout ---------------------------------------------------------------

    def _bucket_addr(self, key: int) -> int:
        bucket = mix64(key) % self.params.buckets
        return self.base_addr + bucket * WORD_BYTES

    def _entry_addr(self, index: int) -> int:
        return self._entries_base + index * _ENTRY_BYTES

    def _value_addr(self, index: int) -> int:
        return self._values_base + index * self.params.value_bytes

    # -- functional build --------------------------------------------------------

    def populate(self, keys) -> None:
        """Insert every key (untimed setup).  Chains push at head."""
        world = self.world
        chain_len: dict[int, int] = {}
        for index, key in enumerate(keys):
            bucket_addr = self._bucket_addr(key)
            entry = self._entry_addr(index)
            world.write_word(entry + _ENTRY_KEY, key)
            world.write_word(entry + _ENTRY_VALUE, self._value_addr(index))
            world.write_word(entry + _ENTRY_NEXT, world.read_word(bucket_addr))
            world.write_word(bucket_addr, entry)
            for word_index in range(self.params.value_bytes // WORD_BYTES):
                world.write_word(
                    self._value_addr(index) + word_index * WORD_BYTES,
                    value_word(key, word_index),
                )
            bucket = mix64(key) % self.params.buckets
            chain_len[bucket] = chain_len.get(bucket, 0) + 1
            self.max_chain = max(self.max_chain, chain_len[bucket])

    def get_functional(self, key: int) -> list[int] | None:
        """Untimed GET (test oracle): the value words, or None."""
        entry = self.world.read_word(self._bucket_addr(key))
        while entry:
            if self.world.read_word(entry + _ENTRY_KEY) == key:
                value_addr = self.world.read_word(entry + _ENTRY_VALUE)
                return [
                    self.world.read_word(value_addr + i * WORD_BYTES)
                    for i in range(self.params.value_bytes // WORD_BYTES)
                ]
            entry = self.world.read_word(entry + _ENTRY_NEXT)
        return None

    # -- timed GET ------------------------------------------------------------------

    def get(self, ctx: AccessContext, key: int):
        """Timed GET through the device-access API.

        Chain walking is data-dependent (one read at a time); value
        retrieval batches one read per value line.
        """
        entry = yield from ctx.read(self._bucket_addr(key))
        while entry:
            stored_key = yield from ctx.read(entry + _ENTRY_KEY)
            if stored_key == key:
                value_addr = yield from ctx.read(entry + _ENTRY_VALUE)
                line_addrs = [
                    value_addr + line * 64 for line in range(self.params.value_lines)
                ]
                first_words = yield from ctx.read_batch(line_addrs)
                return first_words
            entry = yield from ctx.read(entry + _ENTRY_NEXT)
        return None


def memcached_get_thread(
    ctx: AccessContext,
    store: KvStore,
    keys: list[int],
    results: list,
):
    """One GET thread: look up each key, then run the work loop."""
    for key in keys:
        value = yield from store.get(ctx, key)
        results.append(value)
        yield from ctx.work(store.params.work_count)


def make_get_keys(params: MemcachedParams, thread_seed: int) -> list[int]:
    """A GET stream over the populated key space (all hits, like a
    warm cache; key ids are scrambled per thread)."""
    return [
        hash_with_seed(i, thread_seed * 104729 + 7) % params.items
        for i in range(params.gets_per_thread)
    ]


def install_memcached(
    system: System, params: MemcachedParams, threads_per_core: int
) -> dict[tuple[int, int], list]:
    """Build one store per core, populate it, spawn GET threads."""
    stores: dict[int, KvStore] = {}
    results: dict[tuple[int, int], list] = {}

    def factory(ctx: AccessContext, core_id: int, slot: int):
        if core_id not in stores:
            base = system.alloc_data(core_id, KvStore.size_bytes(params))
            store = KvStore(params, base, system.world)
            store.populate(range(params.items))
            stores[core_id] = store
        out: list = []
        results[(core_id, slot)] = out
        keys = make_get_keys(params, thread_seed=thread_seed(core_id, slot))
        return memcached_get_thread(ctx, stores[core_id], keys, out)

    system.spawn_per_core(threads_per_core, factory)
    return results
