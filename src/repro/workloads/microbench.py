"""The paper's microbenchmark (section IV-C).

"Its main loop includes a device access followed by a set of 'work'
instructions that depend on the result of the device access ... the
work comprises only arithmetic instructions, but is constructed with
sufficiently-many internal dependencies so as to limit its IPC to ~1.4
on a 4-wide out-of-order machine.  The microbenchmark supports
changing the number of work instructions performed per device access
(the work-count) ... we make each access go to a different cache line.
"

MLP variants ("n-read", Figure 6) issue ``reads_per_batch`` accesses
per work block with "a single context switch after issuing multiple
prefetches".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ConfigError
from repro.host.system import System
from repro.runtime.api import AccessContext

__all__ = ["MicrobenchSpec", "microbench_thread", "install_microbench"]


@dataclass(frozen=True)
class MicrobenchSpec:
    """Parameters of the microbenchmark loop."""

    #: Work instructions per loop iteration (the paper's work-count).
    work_count: int = 200
    #: Independent reads per iteration (1 = the base microbenchmark,
    #: 2/4 = the "2-read"/"4-read" MLP variants).
    reads_per_batch: int = 1
    #: Posted writes per iteration (0 in the paper's experiments; the
    #: write-extension benches exercise section VII's future work).
    writes_per_batch: int = 0
    #: Loop iterations; None runs forever (windowed measurement).
    iterations: Optional[int] = None
    #: Distinct cache lines each thread cycles through.  Sized so lines
    #: are evicted from L1 long before they are revisited, preserving
    #: "each access goes to a different cache line".
    lines_per_thread: int = 1024

    def __post_init__(self) -> None:
        if self.work_count < 0:
            raise ConfigError("work count cannot be negative")
        if self.reads_per_batch < 1:
            raise ConfigError("need at least one read per batch")
        if self.writes_per_batch < 0:
            raise ConfigError("writes per batch cannot be negative")
        if self.iterations is not None and self.iterations < 1:
            raise ConfigError("iterations must be positive (or None)")
        if self.lines_per_thread < self.reads_per_batch:
            raise ConfigError("per-thread region smaller than one batch")


def _address_stream(
    base: int, line_bytes: int, lines: int, start_index: int = 0
) -> Iterator[int]:
    """Distinct-line addresses, cycling through the thread's region."""
    index = start_index
    while True:
        yield base + (index % lines) * line_bytes
        index += 1


def microbench_thread(ctx: AccessContext, spec: MicrobenchSpec, region_base: int,
                      line_bytes: int = 64, phase: int = 0):
    """One microbenchmark thread: access batch, then dependent work.

    ``phase`` offsets the thread's position in its region so that
    concurrent threads do not walk cache-set-aliased addresses in
    lockstep (per-thread regions are multiples of the L1 way span, so
    without a phase shift every thread's current line would land in
    the same set and evict its siblings before their loads arrive).
    """
    addresses = _address_stream(
        region_base, line_bytes, spec.lines_per_thread, start_index=phase
    )
    write_addresses = _address_stream(
        region_base, line_bytes, spec.lines_per_thread,
        start_index=phase + spec.lines_per_thread // 2,
    )
    iteration = 0
    while spec.iterations is None or iteration < spec.iterations:
        batch = [next(addresses) for _ in range(spec.reads_per_batch)]
        tokens = yield from ctx.read_batch_async(batch)
        yield from ctx.work(spec.work_count, after=tokens)
        for _ in range(spec.writes_per_batch):
            yield from ctx.write(next(write_addresses), iteration)
        iteration += 1


def install_microbench(
    system: System, spec: MicrobenchSpec, threads_per_core: int
) -> None:
    """Spawn the microbenchmark on every core of ``system``.

    Each thread receives its own region of distinct cache lines, carved
    from its core's data placement (device partition, or host DRAM for
    the baseline), so no two accesses in flight ever share a line.
    """
    line_bytes = system.config.cache.line_bytes
    region_bytes = spec.lines_per_thread * line_bytes

    def factory(ctx: AccessContext, core_id: int, slot: int):
        base = system.alloc_data(core_id, region_bytes)
        return microbench_thread(ctx, spec, base, line_bytes, phase=slot * 17)

    system.spawn_per_core(threads_per_core, factory)
