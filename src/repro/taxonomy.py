"""Table I: the paper's taxonomy of latency-hiding mechanisms.

"Common hardware and software latency-hiding mechanisms in modern
systems" -- three paradigms (caching, bulk transfer, overlapping), each
with hardware and software instances.  The table is qualitative, so
"reproducing" it means two things here:

1. the table itself, as structured data with a text renderer
   (``python -m repro table1``);
2. a cross-reference from each entry to the model component that
   implements (or deliberately models the absence of) it, verified by
   ``benchmarks/test_table1_taxonomy.py`` so the taxonomy and the
   codebase cannot drift apart.
"""

from __future__ import annotations

import io
from dataclasses import dataclass
from typing import Optional

__all__ = ["TableEntry", "TABLE_I", "render_table_i"]


@dataclass(frozen=True)
class TableEntry:
    """One mechanism from Table I, mapped to its model component."""

    paradigm: str
    layer: str  # "HW" or "SW"
    mechanism: str
    #: Dotted path of the implementing attribute/class, or None when
    #: the mechanism is out of the modeled scope (documented why).
    implemented_by: Optional[str]
    note: str = ""


TABLE_I: tuple[TableEntry, ...] = (
    # -- Caching ---------------------------------------------------------------
    TableEntry(
        "Caching", "HW", "On-chip caches",
        "repro.cpu.cache.L1Cache",
        "set-associative LRU; deeper levels folded into the DRAM latency",
    ),
    TableEntry(
        "Caching", "HW", "Prefetch buffers",
        "repro.cpu.lfb.LineFillBuffers",
        "the 10-entry structure at the heart of Figure 3",
    ),
    TableEntry(
        "Caching", "SW", "OS page cache",
        None,
        "block-device caching is irrelevant to fine-grained memory-mapped access",
    ),
    # -- Bulk transfer -----------------------------------------------------------
    TableEntry(
        "Bulk transfer", "HW", "64-128B cache lines",
        "repro.config.CacheConfig",
        "64-byte lines throughout; every device response is one line",
    ),
    TableEntry(
        "Bulk transfer", "SW", "Multi-KB transfers from disk and network",
        "repro.device.emulator.DmaEngine",
        "bulk preload of replay traces; fine-grained access is the study's point",
    ),
    # -- Overlapping -----------------------------------------------------------
    TableEntry(
        "Overlapping", "HW", "Super-scalar execution",
        "repro.config.CpuConfig",
        "dispatch_width=4 front end",
    ),
    TableEntry(
        "Overlapping", "HW", "Out-of-order execution",
        "repro.cpu.rob.ReorderBuffer",
        "bounded window, in-order retirement -- Figure 2's limiter",
    ),
    TableEntry(
        "Overlapping", "HW", "Branch speculation",
        None,
        "not modeled; wrong-path effects injected directly in replay tests",
    ),
    TableEntry(
        "Overlapping", "HW", "Prefetching",
        "repro.cpu.hwprefetch.StridePrefetcher",
        "the unit the paper disables; its interference is an ablation here",
    ),
    TableEntry(
        "Overlapping", "HW", "Hardware multithreading",
        "repro.host.system.System",
        "SMT contexts share the front end and L1/LFB stack",
    ),
    TableEntry(
        "Overlapping", "SW", "Kernel-mode context switch",
        "repro.runtime.api.KernelQueueContext",
        "microsecond-scale costs; shown dominated in an ablation",
    ),
    TableEntry(
        "Overlapping", "SW", "User-mode context switch",
        "repro.runtime.driver.CoreRuntime",
        "the 20-50 ns switch the paper's mechanism is built on",
    ),
)


def render_table_i() -> str:
    """Table I as aligned text, with the implementing components."""
    out = io.StringIO()
    out.write("Table I: latency-hiding mechanisms (paper section II-B)\n")
    header = (
        f"{'Paradigm':<15}{'Layer':<7}{'Mechanism':<42}{'Modeled by':<40}"
    )
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    previous_paradigm = None
    for entry in TABLE_I:
        paradigm = entry.paradigm if entry.paradigm != previous_paradigm else ""
        previous_paradigm = entry.paradigm
        where = entry.implemented_by or f"(out of scope: {entry.note})"
        out.write(
            f"{paradigm:<15}{entry.layer:<7}{entry.mechanism:<42}{where:<40}\n"
        )
    return out.getvalue()


def resolve(dotted: str):
    """Import the object a table entry points at (verification hook)."""
    module_path, _, attribute = dotted.rpartition(".")
    module = __import__(module_path, fromlist=[attribute])
    return getattr(module, attribute)
