"""A memory-bus-attached microsecond-latency device (section V-B).

The paper's implications: the chip-level queue on the PCIe path holds
14 in-flight accesses, but "a larger number of simultaneous DRAM
accesses can be outstanding from multiple cores (e.g., at least 48)"
-- so attaching the device like a DRAM channel (QPI/DDR-style) removes
the 14-entry wall and every per-TLP overhead.

This device serves line reads directly at the uncore's edge through a
bandwidth-limited channel plus the configured device delay; requests
ride the (deep) DRAM-path-style queue instead of the PCIe one.
"""

from __future__ import annotations

from repro.config import DeviceConfig, HostDramConfig
from repro.cpu.uncore import MemoryTarget
from repro.interconnect.dram import DramChannel
from repro.memory import FlatMemory
from repro.sim import Event, Simulator
from repro.errors import ConfigError

__all__ = ["MemoryBusDevice"]


class MemoryBusDevice(MemoryTarget):
    """The emulated device, attached like a memory channel."""

    def __init__(
        self,
        sim: Simulator,
        device_config: DeviceConfig,
        bus_config: HostDramConfig,
        world: FlatMemory,
        internal_delay_ticks: int,
    ) -> None:
        if internal_delay_ticks < 0:
            raise ConfigError(
                f"device latency {device_config.total_latency_us} us is below "
                "the modeled memory-bus path latency"
            )
        self.sim = sim
        self.config = device_config
        self.world = world
        #: The channel models bus serialization; the device's media
        #: latency is the channel's fixed latency component.
        self.channel = DramChannel(
            sim,
            latency_ticks=internal_delay_ticks,
            bandwidth_bytes_per_s=bus_config.bandwidth_bytes_per_s,
            name="membus-device",
        )
        self.requests_served = 0
        self.writes_received = 0

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.requests_served", lambda: self.requests_served
        )
        registry.register(
            f"{prefix}.writes_received", lambda: self.writes_received
        )
        self.channel.register_metrics(registry, f"{prefix}.channel")

    def read_line(self, line_addr: int) -> Event:
        self.requests_served += 1
        data = self.world.read_line(line_addr)
        return self.channel.access(self.world.line_bytes, value=data)

    def write_line(self, store) -> Event:
        """Store-buffer sink: posted writes onto the device channel."""
        self.writes_received += 1
        return self.channel.post_write(store.num_bytes)

    # The System's diagnostics expect a delay-module-like attribute.
    @property
    def delay(self):
        return _NoDelayStats()


class _NoDelayStats:
    """Diagnostics stand-in: a memory-bus device has no delay module."""

    deadline_misses = 0
    released = 0
