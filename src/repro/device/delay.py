"""The emulator's delay module.

"Once a host request is matched by a replay module, a response is
enqueued in a delay module, which sends the response to the host via
PCIe after a configurable delay.  To ensure precise response timing,
incoming requests are timestamped before dispatch" (section IV-A).

Responses are released at ``arrival_time + delay`` -- or immediately,
if the data source (replay stream or on-demand DRAM read) only
produced the data after the deadline; such deadline misses are counted
because they are exactly the artifact the paper's streaming design
works to avoid.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigError
from repro.sim import Simulator

__all__ = ["DelayModule"]


class DelayModule:
    """Releases responses a fixed delay after their request arrived."""

    def __init__(
        self,
        sim: Simulator,
        delay_ticks: int,
        send: Callable[[Any], None],
        name: str = "delay",
    ) -> None:
        if delay_ticks < 0:
            raise ConfigError(f"{name}: negative delay {delay_ticks}")
        self.sim = sim
        self.delay_ticks = delay_ticks
        self.send = send
        self.name = name
        self.released = 0
        self.deadline_misses = 0
        self.worst_miss_ticks = 0
        self._pending = 0
        #: Optional observability hooks (None keeps hot paths untouched).
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid = 0

    def attach_tracer(self, tracer, pid: int, tid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid = tid

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(f"{prefix}.released", lambda: self.released)
        registry.register(
            f"{prefix}.deadline_misses", lambda: self.deadline_misses
        )
        registry.register(
            f"{prefix}.worst_miss_ticks", lambda: self.worst_miss_ticks
        )
        registry.register(f"{prefix}.queued", lambda: self.queued)

    def submit(self, response: Any, arrival_time: int) -> None:
        """Schedule ``response`` for release at ``arrival + delay``.

        ``arrival_time`` is the timestamp taken when the request
        reached the device; data may have become available later
        (deadline miss), in which case the response leaves now.

        Each release closes over its own payload rather than going
        through a module-level priority queue: the simulation kernel
        already fires timeouts in (tick, schedule) order, so a second
        ordered structure here would duplicate the scheduler's work --
        and same-tick responses still leave in submit order.
        """
        deadline = arrival_time + self.delay_ticks
        if deadline < self.sim.now:
            self.deadline_misses += 1
            self.worst_miss_ticks = max(
                self.worst_miss_ticks, self.sim.now - deadline
            )
            deadline = self.sim.now
        self._pending += 1
        # simlint: disable-next-line=SIM202 -- deadline is clamped to
        # sim.now by the miss branch above, so the delta is never negative
        release = self.sim.timeout(deadline - self.sim.now)

        def _release(_event, response=response, arrival=arrival_time) -> None:
            self._pending -= 1
            self.released += 1
            tracer = self.tracer
            if tracer is not None:
                tracer.complete(
                    "device",
                    self._trace_pid,
                    self._trace_tid,
                    f"{self.name}-hold",
                    arrival,
                    self.sim.now,
                    args={"missed": self.sim.now > arrival + self.delay_ticks},
                )
            self.send(response)

        release.add_callback(_release)

    @property
    def queued(self) -> int:
        return self._pending
