"""Top-level device emulators: the two FPGA designs of Figure 1.

* :class:`MmioEmulator` -- the memory-mapped design: the host's loads
  and prefetches arrive as PCIe read TLPs; data comes from the
  functional store, or (in replay mode) from per-core replay modules
  with an on-demand fallback; the delay module releases completions at
  the configured device latency.

* :class:`SwqEmulator` -- the software-managed-queue design: per-core
  doorbell registers trigger request fetchers that DMA descriptor
  bursts out of host memory; each served request produces a response
  data write followed by a completion-queue write.

* :class:`DmaEngine` -- bulk preload of recorded traces into on-board
  DRAM before a replay run.
"""

from __future__ import annotations

from typing import Optional

from repro.config import DeviceConfig, OnboardDramConfig, SwqConfig
from repro.device.delay import DelayModule
from repro.device.fetcher import DmaWriteRequest, RequestFetcher
from repro.device.ondemand import OnDemandModule
from repro.device.replay import AccessTrace, ReplayModule, ReplayStreamer
from repro.errors import ProtocolError
from repro.host.addressmap import AddressMap
from repro.interconnect.dram import DramChannel
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.memory import FlatMemory
from repro.runtime.queuepair import Completion, Descriptor, QueuePair
from repro.sim import Simulator
from repro.units import ns, transfer_ticks

__all__ = ["MmioEmulator", "SwqEmulator", "DmaEngine"]


def _onboard_channel(sim: Simulator, config: OnboardDramConfig, name: str) -> DramChannel:
    return DramChannel(
        sim,
        latency_ticks=ns(config.latency_ns),
        bandwidth_bytes_per_s=config.bandwidth_bytes_per_s,
        name=name,
    )


class MmioEmulator:
    """The memory-mapped (on-demand / prefetch) emulator design."""

    def __init__(
        self,
        sim: Simulator,
        device_config: DeviceConfig,
        onboard_config: OnboardDramConfig,
        link: PcieLink,
        address_map: AddressMap,
        world: FlatMemory,
        internal_delay_ticks: int,
    ) -> None:
        self.sim = sim
        self.config = device_config
        self.onboard_config = onboard_config
        self.link = link
        self.map = address_map
        self.world = world
        self.delay = DelayModule(
            sim, internal_delay_ticks, self._send_completion, name="mmio-delay"
        )
        # Separate on-board DRAM channels for replay streaming and the
        # on-demand dataset copy, as in the paper's design.
        self.stream_channel = _onboard_channel(sim, onboard_config, "obd-stream")
        self.ondemand_channel = _onboard_channel(sim, onboard_config, "obd-demand")
        self.on_demand = OnDemandModule(sim, self.ondemand_channel, world)
        self._replay: dict[int, ReplayModule] = {}
        self._recording: Optional[dict[int, AccessTrace]] = None
        self.requests_served = 0
        self.writes_received = 0
        self.write_bytes_received = 0
        link.downstream.set_receiver(self.on_tlp)

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.requests_served", lambda: self.requests_served
        )
        registry.register(
            f"{prefix}.writes_received", lambda: self.writes_received
        )
        registry.register(
            f"{prefix}.write_bytes_received",
            lambda: self.write_bytes_received,
        )
        self.delay.register_metrics(registry, f"{prefix}.delay")
        self.stream_channel.register_metrics(registry, f"{prefix}.obd_stream")
        self.ondemand_channel.register_metrics(registry, f"{prefix}.obd_demand")

    # -- replay methodology -----------------------------------------------------

    def start_recording(self) -> dict[int, AccessTrace]:
        """Record the (partition-relative) access sequence of each core
        during a functional first run (the paper's run #1)."""
        self._recording = {core: AccessTrace() for core in range(self.map.cores)}
        return self._recording

    def stop_recording(self) -> dict[int, AccessTrace]:
        if self._recording is None:
            raise ProtocolError("recording was never started")
        traces, self._recording = self._recording, None
        return traces

    def load_traces(self, traces: dict[int, AccessTrace], streamed: bool = True) -> None:
        """Arm replay mode with per-core traces (the paper's run #2).

        With ``streamed=True`` the windows refill through the on-board
        DRAM streaming channel; otherwise refills are instantaneous
        (an idealized emulator, useful to isolate streaming effects).
        """
        if not traces:
            raise ProtocolError("replay mode needs at least one core's trace")
        for core, trace in traces.items():
            source: ReplayStreamer | AccessTrace
            if streamed:
                source = ReplayStreamer(
                    self.sim,
                    trace,
                    self.stream_channel,
                    fifo_depth=self.onboard_config.stream_depth_lines,
                    burst_entries=self.onboard_config.stream_burst_entries,
                    name=f"stream{core}",
                )
            else:
                source = trace
            self._replay[core] = ReplayModule(
                self.sim,
                source,
                window_size=self.config.replay_window,
                name=f"replay{core}",
            )

    @property
    def replay_modules(self) -> dict[int, ReplayModule]:
        return self._replay

    # -- request path -------------------------------------------------------------

    def on_tlp(self, tlp: Tlp) -> None:
        if tlp.kind is TlpKind.MEM_READ:
            self._handle_read(tlp)
        elif tlp.kind is TlpKind.MEM_WRITE:
            # Posted data writes (write-through stores); functional
            # contents were applied at the writing core in program
            # order, so the device only accounts them.
            self.writes_received += 1
            self.write_bytes_received += tlp.payload_bytes
        else:
            raise ProtocolError(f"MMIO emulator got unexpected TLP {tlp!r}")

    def _handle_read(self, tlp: Tlp) -> None:
        arrival = self.sim.now
        line_addr = tlp.address
        self.requests_served += 1
        core = self.map.core_of_offset(self.map.bar_offset(line_addr))
        if self._replay:
            self._serve_replay(core, line_addr, tlp, arrival)
        else:
            data = self.world.read_line(line_addr)
            if self._recording is not None:
                offset = self.map.bar_offset(line_addr)
                self._recording[core].record(
                    self.map.partition_offset(core, offset), data
                )
            self.delay.submit((tlp, data), arrival)

    def _serve_replay(self, core: int, line_addr: int, tlp: Tlp, arrival: int) -> None:
        replay = self._replay.get(core)
        if replay is None:
            raise ProtocolError(f"no replay trace loaded for core {core}")
        relative = self.map.partition_offset(core, self.map.bar_offset(line_addr))
        data = replay.lookup(relative)
        if data is not None:
            self.delay.submit((tlp, data), arrival)
        else:
            # Spurious (wrong-path) request: serve from the on-demand
            # dataset copy, still aiming for the same deadline.
            self.sim.process(
                self._serve_on_demand(line_addr, tlp, arrival),
                name=f"ondemand-{line_addr:#x}",
            )

    def _serve_on_demand(self, line_addr: int, tlp: Tlp, arrival: int):
        data = yield self.on_demand.read_line(line_addr)
        self.delay.submit((tlp, data), arrival)

    def _send_completion(self, response: tuple[Tlp, bytes]) -> None:
        request, data = response
        self.link.upstream.send(
            Tlp(
                TlpKind.COMPLETION,
                address=request.address,
                payload_bytes=self.map.line_bytes,
                tag=request.tag,
                requester="mmio-emulator",
                data=data,
            )
        )


class SwqEmulator:
    """The software-managed-queue emulator design."""

    def __init__(
        self,
        sim: Simulator,
        device_config: DeviceConfig,
        onboard_config: OnboardDramConfig,
        swq_config: SwqConfig,
        link: PcieLink,
        address_map: AddressMap,
        world: FlatMemory,
        queue_pairs: list[QueuePair],
        ring_addrs: list[int],
        internal_delay_ticks: int,
    ) -> None:
        if len(queue_pairs) != address_map.cores:
            raise ProtocolError("need one queue pair per core")
        self.sim = sim
        self.config = device_config
        self.swq_config = swq_config
        self.link = link
        self.map = address_map
        self.world = world
        self.delay = DelayModule(
            sim, internal_delay_ticks, self._send_response, name="swq-delay"
        )
        self.queue_pairs = queue_pairs
        self.fetchers = [
            RequestFetcher(
                sim,
                core,
                queue_pairs[core],
                link,
                swq_config,
                ring_addr=ring_addrs[core],
                serve=self._serve,
            )
            for core in range(address_map.cores)
        ]
        self.requests_served = 0
        self.writes_served = 0
        link.downstream.set_receiver(self.on_tlp)

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.requests_served", lambda: self.requests_served
        )
        registry.register(f"{prefix}.writes_served", lambda: self.writes_served)
        self.delay.register_metrics(registry, f"{prefix}.delay")
        for fetcher in self.fetchers:
            fetcher.register_metrics(
                registry, f"{prefix}.fetcher{fetcher.core_id}"
            )
        for queue_pair in self.queue_pairs:
            queue_pair.register_metrics(
                registry, f"{prefix}.qp{queue_pair.core_id}"
            )

    def on_tlp(self, tlp: Tlp) -> None:
        if tlp.kind is TlpKind.MEM_WRITE:
            core = self.map.doorbell_core(tlp.address)
            if core is None:
                raise ProtocolError(
                    f"SWQ emulator got write to non-doorbell {tlp.address:#x}"
                )
            self.fetchers[core].ring_doorbell()
        elif tlp.kind is TlpKind.COMPLETION:
            # A descriptor DMA read returning.  Route by requester name.
            for fetcher in self.fetchers:
                if tlp.requester == fetcher.name:
                    fetcher.deliver_completion(tlp)
                    return
            raise ProtocolError(f"completion for unknown fetcher: {tlp.requester}")
        else:
            raise ProtocolError(f"SWQ emulator got unexpected TLP {tlp!r}")

    def _serve(self, descriptor: Descriptor, arrival: int) -> None:
        """Emulate the storage access for one descriptor."""
        self.requests_served += 1
        if descriptor.is_write:
            # Posted write: the medium absorbs it; no response data,
            # no completion entry (functional contents were applied at
            # the writing core in program order).
            self.writes_served += 1
            return
        line_addr = descriptor.device_addr - (
            descriptor.device_addr % self.map.line_bytes
        )
        data = self.world.read_line(line_addr)
        self.delay.submit((descriptor, data), arrival)

    def _send_response(self, response: tuple[Descriptor, bytes]) -> None:
        """Write the data line, then the completion entry (ordered)."""
        descriptor, data = response
        self.link.upstream.send(
            Tlp(
                TlpKind.MEM_WRITE,
                address=descriptor.response_addr,
                payload_bytes=self.map.line_bytes,
                requester="swq-emulator",
                data=data,
                context=DmaWriteRequest(),
            )
        )
        queue_pair = self.queue_pairs[descriptor.core_id]
        self.link.upstream.send(
            Tlp(
                TlpKind.MEM_WRITE,
                address=descriptor.response_addr + self.map.line_bytes,
                payload_bytes=self.swq_config.completion_bytes,
                requester="swq-emulator",
                context=DmaWriteRequest(
                    on_commit=lambda: self._post_completion(
                        queue_pair, descriptor, data
                    )
                ),
            )
        )

    def _post_completion(
        self, queue_pair: QueuePair, descriptor: Descriptor, data: bytes
    ) -> None:
        """Build the completion entry at DMA-commit time so its
        ``posted_at`` stamp is the tick it became host-visible."""
        queue_pair.device_post_completion(
            Completion(
                thread_id=descriptor.thread_id,
                device_addr=descriptor.device_addr,
                response_addr=descriptor.response_addr,
                data=data,
                posted_at=self.sim.now,
            )
        )



class DmaEngine:
    """Bulk preload of recorded traces into the emulator's on-board
    DRAM (the paper loads traces "using a DMA engine" before run #2)."""

    #: Preload transfers move in host-page-sized chunks.
    CHUNK_BYTES = 4096

    def __init__(
        self,
        sim: Simulator,
        link: PcieLink,
        onboard_channel: DramChannel,
    ) -> None:
        self.sim = sim
        self.link = link
        self.onboard_channel = onboard_channel
        self.bytes_loaded = 0

    def preload(self, trace: AccessTrace):
        """Generator: push one trace into on-board DRAM; returns ticks
        spent (also advances simulated time)."""
        started = self.sim.now
        remaining = trace.storage_bytes
        bandwidth = self.link.config.bandwidth_bytes_per_s
        while remaining > 0:
            chunk = min(self.CHUNK_BYTES, remaining)
            remaining -= chunk
            # Wire time over PCIe, then the on-board DRAM write.
            yield self.sim.timeout(
                transfer_ticks(chunk + self.link.config.header_bytes, bandwidth)
            )
            yield self.onboard_channel.access(chunk)
            self.bytes_loaded += chunk
        return self.sim.now - started
