"""Access-trace recording and the emulator's replay modules.

The FPGA's on-board DRAM is far too slow to serve random cache-line
reads at emulated-device rates, so the paper records each experiment's
access sequence, preloads it, and *streams* it ahead of the host's
requests (section IV-A).  Deviations between the recorded and observed
sequences -- CPU cache hits (entries never requested), reordering, and
wrong-path speculative accesses (requests never recorded) -- are
absorbed by a sliding window with an age-based associative lookup and
an on-demand fallback.

This module implements the trace, the streamer, and the replay window;
:mod:`repro.device.emulator` wires them to the request path.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Optional

from repro.errors import ReplayError
from repro.interconnect.dram import DramChannel
from repro.sim import Simulator, Store

__all__ = ["TraceEntry", "AccessTrace", "ReplayStreamer", "ReplayModule"]


@dataclass(frozen=True)
class TraceEntry:
    """One recorded access: a line address and its contents."""

    line_addr: int
    data: bytes


class AccessTrace:
    """An ordered record of one core's line reads.

    Recorded during a functional-mode run, preloaded into the
    emulator's on-board DRAM, and replayed during the measured run.
    """

    #: On-board DRAM footprint of one entry: 64 B of data + 8 B address.
    ENTRY_BYTES = 72

    def __init__(self, entries: Optional[Iterable[TraceEntry]] = None) -> None:
        self.entries: list[TraceEntry] = list(entries or [])

    def record(self, line_addr: int, data: bytes) -> None:
        self.entries.append(TraceEntry(line_addr, data))

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    @property
    def storage_bytes(self) -> int:
        """Bytes of on-board DRAM the preloaded trace occupies."""
        return len(self.entries) * self.ENTRY_BYTES

    # -- persistence -------------------------------------------------------------
    #
    # Traces can be captured once (an expensive functional run) and
    # replayed across many experiments, so they serialize to a compact
    # binary format: a header, then per entry an 8-byte little-endian
    # address followed by the line bytes.

    _MAGIC = b"KMTRACE1"

    def save(self, path) -> int:
        """Write the trace to ``path``; returns the bytes written."""
        import struct

        line_bytes = len(self.entries[0].data) if self.entries else 64
        blob = bytearray()
        blob += self._MAGIC
        blob += struct.pack("<IQ", line_bytes, len(self.entries))
        for entry in self.entries:
            if len(entry.data) != line_bytes:
                raise ReplayError("trace entries have inconsistent line sizes")
            blob += struct.pack("<Q", entry.line_addr)
            blob += entry.data
        with open(path, "wb") as handle:
            handle.write(blob)
        return len(blob)

    @classmethod
    def load(cls, path) -> "AccessTrace":
        """Read a trace previously written by :meth:`save`."""
        import struct

        with open(path, "rb") as handle:
            blob = handle.read()
        if blob[: len(cls._MAGIC)] != cls._MAGIC:
            raise ReplayError(f"{path}: not a trace file (bad magic)")
        offset = len(cls._MAGIC)
        line_bytes, count = struct.unpack_from("<IQ", blob, offset)
        offset += struct.calcsize("<IQ")
        expected = offset + count * (8 + line_bytes)
        if len(blob) != expected:
            raise ReplayError(
                f"{path}: truncated trace ({len(blob)} bytes, expected {expected})"
            )
        entries = []
        for _ in range(count):
            (line_addr,) = struct.unpack_from("<Q", blob, offset)
            offset += 8
            data = bytes(blob[offset : offset + line_bytes])
            offset += line_bytes
            entries.append(TraceEntry(line_addr, data))
        return cls(entries)

    def with_offset(self, offset: int) -> "AccessTrace":
        """A copy with every address shifted by ``offset``.

        "We reuse the same recorded access sequence (after applying an
        address offset) to handle requests from multiple cores"
        (section IV-A).
        """
        return AccessTrace(
            TraceEntry(entry.line_addr + offset, entry.data)
            for entry in self.entries
        )


class ReplayStreamer:
    """Streams trace entries out of on-board DRAM ahead of demand.

    A pump process bulk-reads entries from the (slow, bandwidth-bound)
    on-board DRAM channel into a bounded prefetch FIFO; the replay
    window refills from the FIFO.  If the host outruns the stream, the
    window starves and responses miss their deadlines -- the failure
    mode the paper's design avoids by reading "well in advance".
    """

    def __init__(
        self,
        sim: Simulator,
        trace: AccessTrace,
        channel: DramChannel,
        fifo_depth: int,
        burst_entries: int = 16,
        name: str = "replay-stream",
    ) -> None:
        if burst_entries < 1:
            raise ReplayError(f"{name}: burst must be >= 1")
        self.sim = sim
        self.trace = trace
        self.channel = channel
        self.burst_entries = burst_entries
        self.fifo: Store = Store(sim, capacity=fifo_depth, name=f"{name}-fifo")
        self.streamed = 0
        self.exhausted = False
        sim.process(self._pump(), name=name)

    def _pump(self):
        entries = self.trace.entries
        index = 0
        while index < len(entries):
            burst = entries[index : index + self.burst_entries]
            index += len(burst)
            # One bulk DRAM read covers the whole burst -- the latency
            # amortizes, which is what lets the stream outrun the host.
            yield self.channel.access(
                AccessTrace.ENTRY_BYTES * len(burst), value=None
            )
            for entry in burst:
                yield self.fifo.put(entry)  # blocks while the FIFO is full
                self.streamed += 1
        self.exhausted = True

    def try_next(self) -> Optional[TraceEntry]:
        ok, entry = self.fifo.try_get()
        return entry if ok else None


@dataclass
class _WindowSlot:
    entry: TraceEntry
    skip_age: int = 0


class ReplayModule:
    """Sliding-window, age-based associative lookup over a trace.

    * A request matching a window entry consumes it and ages every
      older entry (they were *skipped* -- most likely CPU cache hits).
    * Skipped entries are kept "temporarily ... to ensure they are
      found in case of access reordering", then evicted once their
      skip age exceeds ``max_skip_age``.
    * A request matching nothing is *spurious* (wrong-path) and must be
      served by the on-demand module -- the caller handles that when
      :meth:`lookup` returns ``None``.
    """

    def __init__(
        self,
        sim: Simulator,
        source: ReplayStreamer | AccessTrace,
        window_size: int,
        max_skip_age: int = 16,
        name: str = "replay",
    ) -> None:
        if window_size < 1:
            raise ReplayError(f"{name}: window must hold at least one entry")
        if max_skip_age < 1:
            raise ReplayError(f"{name}: max skip age must be >= 1")
        self.sim = sim
        self.name = name
        self.window_size = window_size
        self.max_skip_age = max_skip_age
        self._window: Deque[_WindowSlot] = deque()
        if isinstance(source, ReplayStreamer):
            self._streamer: Optional[ReplayStreamer] = source
            self._pending: Deque[TraceEntry] = deque()
        else:
            self._streamer = None
            self._pending = deque(source.entries)
        # Statistics mirroring the paper's deviation taxonomy.
        self.matches = 0
        self.catchup_pulls = 0
        self.in_order_matches = 0
        self.reordered_matches = 0
        self.skipped_entries = 0
        self.spurious_requests = 0
        self.window_starved = 0

    def _refill(self) -> None:
        while len(self._window) < self.window_size:
            entry = self._next_entry()
            if entry is None:
                return
            self._window.append(_WindowSlot(entry))

    def lookup(self, line_addr: int) -> Optional[bytes]:
        """Match a host request against the window, oldest first.

        On a window miss, the module slides forward by up to one
        window's worth of fresh entries looking for the request (long
        runs of recorded accesses absorbed by the CPU caches would
        otherwise wedge the window).  Entries the slide passes stay
        temporarily retained for reordered requests, aging out after
        ``max_skip_age`` passed-over lookups.  A request matching
        nothing even after the slide is spurious (wrong-path) and is
        served by the on-demand module (the caller handles ``None``).
        """
        self._refill()
        index = self._scan(line_addr, start=0)
        if index is None:
            scanned = len(self._window)
            index = self._slide_and_search(line_addr, scanned)
        if index is None:
            self.spurious_requests += 1
            for slot in self._window:
                slot.skip_age += 1
            self._evict_aged()
            self._trim()
            self._refill()
            return None
        self.matches += 1
        if index == 0:
            self.in_order_matches += 1
        else:
            self.reordered_matches += 1
        matched = self._window[index].entry
        del self._window[index]
        # Entries older than the match were skipped this round; retire
        # the ones that have been skipped too many times.
        for older in list(self._window)[:index]:
            older.skip_age += 1
        self._evict_aged()
        self._trim()
        self._refill()
        return matched.data

    def _scan(self, line_addr: int, start: int) -> Optional[int]:
        for index in range(start, len(self._window)):
            if self._window[index].entry.line_addr == line_addr:
                return index
        return None

    def _slide_and_search(self, line_addr: int, scanned: int) -> Optional[int]:
        """Admit up to ``window_size`` fresh entries, checking each."""
        for _pull in range(self.window_size):
            entry = self._next_entry()
            if entry is None:
                return None
            self._window.append(_WindowSlot(entry))
            self.catchup_pulls += 1
            if entry.line_addr == line_addr:
                return len(self._window) - 1
        return None

    def _next_entry(self) -> Optional[TraceEntry]:
        if self._streamer is not None:
            entry = self._streamer.try_next()
            if entry is None and not self._streamer.exhausted:
                self.window_starved += 1
            return entry
        if self._pending:
            return self._pending.popleft()
        return None

    def _evict_aged(self) -> None:
        while self._window and self._window[0].skip_age >= self.max_skip_age:
            self._window.popleft()
            self.skipped_entries += 1

    def _trim(self) -> None:
        """Bound retention after catch-up slides: at most two windows'
        worth of entries stay resident."""
        while len(self._window) > 2 * self.window_size:
            self._window.popleft()
            self.skipped_entries += 1

    @property
    def window_occupancy(self) -> int:
        return len(self._window)

    @property
    def remaining(self) -> int:
        """Entries not yet admitted to the window."""
        if self._streamer is not None:
            return len(self._streamer.trace) - self._streamer.streamed
        return len(self._pending)
