"""The emulator's on-demand read module.

"When the replay module cannot match a host request within the lookup
window, the request is sent to the on-demand module, which reads the
data from a copy of the dataset stored in a separate on-board DRAM"
(section IV-A).  It is also the *only* data source in a hypothetical
emulator without replay -- an ablation here shows that design collapses
under parallel requests, which is why the paper built replay.
"""

from __future__ import annotations

from repro.interconnect.dram import DramChannel
from repro.memory import FlatMemory
from repro.sim import Event, Simulator

__all__ = ["OnDemandModule"]


class OnDemandModule:
    """Random cache-line reads from a dataset copy in on-board DRAM."""

    def __init__(
        self,
        sim: Simulator,
        channel: DramChannel,
        memory: FlatMemory,
        address_offset: int = 0,
        name: str = "on-demand",
    ) -> None:
        self.sim = sim
        self.channel = channel
        self.memory = memory
        self.address_offset = address_offset
        self.name = name
        self.reads = 0

    def read_line(self, line_addr: int) -> Event:
        """Fetch a line from the dataset copy; fires with the bytes."""
        self.reads += 1
        data = self.memory.read_line(line_addr + self.address_offset)
        return self.channel.access(self.memory.line_bytes, value=data)
