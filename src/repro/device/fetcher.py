"""The emulator's per-core request fetcher (software-queue interface).

Section IV-A: "After adding a request to the request queue, the host
software triggers the request fetcher by performing an MMIO write to
the corresponding doorbell.  Once triggered, the request fetcher
continuously performs DMA reads of the request queue from host memory
... the request fetcher retrieves descriptors in bursts of eight ...
and continues reading so long as at least one new descriptor is
retrieved during the last burst.  When no new descriptors are
retrieved on a burst, the request fetchers update an in-memory flag to
indicate to the host software that a doorbell is needed."

"Continuously" is implemented by keeping ``fetch_pipeline`` burst DMA
reads in flight, so descriptor throughput is not bottlenecked on one
PCIe round trip per burst.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.config import SwqConfig
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.runtime.queuepair import Descriptor, QueuePair
from repro.sim import Event, Simulator, Store

__all__ = ["DmaReadRequest", "DmaWriteRequest", "RequestFetcher"]


class DmaReadRequest:
    """Context of a device-initiated DMA read TLP.

    The host bridge performs the host-DRAM access, then calls
    ``read_fn`` to capture the memory contents *at read time* and
    returns them in a completion of ``reply_bytes`` payload.
    """

    __slots__ = ("reply_bytes", "read_fn")

    def __init__(self, reply_bytes: int, read_fn: Callable[[], object]) -> None:
        self.reply_bytes = reply_bytes
        self.read_fn = read_fn


class DmaWriteRequest:
    """Context of a device-initiated DMA write TLP.

    ``on_commit`` runs when the write lands in host DRAM (this is how
    completion entries become visible to the polling host software).
    """

    __slots__ = ("on_commit",)

    def __init__(self, on_commit: Callable[[], None] | None = None) -> None:
        self.on_commit = on_commit


class RequestFetcher:
    """One core's descriptor-fetch engine inside the device."""

    def __init__(
        self,
        sim: Simulator,
        core_id: int,
        queue_pair: QueuePair,
        link: PcieLink,
        config: SwqConfig,
        ring_addr: int,
        serve: Callable[[Descriptor, int], None],
        name: str = "",
    ) -> None:
        self.sim = sim
        self.core_id = core_id
        self.queue_pair = queue_pair
        self.link = link
        self.config = config
        self.ring_addr = ring_addr
        self.serve = serve
        self.name = name or f"fetcher{core_id}"
        self._wakeup: Event | None = None
        self._doorbell_latched = False
        self._replies: Store = Store(sim, name=f"{self.name}-replies")
        self.doorbells_received = 0
        self.bursts_issued = 0
        self.descriptors_fetched = 0
        self.empty_bursts = 0
        self.flag_writes = 0
        #: Optional observability hooks (None keeps hot paths untouched).
        #: Burst issue ticks pair FIFO with reply receipts (the link and
        #: host DRAM both serve in order), giving each burst's DMA
        #: round-trip duration.
        self.tracer = None
        self._trace_pid = 0
        self._trace_tid = 0
        self._burst_issued_at: deque[int] = deque()
        sim.process(self._run(), name=self.name)

    def attach_tracer(self, tracer, pid: int, tid: int) -> None:
        self.tracer = tracer
        self._trace_pid = pid
        self._trace_tid = tid

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(
            f"{prefix}.doorbells_received", lambda: self.doorbells_received
        )
        registry.register(f"{prefix}.bursts_issued", lambda: self.bursts_issued)
        registry.register(
            f"{prefix}.descriptors_fetched", lambda: self.descriptors_fetched
        )
        registry.register(f"{prefix}.empty_bursts", lambda: self.empty_bursts)
        registry.register(f"{prefix}.flag_writes", lambda: self.flag_writes)

    # -- host-facing ------------------------------------------------------------

    def ring_doorbell(self) -> None:
        """The doorbell MMIO write arrived (or the post-flag recheck
        found pending work)."""
        self.doorbells_received += 1
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(
                "swq",
                self._trace_pid,
                self._trace_tid,
                f"{self.name}-doorbell",
                self.sim.now,
            )
        if self._wakeup is not None:
            wakeup, self._wakeup = self._wakeup, None
            wakeup.succeed(None)
        else:
            # Not parked yet (mid-transition to idle, or actively
            # fetching): latch so the wakeup is not lost.
            self._doorbell_latched = True

    def deliver_completion(self, tlp: Tlp) -> None:
        """A descriptor-read completion returned from the host."""
        self._replies.put(tlp.data)

    # -- engine -------------------------------------------------------------------

    def _run(self):
        pipeline = self.config.fetch_pipeline if self.config.burst_reads else 1
        while True:
            # Idle until a doorbell restarts us (unless one already
            # arrived while we were winding down).
            if self._doorbell_latched:
                self._doorbell_latched = False
            else:
                self._wakeup = Event(self.sim)
                yield self._wakeup
            # Active phase: keep up to ``pipeline`` burst reads in
            # flight while descriptors keep coming.
            issuing = True
            outstanding = 0
            while issuing or outstanding > 0:
                while issuing and outstanding < pipeline:
                    self._issue_burst()
                    outstanding += 1
                batch = yield self._replies.get()
                outstanding -= 1
                self.descriptors_fetched += len(batch)
                tracer = self.tracer
                if tracer is not None and self._burst_issued_at:
                    tracer.complete(
                        "swq",
                        self._trace_pid,
                        self._trace_tid,
                        f"{self.name}-burst",
                        self._burst_issued_at.popleft(),
                        self.sim.now,
                        args={"descriptors": len(batch)},
                    )
                    tracer.counter(
                        "swq",
                        self._trace_pid,
                        f"{self.name}.ring",
                        self.sim.now,
                        {"pending": self.queue_pair.requests_pending},
                    )
                for descriptor in batch:
                    self.serve(descriptor, self.sim.now)
                if not batch:
                    self.empty_bursts += 1
                    issuing = False
            if self.config.doorbell_flag:
                # Tell the host to ring next time, then go idle.  The
                # flag write's commit rechecks the ring to close the
                # enqueue/flag race.
                yield from self._write_doorbell_flag()

    def _issue_burst(self) -> None:
        """Send one DMA burst read of the request ring."""
        burst = self.config.fetch_burst if self.config.burst_reads else 1
        context = DmaReadRequest(
            reply_bytes=burst * self.config.descriptor_bytes,
            read_fn=lambda: self.queue_pair.device_fetch(burst),
        )
        self.bursts_issued += 1
        if self.tracer is not None:
            self._burst_issued_at.append(self.sim.now)
        self.link.upstream.send(
            Tlp(
                TlpKind.MEM_READ,
                address=self.ring_addr,
                payload_bytes=0,
                requester=self.name,
                context=context,
            )
        )

    def _write_doorbell_flag(self):
        """Post the in-memory doorbell-request flag."""
        self.flag_writes += 1
        committed = Event(self.sim)

        def on_commit() -> None:
            if self.queue_pair.requests_pending:
                # Work raced in while we were going idle: restart
                # instead of publishing the flag.
                self.ring_doorbell()
            else:
                self.queue_pair.device_set_doorbell_flag()
            committed.succeed(None)

        self.link.upstream.send(
            Tlp(
                TlpKind.MEM_WRITE,
                address=self.ring_addr,
                payload_bytes=8,
                requester=self.name,
                context=DmaWriteRequest(on_commit),
            )
        )
        yield committed
