"""The FPGA-based microsecond-latency device emulator (section IV-A)."""

from repro.device.delay import DelayModule
from repro.device.emulator import DmaEngine, MmioEmulator, SwqEmulator
from repro.device.fetcher import DmaReadRequest, DmaWriteRequest, RequestFetcher
from repro.device.ondemand import OnDemandModule
from repro.device.replay import AccessTrace, ReplayModule, ReplayStreamer, TraceEntry

__all__ = [
    "AccessTrace",
    "DelayModule",
    "DmaEngine",
    "DmaReadRequest",
    "DmaWriteRequest",
    "MmioEmulator",
    "OnDemandModule",
    "ReplayModule",
    "ReplayStreamer",
    "RequestFetcher",
    "SwqEmulator",
    "TraceEntry",
]
