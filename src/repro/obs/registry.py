"""A hierarchical metrics registry over the simulation probes.

Components register their :class:`~repro.sim.trace.Counter` /
:class:`~repro.sim.trace.TimeWeighted` /
:class:`~repro.sim.trace.LatencyStat` probes (or plain zero-argument
callables, rendered as gauges) under dotted hierarchical names --
``core0.lfb.in_flight``, ``pcie.upstream.util`` -- and a single
:meth:`MetricsRegistry.snapshot` renders everything to one JSON-able
dict, in the spirit of gem5's stat dumps.

The registry is *pull-based*: registration stores a reference to the
live probe, so building a registry costs nothing per simulated event
and a snapshot can be taken at any simulated time.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, Union

from repro.errors import ConfigError
from repro.sim.trace import Counter, LatencyStat, TimeWeighted

__all__ = ["MetricsRegistry", "Probe"]

Probe = Union[Counter, LatencyStat, TimeWeighted, Callable[[], Any]]


def _finite(value: float) -> Any:
    """NaN is not valid strict JSON; render it as null."""
    if isinstance(value, float) and math.isnan(value):
        return None
    return value


def _render(probe: Probe, now: int) -> dict:
    if isinstance(probe, Counter):
        return {
            "type": "counter",
            "total": probe.total,
            "windowed": probe.windowed,
        }
    if isinstance(probe, LatencyStat):
        # percentile()/jitter are window-aware: inside a measurement
        # window they report from the warmup-excluding reservoir.
        return {
            "type": "latency",
            "count": probe.count,
            "mean": _finite(probe.mean),
            "min": probe.minimum,
            "max": probe.maximum,
            "p50": _finite(probe.percentile(50)),
            "p99": _finite(probe.percentile(99)),
            "p999": _finite(probe.percentile(99.9)),
            "jitter": _finite(probe.jitter),
            "windowed": bool(probe.windowed_count),
            "windowed_count": probe.windowed_count,
            "windowed_mean": _finite(probe.windowed_mean),
        }
    if isinstance(probe, TimeWeighted):
        return {
            "type": "time_weighted",
            "mean": probe.mean(now),
            "max": probe.maximum,
        }
    return {"type": "gauge", "value": probe()}


class MetricsRegistry:
    """Named bag of live probes; one ``snapshot()`` renders them all."""

    def __init__(self) -> None:
        self._probes: Dict[str, Probe] = {}

    def register(self, name: str, probe: Probe) -> None:
        """Register ``probe`` under the hierarchical ``name``.

        Names are dotted paths (``core0.lfb.in_flight``); duplicates
        are a :class:`~repro.errors.ConfigError` -- two components
        silently sharing a name would make one of them unreadable.
        """
        if not name:
            raise ConfigError("metric name must be non-empty")
        if name in self._probes:
            raise ConfigError(f"duplicate metric name {name!r}")
        if not isinstance(
            probe, (Counter, LatencyStat, TimeWeighted)
        ) and not callable(probe):
            raise ConfigError(
                f"metric {name!r}: unsupported probe type "
                f"{type(probe).__name__}"
            )
        self._probes[name] = probe

    def register_many(self, prefix: str, probes: Dict[str, Probe]) -> None:
        """Register every ``{leaf: probe}`` under ``prefix.leaf``."""
        for leaf, probe in probes.items():
            self.register(f"{prefix}.{leaf}" if prefix else leaf, probe)

    def names(self) -> Iterable[str]:
        return sorted(self._probes)

    def __len__(self) -> int:
        return len(self._probes)

    def __contains__(self, name: str) -> bool:
        return name in self._probes

    def snapshot(self, now: int) -> dict:
        """Render every probe at simulated time ``now`` (JSON-able,
        names sorted, so equal states serialize identically)."""
        return {
            name: _render(self._probes[name], now)
            for name in sorted(self._probes)
        }
