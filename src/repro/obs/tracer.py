"""Tick-accurate structured tracing to Chrome-trace-event JSON.

The tracer records *duration* events (``ph: "X"``) for ROB stalls, LFB
fills, TLP serialization/propagation, SWQ descriptor lifecycles, and
uthread scheduling slices, plus *counter* tracks (``ph: "C"``) for
queue depths and link utilization.  The output loads directly into
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

Design constraints, in order:

1. **Zero cost when disabled.**  Components hold a ``tracer``
   attribute that defaults to ``None``; every hook is guarded by a
   single ``if tracer is not None`` on an already-loaded local.  No
   tracer object exists in ordinary runs, so figures are bit-for-bit
   unchanged (tracing only ever *records* -- it never schedules or
   perturbs events).
2. **Cheap when enabled.**  Recording an event is one dict construction
   and a list append; ticks (integer picoseconds) convert to the trace
   format's microsecond ``ts`` by a float divide.

Track filtering (``TraceConfig.tracks``) and per-name sampling
(``TraceConfig.sample_every``) bound the output size; a hard
``max_events`` cap drops (and counts) the overflow rather than eating
the host's memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Optional

from repro.units import US

__all__ = [
    "TRACKS",
    "PID_CORES",
    "PID_UNCORE",
    "PID_PCIE",
    "PID_DEVICE",
    "PID_SERVICE",
    "PID_KERNEL",
    "TraceConfig",
    "Tracer",
]

#: Every track the instrumentation can emit.  A *track* is a semantic
#: stream of events, filterable independently of where it renders:
#:
#: * ``rob``    -- ROB dispatch-stall durations (Figure 2's mechanism)
#: * ``lfb``    -- line-fill durations + in-flight counters (Figure 3)
#: * ``queues`` -- shared uncore queue depths (Figure 5's 14-entry cap)
#: * ``pcie``   -- TLP serialization/propagation + link utilization
#: * ``device`` -- delay-module holds (request arrival to release)
#: * ``swq``    -- descriptor-fetch bursts, doorbells, ring depths
#: * ``sched``  -- uthread slices and completion polls (section IV-B)
#: * ``service`` -- open-loop request lifecycles (arrival to response)
#:   and host-queue depth counters (the SLO layer)
#: * ``kernel`` -- simulation-kernel scheduler gauges (calendar bucket
#:   occupancy, overflow backlog, due-batch size), sampled per interval
#: * ``spans`` -- per-request attribution exemplars rendered as async
#:   (``ph: b/e``) span trees (:mod:`repro.obs.spans`), overlaying the
#:   per-layer tracks above
TRACKS: FrozenSet[str] = frozenset(
    {"rob", "lfb", "queues", "pcie", "device", "swq", "sched", "service",
     "kernel", "spans"}
)

#: Process-ID groups of the rendered timeline (named via metadata
#: events; Perfetto shows one expandable lane per pid).
PID_CORES = 1
PID_UNCORE = 2
PID_PCIE = 3
PID_DEVICE = 4
PID_SERVICE = 5
PID_KERNEL = 6

#: Ticks are integer picoseconds; trace-event ``ts``/``dur`` are
#: microseconds (floats allowed, so no precision is lost for display).
_TICKS_PER_US = float(US)


@dataclass(frozen=True)
class TraceConfig:
    """What to record and how aggressively to thin it."""

    #: Subset of :data:`TRACKS` to record.
    tracks: FrozenSet[str] = TRACKS
    #: Keep one in ``sample_every`` duration/instant events *per event
    #: name*.  Counters are never sampled -- a thinned counter track
    #: would draw wrong values, not fewer points.
    sample_every: int = 1
    #: Hard cap on recorded events; overflow is dropped and counted.
    max_events: int = 2_000_000

    def __post_init__(self) -> None:
        unknown = set(self.tracks) - TRACKS
        if unknown:
            raise ValueError(
                f"unknown trace tracks {sorted(unknown)}; "
                f"valid: {sorted(TRACKS)}"
            )
        if self.sample_every < 1:
            raise ValueError("sample_every must be >= 1")
        if self.max_events < 1:
            raise ValueError("max_events must be >= 1")

    @classmethod
    def from_track_list(cls, tracks: Optional[str], **kwargs) -> "TraceConfig":
        """Build from a comma-separated track list (CLI helper);
        ``None`` or ``"all"`` selects every track."""
        if tracks is None or tracks.strip() in ("", "all"):
            return cls(**kwargs)
        selected = frozenset(
            part.strip() for part in tracks.split(",") if part.strip()
        )
        return cls(tracks=selected, **kwargs)


@dataclass
class _TracerState:
    events: list = field(default_factory=list)
    meta: list = field(default_factory=list)
    dropped: int = 0


class Tracer:
    """Collects trace events; :meth:`write` emits the JSON file."""

    def __init__(self, config: Optional[TraceConfig] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self._tracks = self.config.tracks
        self._sample = self.config.sample_every
        self._max = self.config.max_events
        self._state = _TracerState()
        self._name_counts: Dict[str, int] = {}
        self.track_counts: Dict[str, int] = {}

    # -- recording -----------------------------------------------------------

    def wants(self, track: str) -> bool:
        """True if ``track`` is being recorded (hooks may use this to
        skip building expensive args)."""
        return track in self._tracks

    def _admit(self, track: str, name: str, sampled: bool) -> bool:
        if track not in self._tracks:
            return False
        if sampled and self._sample > 1:
            seen = self._name_counts.get(name, 0)
            self._name_counts[name] = seen + 1
            if seen % self._sample:
                return False
        if len(self._state.events) >= self._max:
            self._state.dropped += 1
            return False
        self.track_counts[track] = self.track_counts.get(track, 0) + 1
        return True

    def complete(
        self,
        track: str,
        pid: int,
        tid: int,
        name: str,
        start_tick: int,
        end_tick: int,
        args: Optional[dict] = None,
    ) -> None:
        """A duration ("complete", ``ph: X``) event spanning
        ``[start_tick, end_tick]``."""
        if not self._admit(track, name, sampled=True):
            return
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "ts": start_tick / _TICKS_PER_US,
            "dur": (end_tick - start_tick) / _TICKS_PER_US,
        }
        if args:
            event["args"] = args
        self._state.events.append(event)

    def instant(
        self,
        track: str,
        pid: int,
        tid: int,
        name: str,
        tick: int,
        args: Optional[dict] = None,
    ) -> None:
        """A zero-duration instant event (thread-scoped)."""
        if not self._admit(track, name, sampled=True):
            return
        event: Dict[str, Any] = {
            "name": name,
            "ph": "i",
            "s": "t",
            "pid": pid,
            "tid": tid,
            "ts": tick / _TICKS_PER_US,
        }
        if args:
            event["args"] = args
        self._state.events.append(event)

    def async_span(
        self,
        track: str,
        pid: int,
        tid: int,
        name: str,
        span_id: int,
        start_tick: int,
        end_tick: int,
        args: Optional[dict] = None,
    ) -> None:
        """An async span: a ``ph: b`` / ``ph: e`` event pair sharing
        ``span_id``.  Async events with the same (cat, id) group into
        one track regardless of tid, which is what lets request-scoped
        exemplar trees overlay the per-layer duration tracks.  Exempt
        from sampling: a thinned pair would leave an unmatched begin,
        which the validator rightly rejects."""
        if not self._admit(track, name, sampled=False):
            return
        begin: Dict[str, Any] = {
            "name": name,
            "cat": track,
            "ph": "b",
            "id": span_id,
            "pid": pid,
            "tid": tid,
            "ts": start_tick / _TICKS_PER_US,
        }
        if args:
            begin["args"] = args
        self._state.events.append(begin)
        self._state.events.append(
            {
                "name": name,
                "cat": track,
                "ph": "e",
                "id": span_id,
                "pid": pid,
                "tid": tid,
                "ts": end_tick / _TICKS_PER_US,
            }
        )

    def counter(
        self, track: str, pid: int, name: str, tick: int, values: dict
    ) -> None:
        """A counter sample: ``values`` maps series label -> number.
        Counter events are exempt from sampling (a thinned counter
        would be *wrong*, not merely coarse)."""
        if not self._admit(track, name, sampled=False):
            return
        self._state.events.append(
            {
                "name": name,
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": tick / _TICKS_PER_US,
                "args": values,
            }
        )

    # -- metadata ------------------------------------------------------------

    def process_name(self, pid: int, name: str) -> None:
        self._state.meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        self._state.meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": name},
            }
        )

    # -- output --------------------------------------------------------------

    @property
    def events(self) -> list:
        return self._state.events

    @property
    def dropped(self) -> int:
        return self._state.dropped

    def to_dict(self) -> dict:
        """The full trace as a Chrome-trace-format object."""
        return {
            "traceEvents": self._state.meta + self._state.events,
            "displayTimeUnit": "ns",
            "otherData": {
                "source": "repro trace",
                "clock": "1 tick = 1 ps; ts in us",
                "dropped_events": self._state.dropped,
            },
        }

    def write(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle)
            handle.write("\n")

    def summary(self) -> dict:
        """Event counts per track (for CLI output and tests)."""
        return {
            "events": len(self._state.events),
            "dropped": self._state.dropped,
            "tracks": dict(sorted(self.track_counts.items())),
        }
