"""Request-scoped latency attribution: span ledger and tail exemplars.

The metrics layer can say *that* p99 sojourn climbed; this module says
*why*.  Every open-loop request carries a :class:`RequestSpan` from
arrival injection to response, stamped at each layer transition with
the tick-exact boundary, so its lifetime decomposes into a contiguous
sequence of **segments**:

* ``queue``  -- host-queue wait (arrival to worker pickup);
* ``sq``     -- submission: enqueue software cost, ring-space credit
  stalls, doorbell MMIO (per device access);
* ``device`` -- doorbell/descriptor fetch through device service until
  the completion's DMA write commits in host DRAM;
* ``cq``     -- completion visible in the ring until the scheduler's
  poll delivers it and wakes the thread;
* ``work``   -- on-thread application time (hash-chain walking between
  accesses, the post-GET work loop, response bookkeeping).

Because segments tile the request's lifetime with no gaps or overlaps,
their durations must sum exactly to the measured sojourn; the ledger
asserts that **conservation law** online at every request completion
(and the invariant monitor re-checks the ledger's books).  A missed
transition, a backwards stamp, or a layer double-charged shows up as a
loud :class:`SpanConservationError` rather than a quietly wrong
attribution table.

Cost discipline matches the tracer: components hold a ``span`` /
``spans`` attribute defaulting to ``None`` and guard every emission
with ``if span is not None`` on an already-loaded local (simlint
SIM404).  With spans disabled no ledger object exists and figures are
bit-for-bit unchanged (``benchmarks/test_attrib_overhead.py`` gates
the disabled path and asserts passivity).

Aggregation is deterministic and windowed: per-segment
:class:`~repro.sim.trace.LatencyStat` probes ride the harness's
measurement window, the K-slowest exemplar reservoir keeps complete
span trees for the worst requests (ties broken by arrival order), and
stratified p50/p90/p99 exemplars are chosen from a deterministic
stride-subsampled retention buffer.  Exemplar trees render as
Chrome-trace async (``ph: b/e``) spans that overlay the existing
tracer tracks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.trace import LatencyStat, ProbeSet, percentile_of_sorted
from repro.units import to_ns

__all__ = [
    "SEGMENTS",
    "PID_SPANS_TID",
    "RequestSpan",
    "SpanConservationError",
    "SpanLedger",
    "emit_exemplar_trace",
]

#: The span taxonomy, in pipeline order.  Segments tile the request
#: lifetime: ``queue`` then an alternation of ``work`` with
#: ``sq``/``device``/``cq`` triples (queue mechanisms) or ``device``
#: (memory-mapped mechanisms, where submission is just a load/prefetch
#: and there is no completion ring).
SEGMENTS = ("queue", "sq", "device", "cq", "work")

#: tid used for exemplar async spans under ``PID_SERVICE`` (async
#: events group by (cat, id), so one tid suffices).
PID_SPANS_TID = 99

#: Retention cap for the stratified-exemplar buffer; beyond it the
#: buffer subsamples deterministically (keep-every-other, double the
#: stride), mirroring ``LatencyStat.MAX_SAMPLES``.  Must stay even.
_MAX_RETAINED = 4096


class SpanConservationError(SimulationError):
    """A request's segment durations failed to tile its sojourn."""


class RequestSpan:
    """One request's span tree: a contiguous run of (name, begin, end).

    The span is a cursor: :meth:`mark` closes the currently-open
    segment at ``tick`` and opens the next one, so by construction the
    segments partition ``[arrived_at, finished_at]`` -- the
    conservation check in :meth:`SpanLedger.close` then guards against
    missed or misordered stamps rather than arithmetic.
    """

    __slots__ = (
        "seq", "key", "core_id", "arrived_at", "finished_at",
        "segments", "_open_name", "_open_at",
    )

    def __init__(self, seq: int, key: int, core_id: int, arrived_at: int) -> None:
        self.seq = seq
        self.key = key
        self.core_id = core_id
        self.arrived_at = arrived_at
        self.finished_at = -1
        #: Closed segments as ``[name, begin_tick, end_tick]`` lists
        #: (lists, not tuples, so the JSON round-trip through the sweep
        #: cache is bit-identical to the fresh object).
        self.segments: list[list] = []
        self._open_name = "queue"
        self._open_at = arrived_at

    @property
    def sojourn(self) -> int:
        return self.finished_at - self.arrived_at

    @property
    def open_at(self) -> int:
        """Tick the currently-open segment began (stamp clamp floor)."""
        return self._open_at

    def mark(self, name: str, tick: int) -> None:
        """Close the open segment at ``tick`` and open ``name``."""
        if name not in _SEGMENT_SET:
            raise SpanConservationError(
                f"unknown span segment {name!r} (valid: {SEGMENTS})"
            )
        if tick < self._open_at:
            raise SpanConservationError(
                f"span stamp moved backwards: {self._open_name!r} opened at "
                f"{self._open_at}, {name!r} marked at {tick} (request "
                f"seq={self.seq} key={self.key})"
            )
        if tick > self._open_at:
            self.segments.append([self._open_name, self._open_at, tick])
        elif self.segments and self.segments[-1][0] == name:
            # Zero-width transition back into the previous segment:
            # keep the tree minimal by re-opening it instead of
            # recording an empty slice.
            self._open_name = name
            self._open_at = self.segments.pop()[1]
            return
        self._open_name = name
        self._open_at = tick

    def _close(self, tick: int) -> None:
        if tick < self._open_at:
            raise SpanConservationError(
                f"span closed before its open segment: {self._open_name!r} "
                f"opened at {self._open_at}, closed at {tick} (request "
                f"seq={self.seq} key={self.key})"
            )
        if tick > self._open_at:
            self.segments.append([self._open_name, self._open_at, tick])
        self.finished_at = tick

    def durations(self) -> dict:
        """Total ticks per segment name (taxonomy order, zeros kept)."""
        totals = dict.fromkeys(SEGMENTS, 0)
        for name, begin, end in self.segments:
            totals[name] += end - begin
        return totals

    def to_payload(self) -> dict:
        """JSON-able span tree (cached by the sweep engine)."""
        return {
            "seq": self.seq,
            "key": self.key,
            "core": self.core_id,
            "arrived_at": self.arrived_at,
            "finished_at": self.finished_at,
            "sojourn_ticks": self.sojourn,
            "segments": [list(segment) for segment in self.segments],
        }


_SEGMENT_SET = frozenset(SEGMENTS)


class _SegmentStats:
    """Per-scope (global or per-core) segment LatencyStats."""

    __slots__ = ("stats",)

    def __init__(self, probes: Optional[ProbeSet], prefix: str) -> None:
        if probes is not None:
            self.stats = {
                name: probes.latency(f"{prefix}-{name}") for name in SEGMENTS
            }
        else:
            self.stats = {name: LatencyStat(f"{prefix}-{name}") for name in SEGMENTS}

    def record(self, durations: dict) -> None:
        for name, ticks in durations.items():
            self.stats[name].record(ticks)


def _stat_view(stat: LatencyStat) -> tuple[int, int]:
    """(count, total) from the measurement window when one recorded
    observations, else lifetime -- the same fallback rule as
    ``LatencyStat.percentile``."""
    if stat.windowed_count:
        return stat.windowed_count, stat.windowed_total
    return stat.count, stat.total


class SpanLedger:
    """Opens, closes, checks, and aggregates request spans.

    With ``probes`` given (the system's :class:`ProbeSet`), per-segment
    stats ride the harness measurement window exactly like every other
    probe; standalone ledgers (tests) aggregate over their lifetime.
    """

    def __init__(
        self,
        probes: Optional[ProbeSet] = None,
        k_slowest: int = 8,
    ) -> None:
        if k_slowest < 1:
            raise SimulationError("exemplar reservoir needs k_slowest >= 1")
        self.probes = probes
        self.k_slowest = k_slowest
        self.opened = 0
        self.closed = 0
        self.conservation_checks = 0
        self.sojourn = (
            probes.latency("span-sojourn") if probes is not None
            else LatencyStat("span-sojourn")
        )
        self._segments = _SegmentStats(probes, "span")
        self._per_core: dict[int, _SegmentStats] = {}
        #: The K slowest closed requests this window, keyed by
        #: ``(sojourn, -seq)`` -- on ties the earlier arrival wins, so
        #: selection is deterministic and order-free.  K is small; a
        #: linear min-replace beats a heap (and SIM210 reserves
        #: priority queues for the kernel scheduler).
        self._slowest: list[tuple[tuple[int, int], RequestSpan]] = []
        #: Stride-subsampled retention buffer feeding the stratified
        #: p50/p90/p99 exemplars (deterministic: same rule as
        #: ``LatencyStat`` reservoirs).
        self._retained: list[RequestSpan] = []
        self._retain_stride = 1
        self._retain_next = 1

    # -- request lifecycle ---------------------------------------------------

    def prepare_cores(self, core_ids) -> None:
        """Pre-create the per-core segment stats.

        Per-core stats are otherwise created lazily at a core's first
        request completion -- but :class:`ProbeSet` window activation
        toggles only the stats that exist at window start, so a core
        whose first completion lands *inside* the measurement window
        would aggregate into never-activated (lifetime-only) stats and
        silently disagree with the global table.  The harness calls
        this at install time with every configured core.
        """
        for core_id in core_ids:
            if core_id not in self._per_core:
                self._per_core[core_id] = _SegmentStats(
                    self.probes, f"span-core{core_id}"
                )

    def open(self, key: int, core_id: int, tick: int) -> RequestSpan:
        """Start a span at arrival injection (opens ``queue``)."""
        self.opened += 1
        return RequestSpan(self.opened, key, core_id, tick)

    def close(self, span: RequestSpan, tick: int) -> None:
        """Finish a span at response time and assert conservation."""
        span._close(tick)
        self._check_conservation(span)
        self.closed += 1
        durations = span.durations()
        self.sojourn.record(span.sojourn)
        self._segments.record(durations)
        per_core = self._per_core.get(span.core_id)
        if per_core is None:
            per_core = self._per_core[span.core_id] = _SegmentStats(
                self.probes, f"span-core{span.core_id}"
            )
        per_core.record(durations)
        self._reserve(span)

    def _check_conservation(self, span: RequestSpan) -> None:
        self.conservation_checks += 1
        total = 0
        cursor = span.arrived_at
        for name, begin, end in span.segments:
            if begin != cursor or end < begin:
                raise SpanConservationError(
                    f"span segments do not tile the request lifetime: "
                    f"{name!r} spans [{begin}, {end}] but the previous "
                    f"segment ended at {cursor} (request seq={span.seq} "
                    f"key={span.key})"
                )
            total += end - begin
            cursor = end
        if cursor != span.finished_at or total != span.sojourn:
            raise SpanConservationError(
                f"span conservation violated: segments sum to {total} ticks "
                f"but measured sojourn is {span.sojourn} (request "
                f"seq={span.seq} key={span.key}, arrived {span.arrived_at}, "
                f"finished {span.finished_at})"
            )

    def _reserve(self, span: RequestSpan) -> None:
        key = (span.sojourn, -span.seq)
        slowest = self._slowest
        if len(slowest) < self.k_slowest:
            slowest.append((key, span))
        else:
            floor = min(range(len(slowest)), key=lambda i: slowest[i][0])
            if key > slowest[floor][0]:
                slowest[floor] = (key, span)
        if self.closed == self._retain_next:
            self._retained.append(span)
            if len(self._retained) > _MAX_RETAINED:
                self._retained = self._retained[::2]
                self._retain_stride *= 2
            self._retain_next = self.closed + self._retain_stride

    def reset_window(self) -> None:
        """Drop exemplars retained before the measurement window (the
        per-segment LatencyStats are reset by the shared ProbeSet)."""
        self._slowest = []
        self._retained = []
        self._retain_stride = 1
        self._retain_next = self.closed + 1

    @property
    def open_count(self) -> int:
        return self.opened - self.closed

    # -- bookkeeping invariants (for the monitor) ------------------------------

    def check(self) -> Optional[str]:
        """Ledger bookkeeping law; None when the books balance."""
        if self.closed > self.opened:
            return f"{self.closed} spans closed but only {self.opened} opened"
        if self.conservation_checks != self.closed:
            return (
                f"{self.closed} spans closed but conservation checked "
                f"{self.conservation_checks} times"
            )
        if len(self._slowest) > self.k_slowest:
            return (
                f"exemplar heap holds {len(self._slowest)} > "
                f"{self.k_slowest} spans"
            )
        if len(self._retained) > _MAX_RETAINED:
            return (
                f"retention buffer holds {len(self._retained)} > "
                f"{_MAX_RETAINED} spans"
            )
        return None

    # -- aggregation -------------------------------------------------------------

    def attribution(self) -> dict:
        """The per-layer attribution table (JSON-able, windowed).

        ``share`` is each segment's fraction of total sojourn time --
        shares sum to 1 by the conservation law.  ``p99_ns`` is the
        segment's own tail (segments hit their tails on different
        requests, so p99 shares are reported against the segment's own
        p99, not as a decomposition of the sojourn p99).

        The aggregate conservation law is re-asserted here at tick
        precision: summed segment time must equal summed sojourn time
        over the same (windowed) population.  Per-request conservation
        at :meth:`close` makes this a tautology -- which is the point:
        it fails only if the aggregation itself loses or double-counts
        a request.
        """
        sojourn_count, sojourn_total = _stat_view(self.sojourn)
        segments_total = sum(
            _stat_view(stat)[1] for stat in self._segments.stats.values()
        )
        if segments_total != sojourn_total:
            raise SpanConservationError(
                f"aggregate conservation violated: segment stats sum to "
                f"{segments_total} ticks but sojourn stats hold "
                f"{sojourn_total} ticks over {sojourn_count} requests"
            )
        table = {
            "requests": sojourn_count,
            "sojourn": self._render_stat(self.sojourn, sojourn_total),
            "segments": {
                name: self._render_stat(stat, sojourn_total)
                for name, stat in self._segments.stats.items()
            },
            "per_core": {
                f"core{core_id}": self._render_scope(per_core)
                for core_id, per_core in sorted(self._per_core.items())
            },
            "conservation": {
                "opened": self.opened,
                "closed": self.closed,
                "checked": self.conservation_checks,
                "in_flight": self.open_count,
                #: The aggregate law, in ticks (exact integers; the ns
                #: renders above are floats and would blur it).
                "sojourn_ticks": sojourn_total,
                "segments_ticks": segments_total,
            },
        }
        return table

    @classmethod
    def _render_scope(cls, scope: _SegmentStats) -> dict:
        """Render one core's segment stats.  The denominator is the
        core's own sojourn time (= the sum of its segment totals, by
        conservation), so each core's shares sum to 1 and cores with
        different loads stay comparable."""
        core_total = sum(
            _stat_view(stat)[1] for stat in scope.stats.values()
        )
        return {
            name: cls._render_stat(stat, core_total)
            for name, stat in scope.stats.items()
        }

    @staticmethod
    def _render_stat(stat: LatencyStat, sojourn_total: int) -> dict:
        count, total = _stat_view(stat)
        mean = total / count if count else 0.0
        return {
            "count": count,
            "mean_ns": to_ns(mean),
            "p99_ns": to_ns(stat.percentile(99)) if count else 0.0,
            "total_ns": to_ns(total),
            "share": total / sojourn_total if sojourn_total else 0.0,
        }

    # -- exemplars ---------------------------------------------------------------

    def slowest(self) -> list[RequestSpan]:
        """The K slowest spans, worst first (deterministic ties)."""
        return [span for _key, span in sorted(self._slowest, reverse=True)]

    def stratified(self) -> dict:
        """One exemplar span nearest each of p50/p90/p99 sojourn."""
        if not self._retained:
            return {}
        ordered = sorted(
            self._retained, key=lambda span: (span.sojourn, span.seq)
        )
        sojourns = [span.sojourn for span in ordered]
        exemplars = {}
        for label, p in (("p50", 50.0), ("p90", 90.0), ("p99", 99.0)):
            target = percentile_of_sorted(sojourns, p)
            best = min(
                ordered, key=lambda span: (abs(span.sojourn - target), span.seq)
            )
            exemplars[label] = best
        return exemplars

    def exemplar_payload(self) -> dict:
        """JSON-able exemplar dump: K slowest trees + stratified trees."""
        return {
            "slowest": [span.to_payload() for span in self.slowest()],
            "stratified": {
                label: span.to_payload()
                for label, span in self.stratified().items()
            },
        }

    def emit_trace(self, tracer, pid: int) -> int:
        """Render every exemplar as Chrome-trace async spans on ``pid``
        (track ``spans``): a root ``request`` span plus one nested span
        per segment, all sharing the request's seq as the async id so
        they overlay the tracer's existing per-layer tracks.  Returns
        the number of exemplar trees emitted."""
        return emit_exemplar_trace(tracer, self.exemplar_payload(), pid)

    # -- export ------------------------------------------------------------------

    def register_metrics(self, registry, prefix: str) -> None:
        registry.register(f"{prefix}.opened", lambda: self.opened)
        registry.register(f"{prefix}.closed", lambda: self.closed)
        registry.register(f"{prefix}.in_flight", lambda: self.open_count)
        registry.register(
            f"{prefix}.conservation_checks", lambda: self.conservation_checks
        )
        registry.register(f"{prefix}.sojourn", self.sojourn)
        for name, stat in self._segments.stats.items():
            registry.register(f"{prefix}.{name}", stat)

    def summary(self) -> dict:
        return {
            "opened": self.opened,
            "closed": self.closed,
            "in_flight": self.open_count,
            "conservation_checks": self.conservation_checks,
            "retained": len(self._retained),
            "slowest": len(self._slowest),
        }


def emit_exemplar_trace(tracer, payload: dict, pid: int) -> int:
    """Render an exemplar payload as Chrome-trace async span trees.

    Works from the JSON-able :meth:`SpanLedger.exemplar_payload` shape
    (not live :class:`RequestSpan` objects) so exemplars cached by the
    sweep engine or read back from a ledger dump render identically.
    Each tree becomes one async group keyed by the request's ``seq``: a
    root ``request ...`` span over the whole sojourn plus one child
    span per segment, so in Perfetto the exemplars overlay the per-
    layer duration tracks tick for tick.  Returns the number of trees
    emitted; deduplicates trees that appear both among the K slowest
    and as a stratified exemplar (same async id twice would render as
    a corrupt nesting).
    """
    if tracer is None:
        return 0
    tracer.thread_name(pid, PID_SPANS_TID, "exemplar spans")
    trees = [("slow", tree) for tree in payload.get("slowest", ())]
    trees.extend(sorted(payload.get("stratified", {}).items()))
    emitted = 0
    seen = set()
    for label, tree in trees:
        span_id = tree["seq"]
        if span_id in seen:
            continue
        seen.add(span_id)
        tracer.async_span(
            "spans",
            pid,
            PID_SPANS_TID,
            f"request {label} seq={span_id}",
            span_id,
            tree["arrived_at"],
            tree["finished_at"],
            args={
                "key": tree["key"],
                "core": tree["core"],
                "sojourn_ns": to_ns(tree["sojourn_ticks"]),
            },
        )
        for name, begin, end in tree["segments"]:
            tracer.async_span(
                "spans", pid, PID_SPANS_TID, name, span_id, begin, end
            )
        emitted += 1
    return emitted
