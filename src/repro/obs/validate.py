"""Validator for the Chrome-trace-event JSON the tracer emits.

Hand-rolled (the repo deliberately has no ``jsonschema`` dependency):
checks the subset of the trace-event format we produce -- ``X``
complete events, ``C`` counters, ``i`` instants, and ``M`` metadata --
strictly enough to catch the mistakes that make Perfetto reject or
mis-render a file (missing ``dur``, non-numeric ``ts``, counter args
that are not numbers, ...).

Usable as a module for tests and as a CLI for CI::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, Sequence

__all__ = ["validate_trace", "validate_file", "main"]

_PHASES = {"X", "B", "E", "i", "I", "C", "M"}
_METADATA_NAMES = {
    "process_name",
    "process_labels",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}
_INSTANT_SCOPES = {"g", "p", "t"}


def _is_number(value: Any) -> bool:
    # bool is an int subclass but "true" is not a timestamp.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_trace(data: Any) -> list[str]:
    """Validate a parsed trace object; returns a list of error strings
    (empty when the trace is valid)."""
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    errors: list[str] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        try:
            errors.extend(_validate_event(where, event))
        except Exception as error:  # backstop: a malformed event must
            # produce a located error, never a traceback for the whole file
            errors.append(
                f"{where}: malformed event "
                f"({type(error).__name__}: {error})"
            )
    return errors


def _validate_event(where: str, event: Any) -> list[str]:
    """Errors for a single trace event (empty when valid)."""
    if not isinstance(event, dict):
        return [f"{where}: event must be an object"]
    errors: list[str] = []
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _PHASES:
        errors.append(f"{where}: 'ph' {phase!r} not one of {sorted(_PHASES)}")
        return errors
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{where}: {key!r} must be an integer")
    if phase == "M":
        if isinstance(name, str) and name not in _METADATA_NAMES:
            errors.append(
                f"{where}: metadata name {name!r} not one of "
                f"{sorted(_METADATA_NAMES)}"
            )
        args = event.get("args")
        if not isinstance(args, dict) or "name" not in args:
            errors.append(f"{where}: metadata needs args with a 'name'")
        return errors
    ts = event.get("ts")
    if not _is_number(ts) or ts < 0:
        errors.append(f"{where}: 'ts' must be a non-negative number")
    if phase == "X":
        dur = event.get("dur")
        if not _is_number(dur) or dur < 0:
            errors.append(
                f"{where}: complete event needs non-negative 'dur'"
            )
    elif phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter needs non-empty args")
        else:
            for series, value in args.items():
                if not _is_number(value):
                    errors.append(
                        f"{where}: counter series {series!r} must be "
                        "a number"
                    )
    elif phase in ("i", "I"):
        scope = event.get("s")
        if scope is not None and (
            not isinstance(scope, str) or scope not in _INSTANT_SCOPES
        ):
            errors.append(
                f"{where}: instant scope {scope!r} not one of "
                f"{sorted(_INSTANT_SCOPES)}"
            )
    return errors


def validate_file(path: str) -> list[str]:
    """Parse and validate a trace file; parse failures are errors."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    except ValueError as error:
        return [f"{path} is not valid JSON: {error}"]
    return validate_trace(data)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    errors = validate_file(argv[0])
    if errors:
        for error in errors[:50]:
            print(f"error: {error}", file=sys.stderr)
        if len(errors) > 50:
            print(f"... and {len(errors) - 50} more", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid Chrome trace-event JSON")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
