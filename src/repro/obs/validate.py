"""Validator for the Chrome-trace-event JSON the tracer emits.

Hand-rolled (the repo deliberately has no ``jsonschema`` dependency):
checks the subset of the trace-event format we produce -- ``X``
complete events, ``C`` counters, ``i`` instants, async ``b``/``e``
span pairs, and ``M`` metadata -- strictly enough to catch the
mistakes that make Perfetto reject or mis-render a file (missing
``dur``, non-numeric ``ts``, counter args that are not numbers,
unbalanced async pairs, ...).

Beyond per-event shape, two cross-event laws are enforced:

* **Async balance** -- every ``b`` (async begin) must be closed by an
  ``e`` sharing its ``(cat, id)``, and no ``e`` may appear without an
  open ``b``; an unmatched pair renders as an unterminated smear (or
  is silently dropped) in trace viewers.
* **Counter-track stability** -- a counter track is keyed by
  ``(pid, name)``; once seen, its set of series labels must stay
  identical on every later sample.  A series that appears or vanishes
  mid-track makes viewers re-baseline the stacked chart, so the track
  silently changes meaning partway through the timeline.

Usable as a module for tests and as a CLI for CI::

    python -m repro.obs.validate trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Any, Optional, Sequence

__all__ = ["validate_trace", "validate_file", "main"]

_PHASES = {"X", "B", "E", "i", "I", "C", "M", "b", "e"}
_METADATA_NAMES = {
    "process_name",
    "process_labels",
    "process_sort_index",
    "thread_name",
    "thread_sort_index",
}
_INSTANT_SCOPES = {"g", "p", "t"}


def _is_number(value: Any) -> bool:
    # bool is an int subclass but "true" is not a timestamp.
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _async_id_ok(value: Any) -> bool:
    """Async ``id`` must be an integer or non-empty string (the two
    forms trace viewers group by; bools and floats mis-group)."""
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return True
    return isinstance(value, str) and bool(value)


def validate_trace(data: Any) -> list[str]:
    """Validate a parsed trace object; returns a list of error strings
    (empty when the trace is valid)."""
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    errors: list[str] = []
    #: (cat, id) -> [open depth, index of last unmatched 'b'].
    async_open: dict = {}
    #: (pid, name) -> (first index, frozenset of series labels).
    counter_series: dict = {}
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        try:
            event_errors = _validate_event(where, event)
            errors.extend(event_errors)
            if not event_errors:
                errors.extend(
                    _track_cross_event(
                        where, index, event, async_open, counter_series
                    )
                )
        except Exception as error:  # backstop: a malformed event must
            # produce a located error, never a traceback for the whole file
            errors.append(
                f"{where}: malformed event "
                f"({type(error).__name__}: {error})"
            )
    for (cat, span_id), (depth, last_begin) in sorted(
        async_open.items(), key=lambda item: item[1][1]
    ):
        if depth > 0:
            errors.append(
                f"traceEvents[{last_begin}]: async begin (cat={cat!r}, "
                f"id={span_id!r}) never closed by a matching 'e'"
            )
    return errors


def _track_cross_event(
    where: str, index: int, event: dict, async_open: dict,
    counter_series: dict,
) -> list[str]:
    """Stateful checks spanning events (called only on shape-clean
    events, so field accesses here are safe)."""
    phase = event.get("ph")
    if phase in ("b", "e"):
        key = (event["cat"], event["id"])
        depth, last_begin = async_open.get(key, (0, index))
        if phase == "b":
            async_open[key] = (depth + 1, index)
        elif depth < 1:
            return [
                f"{where}: async end (cat={key[0]!r}, id={key[1]!r}) "
                "without an open matching 'b'"
            ]
        else:
            async_open[key] = (depth - 1, last_begin)
    elif phase == "C":
        key = (event["pid"], event["name"])
        series = frozenset(event["args"])
        first = counter_series.setdefault(key, (index, series))
        if series != first[1]:
            return [
                f"{where}: counter track (pid={key[0]}, name={key[1]!r}) "
                f"changed series {sorted(first[1])} -> {sorted(series)} "
                f"(first defined at traceEvents[{first[0]}]); counter "
                "tracks must keep a stable series set"
            ]
    return []


def _validate_event(where: str, event: Any) -> list[str]:
    """Errors for a single trace event (empty when valid)."""
    if not isinstance(event, dict):
        return [f"{where}: event must be an object"]
    errors: list[str] = []
    name = event.get("name")
    if not isinstance(name, str) or not name:
        errors.append(f"{where}: 'name' must be a non-empty string")
    phase = event.get("ph")
    if not isinstance(phase, str) or phase not in _PHASES:
        errors.append(f"{where}: 'ph' {phase!r} not one of {sorted(_PHASES)}")
        return errors
    for key in ("pid", "tid"):
        value = event.get(key)
        if not isinstance(value, int) or isinstance(value, bool):
            errors.append(f"{where}: {key!r} must be an integer")
    if phase == "M":
        if isinstance(name, str) and name not in _METADATA_NAMES:
            errors.append(
                f"{where}: metadata name {name!r} not one of "
                f"{sorted(_METADATA_NAMES)}"
            )
        args = event.get("args")
        if not isinstance(args, dict) or "name" not in args:
            errors.append(f"{where}: metadata needs args with a 'name'")
        return errors
    ts = event.get("ts")
    if not _is_number(ts) or ts < 0:
        errors.append(f"{where}: 'ts' must be a non-negative number")
    if phase == "X":
        dur = event.get("dur")
        if not _is_number(dur) or dur < 0:
            errors.append(
                f"{where}: complete event needs non-negative 'dur'"
            )
    elif phase == "C":
        args = event.get("args")
        if not isinstance(args, dict) or not args:
            errors.append(f"{where}: counter needs non-empty args")
        else:
            for series, value in args.items():
                if not _is_number(value):
                    errors.append(
                        f"{where}: counter series {series!r} must be "
                        "a number"
                    )
    elif phase in ("b", "e"):
        cat = event.get("cat")
        if not isinstance(cat, str) or not cat:
            errors.append(
                f"{where}: async event needs a non-empty 'cat' "
                "(viewers group async spans by (cat, id))"
            )
        if not _async_id_ok(event.get("id")):
            errors.append(
                f"{where}: async event 'id' {event.get('id')!r} must be "
                "an integer or non-empty string"
            )
    elif phase in ("i", "I"):
        scope = event.get("s")
        if scope is not None and (
            not isinstance(scope, str) or scope not in _INSTANT_SCOPES
        ):
            errors.append(
                f"{where}: instant scope {scope!r} not one of "
                f"{sorted(_INSTANT_SCOPES)}"
            )
    return errors


def validate_file(path: str) -> list[str]:
    """Parse and validate a trace file; parse failures are errors."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except OSError as error:
        return [f"cannot read {path}: {error}"]
    except ValueError as error:
        return [f"{path} is not valid JSON: {error}"]
    return validate_trace(data)


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.json", file=sys.stderr)
        return 2
    errors = validate_file(argv[0])
    if errors:
        for error in errors[:50]:
            print(f"error: {error}", file=sys.stderr)
        if len(errors) > 50:
            print(f"... and {len(errors) - 50} more", file=sys.stderr)
        return 1
    print(f"{argv[0]}: valid Chrome trace-event JSON")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI
    raise SystemExit(main())
