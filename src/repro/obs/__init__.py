"""Unified observability layer: metrics registry + structured tracing.

* :class:`~repro.obs.registry.MetricsRegistry` -- hierarchical,
  pull-based export of every component's probes to one JSON snapshot.
* :class:`~repro.obs.tracer.Tracer` / ``TraceConfig`` -- tick-accurate
  Chrome-trace-event timelines (Perfetto-loadable), zero-cost no-ops
  when no tracer is attached.
* :mod:`~repro.obs.validate` -- standalone trace-format validator
  (``python -m repro.obs.validate trace.json``).
"""

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import (
    PID_CORES,
    PID_DEVICE,
    PID_PCIE,
    PID_UNCORE,
    TRACKS,
    TraceConfig,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "TraceConfig",
    "TRACKS",
    "PID_CORES",
    "PID_UNCORE",
    "PID_PCIE",
    "PID_DEVICE",
]
