"""Unified observability layer: metrics, tracing, invariants, provenance.

* :class:`~repro.obs.registry.MetricsRegistry` -- hierarchical,
  pull-based export of every component's probes to one JSON snapshot.
* :class:`~repro.obs.tracer.Tracer` / ``TraceConfig`` -- tick-accurate
  Chrome-trace-event timelines (Perfetto-loadable), zero-cost no-ops
  when no tracer is attached.
* :class:`~repro.obs.invariants.InvariantMonitor` -- online sanitizer
  checking conservation laws (TLP, LFB, credit, µop balance) against
  live component state; raises :class:`InvariantViolation` with the
  tick, component and recent trace events on the first breach.
* :class:`~repro.obs.runlog.RunLedger` -- append-only provenance
  ledger (``.repro_runs/ledger.jsonl``) recording every CLI run's
  model version, git SHA, config digest and result digests.
* :mod:`~repro.obs.validate` -- standalone trace-format validator
  (``python -m repro.obs.validate trace.json``).
"""

from repro.obs.invariants import InvariantMonitor, InvariantViolation, TeeTracer
from repro.obs.registry import MetricsRegistry
from repro.obs.runlog import LEDGER_FORMAT, RunLedger
from repro.obs.spans import (
    SEGMENTS,
    RequestSpan,
    SpanConservationError,
    SpanLedger,
)
from repro.obs.tracer import (
    PID_CORES,
    PID_DEVICE,
    PID_KERNEL,
    PID_PCIE,
    PID_SERVICE,
    PID_UNCORE,
    TRACKS,
    TraceConfig,
    Tracer,
)

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "TraceConfig",
    "TRACKS",
    "PID_CORES",
    "PID_UNCORE",
    "PID_PCIE",
    "PID_DEVICE",
    "PID_KERNEL",
    "PID_SERVICE",
    "InvariantMonitor",
    "InvariantViolation",
    "TeeTracer",
    "RunLedger",
    "LEDGER_FORMAT",
    "SEGMENTS",
    "RequestSpan",
    "SpanConservationError",
    "SpanLedger",
]
