"""Online invariant sanitizer: the simulator checks its own books.

The model is a web of queues with conservation laws -- every TLP that
enters a PCIe direction must leave it, every descriptor enqueued to a
ring is either fetched or still pending, every ROB slot dispatched is
eventually retired, and no occupancy-limited structure may exceed its
capacity.  A refactoring bug that breaks one of these laws can still
produce plausible-looking figures; this module makes such bugs loud.

:class:`InvariantMonitor` attaches to a built
:class:`~repro.host.system.System` and re-checks every law from a
periodic watch process (its events are pure observers: they never touch
model state, so a monitored run stays bit-for-bit identical to an
unmonitored one).  The monitor also implements the
:class:`~repro.obs.tracer.Tracer` recording interface, keeping the last
N trace events in a ring so a violation's diagnostic shows what the
simulation was doing when the law broke.

Enable with ``--check-invariants`` on ``repro run/figure/sweep`` (or
``check_invariants=True`` on the harness entry points); tests can
force-enable every monitored run in a scope via
:func:`repro.testing.enforce_invariants`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional

from repro.errors import SimulationError
from repro.units import us

__all__ = [
    "InvariantViolation",
    "InvariantMonitor",
    "TeeTracer",
    "forced",
    "set_forced",
]

#: Process-wide override: when True, the harness entry points behave as
#: if ``check_invariants=True`` was passed.  Flip it through
#: :func:`set_forced` (tests use :func:`repro.testing.enforce_invariants`).
_forced = False


def forced() -> bool:
    """True when invariant checking is force-enabled for this process."""
    return _forced


def set_forced(value: bool) -> None:
    global _forced
    _forced = bool(value)


class InvariantViolation(SimulationError):
    """A conservation law or capacity bound broke.

    Carries the simulated ``tick``, the dotted ``component`` name that
    failed, and the last N trace events the monitor observed
    (``recent_events``) for post-mortem context.
    """

    def __init__(
        self,
        message: str,
        tick: int,
        component: str,
        recent_events: Optional[list] = None,
    ) -> None:
        self.tick = tick
        self.component = component
        self.recent_events = list(recent_events or [])
        detail = f"[tick {tick}] {component}: {message}"
        if self.recent_events:
            tail = "; ".join(
                f"{kind}:{name}@{when}"
                for kind, _track, name, when in self.recent_events[-8:]
            )
            detail += f" (recent events: {tail})"
        super().__init__(detail)


class TeeTracer:
    """Forwards the tracer recording interface to several sinks.

    Used when a run wants both a real :class:`~repro.obs.tracer.Tracer`
    and an :class:`InvariantMonitor` on the single tracer slot the
    components expose.
    """

    def __init__(self, sinks) -> None:
        self.sinks = [sink for sink in sinks if sink is not None]

    def wants(self, track: str) -> bool:
        return any(sink.wants(track) for sink in self.sinks)

    def complete(self, *args, **kwargs) -> None:
        for sink in self.sinks:
            sink.complete(*args, **kwargs)

    def instant(self, *args, **kwargs) -> None:
        for sink in self.sinks:
            sink.instant(*args, **kwargs)

    def counter(self, *args, **kwargs) -> None:
        for sink in self.sinks:
            sink.counter(*args, **kwargs)

    def async_span(self, *args, **kwargs) -> None:
        for sink in self.sinks:
            sink.async_span(*args, **kwargs)

    def process_name(self, pid: int, name: str) -> None:
        for sink in self.sinks:
            sink.process_name(pid, name)

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        for sink in self.sinks:
            sink.thread_name(pid, tid, name)


class InvariantMonitor:
    """Re-checks the model's conservation laws while it runs.

    ``interval_ticks`` sets the watch cadence (default 5 us of simulated
    time); :meth:`check_now` can additionally be called at any stable
    point (the harness calls it once after the measured window).  All
    checks read component state only -- a monitored run's figures are
    bit-for-bit those of an unmonitored run.
    """

    def __init__(self, interval_ticks: int = us(5), recent: int = 64) -> None:
        if interval_ticks < 1:
            raise SimulationError("watch interval must be >= 1 tick")
        self.interval_ticks = interval_ticks
        self.recent_events: deque = deque(maxlen=recent)
        self.checks_run = 0
        self.system = None
        self._last_tick = -1
        self._checkers: list[tuple[str, Callable[[], Optional[str]]]] = []

    # -- tracer interface (event ring only) --------------------------------

    def wants(self, track: str) -> bool:
        return True

    def complete(self, track, pid, tid, name, start_tick, end_tick, args=None):
        self.recent_events.append(("X", track, name, end_tick))

    def instant(self, track, pid, tid, name, tick, args=None):
        self.recent_events.append(("i", track, name, tick))

    def counter(self, track, pid, name, tick, values):
        self.recent_events.append(("C", track, name, tick))

    def async_span(
        self, track, pid, tid, name, span_id, start_tick, end_tick, args=None
    ):
        self.recent_events.append(("b", track, name, end_tick))

    def process_name(self, pid: int, name: str) -> None:
        pass

    def thread_name(self, pid: int, tid: int, name: str) -> None:
        pass

    # -- wiring ------------------------------------------------------------

    def tee(self, tracer):
        """This monitor as a tracer, merged with ``tracer`` if given."""
        if tracer is None:
            return self
        return TeeTracer((tracer, self))

    def attach(self, system) -> None:
        """Bind to a built system and start the periodic watch process."""
        if self.system is not None:
            raise SimulationError("monitor already attached to a system")
        self.system = system
        self._build_checkers(system)
        system.sim.process(self._watch(), name="invariant-watch")

    def _watch(self):
        sim = self.system.sim
        while True:
            yield sim.timeout(self.interval_ticks)
            self.check_now()

    # -- checks ------------------------------------------------------------

    def _build_checkers(self, system) -> None:
        from repro.cpu.uncore import AddressSpace

        add = self._checkers.append
        add(("sim.kernel", lambda: self._check_kernel(system.sim)))
        smt = system.config.cpu.smt_contexts
        for index, core in enumerate(system.cores):
            add(
                (f"core{core.core_id}.rob",
                 lambda rob=core.rob: self._check_rob(rob))
            )
            if index % smt == 0:
                add(
                    (f"core{core.core_id}.lfb",
                     lambda lfb=core.memsys.lfb: self._check_lfb(lfb))
                )
        for space in AddressSpace:
            add(
                (f"uncore.{space.value}_queue",
                 lambda q=system.uncore.queue(space): self._check_resource(q))
            )
        for direction in (system.link.downstream, system.link.upstream):
            add(
                (f"pcie.{direction.name}",
                 lambda d=direction: self._check_pcie(d))
            )
        for pair in system.queue_pairs:
            add(
                (f"swq.core{pair.core_id}",
                 lambda p=pair: self._check_queue_pair(p))
            )
        spans = getattr(system, "spans", None)
        if spans is not None:
            # The span ledger asserts per-request conservation itself
            # at every close; this re-checks its aggregate books
            # (opened/closed balance, reservoir bounds) periodically.
            add(("obs.spans", spans.check))

    def check_now(self) -> None:
        """Run every check at the current tick; raise on the first
        violation (the diagnostic carries tick + component + the last
        trace events seen)."""
        system = self.system
        if system is None:
            raise SimulationError("monitor not attached to a system")
        now = system.sim.now
        if now < self._last_tick:
            self._violate(
                "sim.clock",
                f"tick went backwards: {self._last_tick} -> {now}",
            )
        self._last_tick = now
        for component, check in self._checkers:
            problem = check()
            if problem is not None:
                self._violate(component, problem)
        self.checks_run += 1

    def _violate(self, component: str, message: str) -> None:
        raise InvariantViolation(
            message,
            tick=self.system.sim.now,
            component=component,
            recent_events=list(self.recent_events),
        )

    @staticmethod
    def _check_kernel(sim) -> Optional[str]:
        problems = sim.sanity_check()
        return problems[0] if problems else None

    @staticmethod
    def _check_rob(rob) -> Optional[str]:
        if not 0 <= rob.used <= rob.capacity:
            return f"occupancy {rob.used} outside [0, {rob.capacity}]"
        outstanding = rob.allocated_slots - rob.retired_slots
        if outstanding != rob.used:
            return (
                "dispatch/retire imbalance: "
                f"{rob.allocated_slots} allocated - {rob.retired_slots} "
                f"retired = {outstanding}, but occupancy is {rob.used}"
            )
        return None

    @staticmethod
    def _check_lfb(lfb) -> Optional[str]:
        if not 0 <= lfb.occupied <= lfb.capacity:
            return (
                f"{lfb.occupied} buffers granted with capacity {lfb.capacity}"
            )
        if lfb.occupied > lfb.in_flight:
            return (
                f"{lfb.occupied} buffers granted for only "
                f"{lfb.in_flight} live miss entries"
            )
        return None

    @staticmethod
    def _check_resource(queue) -> Optional[str]:
        if not 0 <= queue.in_use <= queue.capacity:
            return f"occupancy {queue.in_use} outside [0, {queue.capacity}]"
        return None

    @staticmethod
    def _check_pcie(direction) -> Optional[str]:
        sent = direction.tlps_sent
        serialized = direction.packets
        delivered = direction.tlps_delivered
        queued = direction.queued
        if delivered > serialized or serialized > sent:
            return (
                f"TLP pipeline out of order: {sent} sent, "
                f"{serialized} serialized, {delivered} delivered"
            )
        # sent == delivered + in-flight, where in-flight decomposes into
        # the tx queue, at most one TLP being serialized by the pump,
        # and (serialized - delivered) packets in propagation.
        serializing = sent - serialized - queued
        if serializing not in (0, 1):
            return (
                f"TLPs leaked: {sent} sent = {serialized} serialized + "
                f"{queued} queued + {serializing} serializing (expected 0 or 1)"
            )
        return None

    @staticmethod
    def _check_queue_pair(pair) -> Optional[str]:
        if pair.requests_pending > pair.entries:
            return (
                f"request ring holds {pair.requests_pending} > "
                f"{pair.entries} entries"
            )
        if pair.completions_visible > pair.entries:
            return (
                f"completion ring holds {pair.completions_visible} > "
                f"{pair.entries} entries"
            )
        fetched_plus_pending = pair.descriptors_fetched + pair.requests_pending
        if pair.descriptors_enqueued != fetched_plus_pending:
            return (
                "descriptor credits not conserved: "
                f"{pair.descriptors_enqueued} enqueued != "
                f"{pair.descriptors_fetched} fetched + "
                f"{pair.requests_pending} pending"
            )
        consumed_plus_visible = (
            pair.completions_consumed + pair.completions_visible
        )
        if pair.completions_posted != consumed_plus_visible:
            return (
                "completion credits not conserved: "
                f"{pair.completions_posted} posted != "
                f"{pair.completions_consumed} consumed + "
                f"{pair.completions_visible} visible"
            )
        if pair.completions_posted > pair.descriptors_fetched:
            return (
                f"{pair.completions_posted} completions posted for only "
                f"{pair.descriptors_fetched} descriptors fetched"
            )
        return None

    def summary(self) -> dict:
        """JSON-able record of what the monitor did (for run reports)."""
        return {
            "checks_run": self.checks_run,
            "interval_ticks": self.interval_ticks,
            "components": len(self._checkers),
        }
