"""Experiment provenance ledger: every CLI run leaves a record.

Reproducing a paper is an exercise in not fooling yourself, and the
first tool for that is a memory: which commit, which model version,
which config produced the numbers you are looking at?  Every
``repro run/figure/sweep/profile/trace/app`` invocation appends one
JSON line to ``.repro_runs/ledger.jsonl`` with:

* provenance -- ledger format version, git SHA, sweep
  :data:`~repro.harness.sweep.MODEL_VERSION`, CLI argv, timestamp;
* identity -- a ``run_id`` content digest and the resolved config
  digest, so "the same experiment" is a machine-checkable notion;
* results -- wall time, kernel counters, figure series (in the
  regression-baseline format), metrics-snapshot digests, sweep/cache
  statistics.

``repro runs list/show/diff`` read the ledger back; ``runs diff``
reuses the :mod:`repro.harness.regression` tolerance machinery to
compare two entries' figure series, kernel counters, and metrics
digests.  The ledger is best-effort: a read-only filesystem or a
corrupt line degrades to "not recorded", never to a failed run.
Set ``REPRO_RUNS_DIR`` to relocate it or ``REPRO_NO_LEDGER`` (any
non-empty value) to disable recording.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import time
from pathlib import Path
from typing import Optional, Union

from repro.errors import ConfigError

__all__ = [
    "LEDGER_FORMAT",
    "RunLedger",
    "git_sha",
    "digest_of",
    "link_manifests",
]

#: Bump when the per-entry schema changes incompatibly; readers skip
#: entries whose format tag they do not recognize.
LEDGER_FORMAT = "repro-runlog-v1"

#: Default ledger directory (relative to the working directory, like
#: ``.repro_cache``); override with ``REPRO_RUNS_DIR``.
DEFAULT_RUNS_DIR = ".repro_runs"


def git_sha() -> Optional[str]:
    """The working tree's commit SHA, or None outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def digest_of(payload) -> str:
    """SHA-256 of the canonical JSON rendering of ``payload``."""
    canonical = json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def link_manifests(entry: Optional[dict]) -> None:
    """Record ``entry``'s run id in the sweep-queue manifest it used.

    A recorded sweep that ran against a persistent queue notes the
    queue directory in ``entry["sweep"]["queue"]["dir"]``; writing the
    ledger ``run_id`` back into that queue's experiment manifest links
    the versioned experiment record to its provenance trail.  Like the
    ledger itself this is best-effort: a missing or foreign manifest
    never fails the run.
    """
    if not entry:
        return
    run_id = entry.get("run_id")
    root = ((entry.get("sweep") or {}).get("queue") or {}).get("dir")
    if not run_id or not root:
        return
    from repro.harness.coordinator import WorkQueue

    try:
        WorkQueue.attach(root).note_run(str(run_id))
    except (ConfigError, OSError):
        pass


class RunLedger:
    """Append-only JSONL ledger of experiment runs."""

    def __init__(self, root: Union[str, os.PathLike, None] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_RUNS_DIR") or DEFAULT_RUNS_DIR
        self.root = Path(root)

    @classmethod
    def enabled(cls, environ: Optional[dict] = None) -> bool:
        env = os.environ if environ is None else environ
        return not env.get("REPRO_NO_LEDGER")

    @property
    def path(self) -> Path:
        return self.root / "ledger.jsonl"

    # -- writing -----------------------------------------------------------

    def record(self, entry: dict) -> Optional[dict]:
        """Stamp ``entry`` with the format tag and a run id, append it.

        Returns the completed entry, or None when the append failed
        (the ledger never makes a run fail).
        """
        entry = dict(entry)
        entry["format"] = LEDGER_FORMAT
        # simlint: disable-next-line=SIM101 -- provenance timestamp of the
        # host run; deliberately wall-clock, never fed back into the model
        entry.setdefault("timestamp", time.time())
        entry["run_id"] = digest_of(entry)[:12]
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a") as handle:
                handle.write(
                    json.dumps(entry, sort_keys=True, default=str) + "\n"
                )
        except OSError:
            return None
        return entry

    # -- reading -----------------------------------------------------------

    def entries(self) -> list[dict]:
        """Every well-formed entry, oldest first (corrupt lines and
        unknown formats are skipped, not fatal)."""
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except OSError:
            return []
        out: list[dict] = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if (
                isinstance(entry, dict)
                and entry.get("format") == LEDGER_FORMAT
            ):
                out.append(entry)
        return out

    def resolve(self, ref: str) -> dict:
        """An entry by integer index (``0`` oldest, ``-1`` newest) or by
        ``run_id`` prefix."""
        entries = self.entries()
        if not entries:
            raise ConfigError(f"run ledger {self.path} is empty")
        try:
            index = int(ref)
        except ValueError:
            matches = [
                entry
                for entry in entries
                if str(entry.get("run_id", "")).startswith(ref)
            ]
            if not matches:
                raise ConfigError(f"no ledger entry with run id {ref!r}")
            if len(matches) > 1:
                ids = ", ".join(str(m["run_id"]) for m in matches[:5])
                raise ConfigError(
                    f"run id prefix {ref!r} is ambiguous ({ids})"
                )
            return matches[0]
        try:
            return entries[index]
        except IndexError:
            raise ConfigError(
                f"ledger index {index} out of range "
                f"({len(entries)} entries)"
            )
