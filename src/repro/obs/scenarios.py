"""Representative single-run trace scenarios for each paper figure.

``repro trace --figure figN`` traces *one* characteristic grid point of
figure N rather than the whole sweep -- a timeline of a 100-point grid
would be unreadable, while one well-chosen run shows the figure's
mechanism directly (ROB stalls for Figure 2, the 10-LFB plateau for
Figure 3, descriptor-fetch pipelining for Figure 7, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import AccessMechanism, DeviceConfig, SystemConfig
from repro.harness.experiment import MeasureWindow
from repro.workloads.microbench import MicrobenchSpec

__all__ = ["TraceScenario", "TRACE_SCENARIOS", "trace_scenario"]

#: Matches the figure sweeps' work-count (harness.figures.DEFAULT_WORK).
_WORK = 200


@dataclass(frozen=True)
class TraceScenario:
    """One figure's characteristic configuration."""

    config: SystemConfig
    spec: MicrobenchSpec
    window: MeasureWindow
    description: str


def _scenario(
    description: str,
    mechanism: AccessMechanism,
    threads: int,
    cores: int = 1,
    latency_us: float = 1.0,
    work: int = _WORK,
    mlp: int = 1,
    window: MeasureWindow = MeasureWindow(warmup_us=30.0, measure_us=100.0),
) -> TraceScenario:
    return TraceScenario(
        config=SystemConfig(
            mechanism=mechanism,
            cores=cores,
            threads_per_core=threads,
            device=DeviceConfig(total_latency_us=latency_us),
        ),
        spec=MicrobenchSpec(work_count=work, reads_per_batch=mlp),
        window=window,
        description=description,
    )


TRACE_SCENARIOS: dict[str, TraceScenario] = {
    "fig2": _scenario(
        "on-demand 1-thread at 1us: ROB fills and dispatch stalls",
        AccessMechanism.ON_DEMAND,
        threads=1,
    ),
    "fig3": _scenario(
        "prefetch 10-thread at 1us: all 10 LFBs in flight (DRAM parity)",
        AccessMechanism.PREFETCH,
        threads=10,
    ),
    "fig4": _scenario(
        "prefetch 8-thread at work=800: work-bound, LFBs under-used",
        AccessMechanism.PREFETCH,
        threads=8,
        work=800,
    ),
    "fig5": _scenario(
        "prefetch 4-core x 8-thread: the 14-entry chip queue saturates",
        AccessMechanism.PREFETCH,
        threads=8,
        cores=4,
    ),
    "fig6": _scenario(
        "prefetch 8-thread at MLP 4: batched fills share LFB residency",
        AccessMechanism.PREFETCH,
        threads=8,
        mlp=4,
    ),
    "fig7": _scenario(
        "software-queue 16-thread at 1us: descriptor-fetch pipeline",
        AccessMechanism.SOFTWARE_QUEUE,
        threads=16,
    ),
    "fig8": _scenario(
        "software-queue 4-core x 16-thread: PCIe request-rate wall",
        AccessMechanism.SOFTWARE_QUEUE,
        threads=16,
        cores=4,
    ),
    "fig9": _scenario(
        "software-queue 16-thread at MLP 4: batched descriptors",
        AccessMechanism.SOFTWARE_QUEUE,
        threads=16,
        mlp=4,
    ),
    # Figure 10 sweeps whole applications; its free-running stand-in
    # here is the 4-read microbenchmark on the figure's largest
    # configuration (software-queue panel d), which exercises the same
    # SWQ + multi-core contention the application panels measure.
    "fig10": _scenario(
        "software-queue 8-core x 4-thread at MLP 4: the application-"
        "study configuration (4-read microbenchmark stand-in)",
        AccessMechanism.SOFTWARE_QUEUE,
        threads=4,
        cores=8,
        mlp=4,
    ),
}


def trace_scenario(name: str) -> TraceScenario:
    try:
        return TRACE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"no trace scenario for {name!r}; "
            f"choices: {sorted(TRACE_SCENARIOS)}"
        )
