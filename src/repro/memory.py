"""Functional (contents-only) memory stores.

Timing is modeled by the channel/link/queue models; *contents* live
here.  Workloads store real data structures (graphs, hash tables, bit
arrays) in a :class:`FlatMemory` so that their access streams are
genuinely data-dependent, exactly like the applications in the paper.

Words are 64-bit, matching the paper's ``dev_access(uint64*)`` API.
"""

from __future__ import annotations

from repro.errors import AddressError

__all__ = ["FlatMemory", "WORD_BYTES"]

#: The access granularity of dev_access(uint64*).
WORD_BYTES = 8

_WORD_MASK = (1 << 64) - 1


class FlatMemory:
    """A sparse, word-granular, byte-addressed memory.

    Unwritten words read as zero (like fresh mmap'd pages).  Lines are
    read as ``bytes`` so that device responses carry real content end
    to end -- the replay-fidelity tests compare these against recorded
    traces byte for byte.
    """

    def __init__(self, line_bytes: int = 64) -> None:
        if line_bytes % WORD_BYTES != 0:
            raise AddressError("line size must be a multiple of the word size")
        self.line_bytes = line_bytes
        self._words: dict[int, int] = {}

    @staticmethod
    def _check_word_aligned(addr: int) -> None:
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        if addr % WORD_BYTES != 0:
            raise AddressError(f"address {addr:#x} is not 8-byte aligned")

    def read_word(self, addr: int) -> int:
        """Read the 64-bit word at byte address ``addr``."""
        self._check_word_aligned(addr)
        return self._words.get(addr // WORD_BYTES, 0)

    def write_word(self, addr: int, value: int) -> None:
        """Write the 64-bit word at byte address ``addr``."""
        self._check_word_aligned(addr)
        self._words[addr // WORD_BYTES] = value & _WORD_MASK

    def line_address(self, addr: int) -> int:
        """The line-aligned base address containing ``addr``."""
        if addr < 0:
            raise AddressError(f"negative address {addr:#x}")
        return addr - (addr % self.line_bytes)

    def read_line(self, line_addr: int) -> bytes:
        """Read one full cache line as bytes (little-endian words)."""
        if line_addr % self.line_bytes != 0:
            raise AddressError(f"address {line_addr:#x} is not line aligned")
        parts = []
        for offset in range(0, self.line_bytes, WORD_BYTES):
            parts.append(self.read_word(line_addr + offset).to_bytes(8, "little"))
        return b"".join(parts)

    def word_count(self) -> int:
        """Number of words ever written (sparse footprint)."""
        return len(self._words)

    @staticmethod
    def word_from_line(line_addr: int, line_data: bytes, addr: int) -> int:
        """Extract the word at ``addr`` from a line's byte content."""
        offset = addr - line_addr
        if offset < 0 or offset + WORD_BYTES > len(line_data):
            raise AddressError(
                f"address {addr:#x} outside line at {line_addr:#x}"
            )
        if offset % WORD_BYTES != 0:
            raise AddressError(f"address {addr:#x} is not 8-byte aligned")
        return int.from_bytes(line_data[offset : offset + WORD_BYTES], "little")
