"""Command-line interface: run experiments without writing code.

::

    python -m repro run --mechanism prefetch --threads 10 --latency-us 1
    python -m repro run --mechanism software-queue --threads 24 --cores 4
    python -m repro figure fig3 --scale quick --jobs 4 --check-invariants
    python -m repro sweep fig3 --scale full --jobs 8 --progress
    python -m repro sweep fig3 --queue .repro_queue --jobs 4   # durable
    python -m repro sweep fig3 --resume                        # after ^C
    python -m repro sweep-worker --queue .repro_queue --watch  # extra host
    python -m repro trace --figure fig7 --out trace.json --tracks swq,pcie
    python -m repro app memcached --mechanism prefetch --threads 8
    python -m repro runs list
    python -m repro runs diff -2 -1
    python -m repro list

Every ``run``/``figure``/``sweep``/``app``/``profile``/``trace``
invocation appends a provenance record to ``.repro_runs/ledger.jsonl``
(disable with ``REPRO_NO_LEDGER=1``, relocate with ``REPRO_RUNS_DIR``);
``repro runs list/show/diff`` inspects it.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro.config import (
    AccessMechanism,
    CpuConfig,
    DeviceAttachment,
    DeviceConfig,
    SystemConfig,
    UncoreConfig,
)
from repro.config import stable_digest
from repro.errors import SimulationError
from repro.harness.applications import APPLICATIONS, normalized_application
from repro.harness.experiment import MeasureWindow, normalized_microbench
from repro.harness.figures import ALL_FIGURES
from repro.harness.report import render_chart, render_table, to_csv
from repro.harness.sweep import MODEL_VERSION, SweepEngine
from repro import units
from repro.obs import runlog
from repro.obs.scenarios import TRACE_SCENARIOS
from repro.workloads.microbench import MicrobenchSpec

__all__ = ["main", "build_parser"]

_MECHANISMS = {mechanism.value: mechanism for mechanism in AccessMechanism}
_ATTACHMENTS = {attachment.value: attachment for attachment in DeviceAttachment}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Taming the Killer Microsecond' (MICRO 2018)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run one microbenchmark configuration"
    )
    _add_run_flags(run)
    run.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="also write the full metrics-registry snapshot as JSON",
    )

    trace = commands.add_parser(
        "trace",
        help="record a tick-accurate Chrome-trace timeline (Perfetto-"
             "loadable) of one figure's characteristic run",
    )
    trace.add_argument("--figure", choices=sorted(TRACE_SCENARIOS),
                       default="fig3",
                       help="which figure's scenario to trace (default fig3)")
    trace.add_argument("--out", metavar="PATH", default="trace.json",
                       help="output trace file (default trace.json)")
    trace.add_argument("--tracks", metavar="LIST", default=None,
                       help="comma-separated track subset "
                            "(rob,lfb,queues,pcie,device,swq,sched; "
                            "default all)")
    trace.add_argument("--sample", type=int, default=1, metavar="N",
                       help="keep 1 in N duration events per event name "
                            "(counters are never sampled)")
    trace.add_argument("--max-events", type=int, default=2_000_000,
                       metavar="N", help="hard cap on recorded events")
    trace.add_argument("--quick", action="store_true",
                       help="short 5+20 us window (CI smoke runs)")
    trace.add_argument("--check-invariants", action="store_true",
                       help="run the online invariant sanitizer alongside "
                            "the traced run (passive; trace unchanged)")

    figure = commands.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=sorted(ALL_FIGURES))
    figure.add_argument("--scale", choices=("quick", "full"), default="quick")
    _add_engine_flags(figure)
    figure.add_argument("--csv", metavar="PATH", default=None,
                        help="also write the series as CSV")
    figure.add_argument("--chart", action="store_true",
                        help="render an ASCII chart as well as the table")
    figure.add_argument("--save-baseline", metavar="PATH", default=None,
                        help="save the series as a JSON regression baseline")
    figure.add_argument("--compare-baseline", metavar="PATH", default=None,
                        help="diff the run against a stored baseline")

    sweep = commands.add_parser(
        "sweep",
        help="run one figure's grid through the parallel sweep engine "
             "and report execution/cache statistics",
    )
    sweep.add_argument("name", choices=sorted(ALL_FIGURES))
    sweep.add_argument("--scale", choices=("quick", "full"), default="quick")
    _add_engine_flags(sweep)

    worker = commands.add_parser(
        "sweep-worker",
        help="drain sweep work queues as a standalone worker: point any "
             "number of these (on any host sharing the filesystem) at "
             "the --queue directory of an interrupted or running sweep",
    )
    worker.add_argument(
        "--queue", metavar="DIR", required=True,
        help="work-queue root to drain (a sweep's --queue directory)",
    )
    worker.add_argument(
        "--worker", metavar="NAME", default=None,
        help="worker id stamped into leases and result records "
             "(default: hostname-pid)",
    )
    worker.add_argument(
        "--watch", action="store_true",
        help="keep polling for new queues and jobs until interrupted "
             "(default: exit once every discovered queue is resolved)",
    )
    worker.add_argument(
        "--poll-s", type=float, default=0.5, metavar="S",
        help="idle polling interval in seconds (default 0.5)",
    )
    worker.add_argument(
        "--max-jobs", type=int, default=None, metavar="N",
        help="stop after claiming N jobs (default: unlimited)",
    )
    worker.add_argument(
        "--lease-s", type=float, default=900.0, metavar="S",
        help="job lease duration; a crashed worker's claims expire "
             "after this long (default 900)",
    )
    worker.add_argument(
        "--no-cache", action="store_true",
        default=bool(os.environ.get("REPRO_NO_CACHE")),
        help="disable the shared on-disk result cache",
    )
    worker.add_argument(
        "--cache-dir", metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro_cache"),
        help="result-cache directory shared with the sweep "
             "(default: $REPRO_CACHE_DIR or .repro_cache)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the memcached workload as an open-loop service and "
             "report tail-latency SLO metrics (p50/p99/p999, jitter)",
    )
    _add_service_flags(serve)

    explain = commands.add_parser(
        "explain",
        help="run the open-loop service with request-scoped spans and "
             "attribute tail latency to layers (queue / sq / device / "
             "cq / work), with exemplar span trees for the slowest "
             "requests",
    )
    _add_service_flags(explain)
    explain.add_argument(
        "--top", type=int, default=8, metavar="K",
        help="retain complete span trees for the K slowest requests "
             "(default 8)",
    )
    explain.add_argument(
        "--exemplars-out", metavar="FILE", default=None,
        help="dump the exemplar span trees (K slowest + stratified "
             "p50/p90/p99) as JSON",
    )
    explain.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="record a Chrome trace of the run with the exemplar span "
             "trees overlaid as async spans (open at "
             "https://ui.perfetto.dev)",
    )

    app = commands.add_parser("app", help="run one application study")
    app.add_argument("name", choices=sorted(APPLICATIONS))
    app.add_argument("--mechanism", choices=sorted(_MECHANISMS), default="prefetch")
    app.add_argument("--threads", type=int, default=8)
    app.add_argument("--cores", type=int, default=1)
    app.add_argument("--latency-us", type=float, default=1.0)
    app.add_argument("--check-invariants", action="store_true",
                     help="run the online invariant sanitizer alongside "
                          "the simulation (passive; results unchanged)")

    runs = commands.add_parser(
        "runs",
        help="inspect the provenance ledger (.repro_runs/ledger.jsonl)",
    )
    runs_sub = runs.add_subparsers(dest="runs_command", required=True)
    runs_list = runs_sub.add_parser("list", help="list recorded runs")
    runs_list.add_argument("--limit", type=int, default=20, metavar="N",
                           help="show the most recent N runs (default 20)")
    runs_show = runs_sub.add_parser(
        "show", help="print one ledger entry as JSON"
    )
    runs_show.add_argument(
        "ref", help="run index (0 oldest, -1 newest) or run-id prefix"
    )
    runs_diff = runs_sub.add_parser(
        "diff",
        help="diff two recorded runs (figure series, kernel stats, "
             "digests); exits 1 on any deviation",
    )
    runs_diff.add_argument("a", help="baseline run (index or run-id prefix)")
    runs_diff.add_argument("b", help="current run (index or run-id prefix)")
    runs_diff.add_argument("--rtol", type=float, default=0.0,
                           help="relative tolerance (default 0: exact)")
    runs_diff.add_argument("--atol", type=float, default=0.0,
                           help="absolute tolerance (default 0: exact)")

    profile = commands.add_parser(
        "profile",
        help="run a figure or microbench under cProfile and report "
             "kernel counters (events fired, bypass ratio, events/sec)",
    )
    profile.add_argument(
        "target", choices=sorted(ALL_FIGURES) + ["microbench"],
        help="a figure name, or 'microbench' for one configuration",
    )
    profile.add_argument("--scale", choices=("quick", "full"), default="quick",
                         help="figure grid resolution (figure targets only)")
    profile.add_argument("--top", type=int, default=15, metavar="N",
                         help="profile rows to print (default 15)")
    profile.add_argument("--sort", choices=("tottime", "cumulative"),
                         default="tottime", help="pstats sort key")
    _add_run_flags(profile)

    lint = commands.add_parser(
        "lint",
        help="run simlint, the static analyzer enforcing the "
             "determinism/kernel/units/observability contracts",
    )
    from repro.analysis import add_lint_arguments

    add_lint_arguments(lint)

    commands.add_parser("list", help="list figures and applications")
    commands.add_parser("table1", help="print the paper's Table I taxonomy")
    return parser


def _add_service_flags(parser: argparse.ArgumentParser) -> None:
    """Open-loop service flags shared by ``serve`` and ``explain``."""
    parser.add_argument("--rate", type=float, default=0.2, metavar="R",
                        help="offered load, requests/us per core (default 0.2)")
    parser.add_argument("--arrivals", choices=("poisson", "mmpp"),
                        default="poisson", help="interarrival process")
    parser.add_argument("--burst-ratio", type=float, default=8.0,
                        help="MMPP burst-state rate multiplier (default 8)")
    parser.add_argument("--burst-fraction", type=float, default=0.1,
                        help="MMPP fraction of time in the burst state")
    parser.add_argument("--dwell-us", type=float, default=20.0,
                        help="MMPP mean burst dwell time in us")
    parser.add_argument("--theta", type=float, default=0.0,
                        help="Zipfian key skew in [0, 1); 0 = uniform")
    parser.add_argument("--items", type=int, default=2048,
                        help="key-value store size (and key space)")
    parser.add_argument("--mechanism", choices=sorted(_MECHANISMS),
                        default="software-queue")
    parser.add_argument("--workers", type=int, default=8,
                        help="polling service workers per core (default 8)")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--latency-us", type=float, default=1.0)
    parser.add_argument("--ring", type=int, default=None, metavar="N",
                        help="SWQ ring entries per core (power of two; "
                             "default: config default)")
    parser.add_argument("--seed", type=int, default=1,
                        help="load-generator seed (arrivals and keys)")
    parser.add_argument("--warmup-us", type=float, default=40.0)
    parser.add_argument("--measure-us", type=float, default=400.0)
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the online invariant sanitizer alongside "
                             "the simulation (passive; results unchanged)")


def _add_run_flags(parser: argparse.ArgumentParser) -> None:
    """Microbench-configuration flags shared by ``run`` and ``profile``."""
    parser.add_argument("--mechanism", choices=sorted(_MECHANISMS), default="prefetch")
    parser.add_argument("--threads", type=int, default=10, help="threads per core")
    parser.add_argument("--cores", type=int, default=1)
    parser.add_argument("--latency-us", type=float, default=1.0)
    parser.add_argument("--work", type=int, default=200,
                        help="work instructions per access")
    parser.add_argument("--mlp", type=int, default=1, help="reads per batch (1/2/4)")
    parser.add_argument("--writes", type=int, default=0, help="posted writes per batch")
    parser.add_argument("--lfb", type=int, default=10, help="line-fill buffers per core")
    parser.add_argument("--chip-queue", type=int, default=14,
                        help="shared chip-level queue entries (PCIe path)")
    parser.add_argument("--smt", type=int, default=1, choices=(1, 2, 4))
    parser.add_argument("--attachment", choices=sorted(_ATTACHMENTS), default="pcie")
    parser.add_argument("--warmup-us", type=float, default=30.0)
    parser.add_argument("--measure-us", type=float, default=100.0)
    parser.add_argument("--check-invariants", action="store_true",
                        help="run the online invariant sanitizer alongside "
                             "the simulation (passive; results unchanged)")


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Sweep-engine flags shared by ``figure`` and ``sweep``."""
    parser.add_argument(
        "--jobs", type=int, metavar="N",
        default=int(os.environ.get("REPRO_SWEEP_JOBS", "1") or "1"),
        help="worker processes for the sweep (default: $REPRO_SWEEP_JOBS or 1)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        default=bool(os.environ.get("REPRO_NO_CACHE")),
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR",
        default=os.environ.get("REPRO_CACHE_DIR", ".repro_cache"),
        help="result-cache directory (default: $REPRO_CACHE_DIR or .repro_cache)",
    )
    parser.add_argument(
        "--check-invariants", action="store_true",
        help="run the online invariant sanitizer inside every sweep job "
             "(passive; series unchanged, but cached separately)",
    )
    parser.add_argument(
        "--progress", action="store_true",
        help="render live per-job progress (done/total, cache hits, "
             "ETA) on stderr while the sweep runs",
    )
    parser.add_argument(
        "--timeout-s", type=float, metavar="S",
        default=float(os.environ.get("REPRO_SWEEP_TIMEOUT_S", "900") or "900"),
        help="per-job deadline, measured from the observed job start "
             "(default: $REPRO_SWEEP_TIMEOUT_S or 900)",
    )
    parser.add_argument(
        "--retries", type=int, metavar="N",
        default=int(os.environ.get("REPRO_SWEEP_RETRIES", "1") or "1"),
        help="worker-side attempts per job before the in-process "
             "fallback (default: $REPRO_SWEEP_RETRIES or 1)",
    )
    parser.add_argument(
        "--queue", metavar="DIR",
        default=os.environ.get("REPRO_SWEEP_QUEUE") or None,
        help="persistent work-queue root: per-job state survives "
             "interrupts and crashes, and standalone `repro "
             "sweep-worker` processes can share the work "
             "(default: $REPRO_SWEEP_QUEUE)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="re-enter an interrupted sweep's work queue and execute "
             "only its unresolved jobs (implies --queue, default "
             ".repro_queue)",
    )


def _engine_from_args(args: argparse.Namespace) -> SweepEngine:
    progress = None
    if args.progress:
        from repro.harness.progress import SweepProgress

        progress = SweepProgress()
    queue_dir = args.queue or (".repro_queue" if args.resume else None)
    return SweepEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        check_invariants=args.check_invariants,
        progress=progress,
        queue_dir=queue_dir,
        timeout_s=args.timeout_s,
        retries=args.retries,
    )


def _system_config(args: argparse.Namespace) -> SystemConfig:
    return SystemConfig(
        mechanism=_MECHANISMS[args.mechanism],
        cores=args.cores,
        threads_per_core=args.threads,
        cpu=CpuConfig(lfb_entries=args.lfb, smt_contexts=args.smt),
        uncore=UncoreConfig(pcie_queue_entries=args.chip_queue),
        device=DeviceConfig(
            total_latency_us=args.latency_us,
            attachment=_ATTACHMENTS[args.attachment],
        ),
    )


def _command_run(args: argparse.Namespace, out, record=None) -> int:
    config = _system_config(args)
    spec = MicrobenchSpec(
        work_count=args.work,
        reads_per_batch=args.mlp,
        writes_per_batch=args.writes,
    )
    window = MeasureWindow(warmup_us=args.warmup_us, measure_us=args.measure_us)
    normalized, result = normalized_microbench(
        config, spec, window,
        collect_metrics=bool(args.metrics),
        check_invariants=args.check_invariants,
    )
    report = result.report
    if record is not None:
        record["config_digest"] = stable_digest(config, spec, window)
        record["check_invariants"] = args.check_invariants
        record["results"] = {
            "normalized": normalized,
            "work_ipc": result.work_ipc,
            "accesses": result.stats.accesses,
        }
        if args.metrics:
            record["metrics_digest"] = runlog.digest_of(report["metrics"])
    print(f"configuration : {config.describe()}", file=out)
    print(f"work-count    : {spec.work_count}  (MLP {spec.reads_per_batch}, "
          f"{spec.writes_per_batch} writes/iter)", file=out)
    print(f"work IPC      : {result.work_ipc:.4f}", file=out)
    print(f"normalized    : {normalized:.4f}  (vs 1-thread DRAM baseline)", file=out)
    print(f"accesses      : {result.stats.accesses} in "
          f"{units.to_us(result.stats.ticks):.0f} us", file=out)
    print(f"LFB peak      : {max(report['lfb_max_per_core'])} / {args.lfb}", file=out)
    print(f"chip-q peak   : {report['uncore_pcie_max']} / {args.chip_queue}", file=out)
    up = (report["pcie_up_wire_bytes"]
          / units.to_seconds(result.stats.ticks) / units.GB)
    print(f"PCIe upstream : {up:.2f} GB/s on the wire", file=out)
    if args.metrics:
        import json

        with open(args.metrics, "w") as handle:
            json.dump(report["metrics"], handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics       : {len(report['metrics'])} probes written to "
              f"{args.metrics}", file=out)
    return 0


def _command_trace(args: argparse.Namespace, out, record=None) -> int:
    from repro.harness.experiment import run_microbench
    from repro.obs import TraceConfig, Tracer
    from repro.obs.scenarios import trace_scenario
    from repro.obs.validate import validate_trace

    scenario = trace_scenario(args.figure)
    window = scenario.window
    if args.quick:
        window = MeasureWindow(warmup_us=5.0, measure_us=20.0)
    trace_config = TraceConfig.from_track_list(
        args.tracks, sample_every=args.sample, max_events=args.max_events
    )
    tracer = Tracer(trace_config)
    result = run_microbench(
        scenario.config, scenario.spec, window, tracer=tracer,
        check_invariants=args.check_invariants,
    )
    tracer.write(args.out)
    summary = tracer.summary()
    if record is not None:
        record["scenario"] = args.figure
        record["config_digest"] = stable_digest(
            scenario.config, scenario.spec, window
        )
        record["check_invariants"] = args.check_invariants
        record["results"] = {
            "work_ipc": result.work_ipc,
            "events": summary["events"],
            "dropped": summary["dropped"],
        }
        record["trace_digest"] = runlog.digest_of(tracer.to_dict())
    print(f"scenario      : {args.figure} -- {scenario.description}", file=out)
    print(f"configuration : {scenario.config.describe()}", file=out)
    print(f"window        : {window.warmup_us:g} us warmup + "
          f"{window.measure_us:g} us measured", file=out)
    print(f"work IPC      : {result.work_ipc:.4f}", file=out)
    print(f"events        : {summary['events']} recorded, "
          f"{summary['dropped']} dropped", file=out)
    for track, count in summary["tracks"].items():
        print(f"  {track:<7}     : {count}", file=out)
    print(f"trace written : {args.out}  "
          f"(open at https://ui.perfetto.dev)", file=out)
    errors = validate_trace(tracer.to_dict())
    if errors:
        print(f"INVALID trace : {len(errors)} schema error(s); "
              f"first: {errors[0]}", file=out)
        return 1
    return 0


def _record_figure_result(record, args, figure, engine) -> None:
    """Stash a figure run's deterministic outputs in its ledger entry."""
    if record is None:
        return
    from repro.harness.regression import figure_to_dict

    payload = figure_to_dict(figure)
    record["figure"] = {
        "name": args.name,
        "scale": args.scale,
        "payload": payload,
        "series_digests": {
            label: runlog.digest_of(points)
            for label, points in payload["series"].items()
        },
    }
    record["config_digest"] = runlog.digest_of(
        {"figure": args.name, "scale": args.scale}
    )
    record["check_invariants"] = args.check_invariants
    record["sweep"] = dict(engine.last_stats)


def _print_queue_rule(figure, out, record) -> None:
    """For figA_slo: report whether the section V-B sizing rule held."""
    from repro.harness.figures import queue_rule_report

    report = queue_rule_report(figure)
    if record is not None:
        record["queue_rule"] = report
    verdict = "HOLDS" if report["holds"] else "VIOLATED"
    print(f"queue rule    : {report['rule']} -- {verdict}", file=out)
    for cores in sorted(report["per_cores"]):
        entry = report["per_cores"][cores]
        print(f"  {cores} core(s) @ {entry['offered_per_core_us']:g}/us: "
              f"p99 rule-sized {entry['rule-sized']:.1f} us vs "
              f"under-rule {entry['under-rule']:.1f} us", file=out)


def _note_interrupt(args: argparse.Namespace, engine: SweepEngine, out,
                    record) -> int:
    """A sweep took SIGINT: report what survived and how to resume.

    Returns 130 (the conventional fatal-SIGINT status), which ``main``
    records in the ledger like any other outcome.
    """
    stats = dict(engine.last_stats)
    if record is not None:
        record["sweep"] = stats
    print("interrupted", file=out)
    queue_info = stats.get("queue") or {}
    if queue_info.get("dir"):
        counts = queue_info.get("counts") or {}
        unresolved = counts.get("pending", 0) + counts.get("leased", 0)
        print(f"queue         : {queue_info['dir']} "
              f"({counts.get('done', 0)} done, {unresolved} unresolved, "
              f"{counts.get('failed', 0)} failed)", file=out)
        resume = f"repro {args.command} {args.name} --scale {args.scale}"
        if args.queue:
            resume += f" --queue {args.queue}"
        else:
            resume += " --resume"
        if args.jobs != 1:
            resume += f" --jobs {args.jobs}"
        print(f"resume with   : {resume}", file=out)
    else:
        print("no --queue given: completed jobs survive only in the "
              "result cache; rerun with --queue DIR (or --resume) for "
              "a durable, shareable work queue", file=out)
    return 130


def _note_failed_jobs(args: argparse.Namespace, engine: SweepEngine, out,
                      record) -> int:
    """Deterministically failing jobs: structured per-job report."""
    stats = dict(engine.last_stats)
    if record is not None:
        record["sweep"] = stats
    failures = stats.get("failures") or {}
    print(f"FAILED        : {stats.get('failed', len(failures))} job(s) "
          f"failed after retries and the in-process fallback; "
          f"completed results were preserved", file=out)
    for key, error in sorted(failures.items()):
        print(f"  {key[:12]}  {error}", file=out)
    queue_info = stats.get("queue") or {}
    if queue_info.get("dir"):
        print(f"queue         : {queue_info['dir']} (failure records in "
              f"failed/)", file=out)
    return 1


def _command_figure(args: argparse.Namespace, out, record=None) -> int:
    engine = _engine_from_args(args)
    try:
        figure = ALL_FIGURES[args.name](args.scale, engine=engine)
    except KeyboardInterrupt:
        return _note_interrupt(args, engine, out, record)
    except SimulationError:
        if not engine.last_stats.get("failed"):
            raise
        return _note_failed_jobs(args, engine, out, record)
    _record_figure_result(record, args, figure, engine)
    print(render_table(figure), file=out)
    if args.name == "figA_slo":
        _print_queue_rule(figure, out, record)
    if args.chart:
        print(render_chart(figure), file=out)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(to_csv(figure))
        print(f"series written to {args.csv}", file=out)
    if args.save_baseline:
        from repro.harness.regression import save_baseline

        save_baseline(figure, args.save_baseline)
        print(f"baseline saved to {args.save_baseline}", file=out)
    if args.compare_baseline:
        from repro.harness.regression import compare_to_baseline, load_baseline

        deviations = compare_to_baseline(
            figure, load_baseline(args.compare_baseline)
        )
        if deviations:
            print(f"{len(deviations)} deviation(s) from baseline:", file=out)
            for deviation in deviations:
                print(f"  {deviation.describe()}", file=out)
            return 1
        print("matches baseline", file=out)
    return 0


def _command_sweep(args: argparse.Namespace, out, record=None) -> int:
    engine = _engine_from_args(args)
    started = time.perf_counter()
    try:
        figure = ALL_FIGURES[args.name](args.scale, engine=engine)
    except KeyboardInterrupt:
        return _note_interrupt(args, engine, out, record)
    except SimulationError:
        if not engine.last_stats.get("failed"):
            raise
        return _note_failed_jobs(args, engine, out, record)
    wall = time.perf_counter() - started
    _record_figure_result(record, args, figure, engine)
    print(render_table(figure), file=out)
    stats = engine.last_stats
    per_job = engine.probes.latency("sweep-job-wall-ns")
    cache_note = str(engine.cache.root) if engine.cache else "disabled"
    print(f"workers       : {engine.jobs}", file=out)
    print(f"jobs          : {stats['jobs']} submitted, "
          f"{stats['unique']} unique", file=out)
    print(f"cache         : {stats['cache_hits']} hits, "
          f"{stats['cache_misses']} misses ({cache_note})", file=out)
    print(f"simulated     : {stats['simulated']} jobs "
          f"({stats['retries']} retries, {stats['fallbacks']} fallbacks)",
          file=out)
    queue_info = stats.get("queue") or {}
    if queue_info.get("dir"):
        counts = queue_info.get("counts") or {}
        print(f"queue         : {queue_info['dir']} "
              f"({stats.get('queue_served', 0)} jobs served from queue "
              f"records, {counts.get('done', 0)} done, "
              f"{counts.get('failed', 0)} failed)", file=out)
        print(f"manifest      : spec {str(queue_info.get('spec_digest'))[:12]} "
              f"-- inspect with `repro runs show -1`", file=out)
    if per_job.count:
        print(f"per-job wall  : {per_job.mean / units.NS_PER_S:.3f} s mean, "
              f"{(per_job.maximum or 0) / units.NS_PER_S:.3f} s max", file=out)
    print(f"total wall    : {wall:.2f} s", file=out)
    if stats.get("failed"):
        return _note_failed_jobs(args, engine, out, record)
    return 0


def _command_sweep_worker(args: argparse.Namespace, out, record=None) -> int:
    from repro.harness import coordinator
    from repro.harness.sweep import ResultCache

    cache = None if args.no_cache else ResultCache(args.cache_dir)

    def on_queue(queue) -> None:
        manifest = queue.manifest()
        print(f"queue         : {queue.root} ({manifest.get('name')}, "
              f"spec {str(manifest.get('spec_digest'))[:12]})", file=out)

    try:
        totals = coordinator.drain_queue_tree(
            args.queue,
            args.worker,
            cache=cache,
            lease_s=args.lease_s,
            max_jobs=args.max_jobs,
            poll_s=args.poll_s,
            watch=args.watch,
            on_queue=on_queue,
        )
    except KeyboardInterrupt:
        print("interrupted: in-flight leases were released (or will "
              "expire); resolved jobs stay in the queue", file=out)
        return 130
    if record is not None:
        record["worker"] = {"queue_root": str(args.queue), **totals}
    print(f"queues        : {totals['queues']} drained under {args.queue}",
          file=out)
    print(f"claims        : {totals['claims']} ({totals['done']} done, "
          f"{totals['failed']} failed, {totals['cache_hits']} cache hits)",
          file=out)
    return 0


def _service_inputs(args: argparse.Namespace):
    """(config, params, window) for a ``serve``/``explain`` invocation."""
    from repro.config import SwqConfig
    from repro.harness.service import ServiceParams
    from repro.workloads.loadgen import (
        ArrivalKind,
        ArrivalSpec,
        KeySpec,
        OpenLoopSpec,
    )

    swq = SwqConfig() if args.ring is None else SwqConfig(ring_entries=args.ring)
    config = SystemConfig(
        mechanism=_MECHANISMS[args.mechanism],
        cores=args.cores,
        threads_per_core=args.workers,
        device=DeviceConfig(total_latency_us=args.latency_us),
        swq=swq,
    )
    spec = OpenLoopSpec(
        arrivals=ArrivalSpec(
            kind=ArrivalKind(args.arrivals),
            rate_per_us=args.rate,
            burst_ratio=args.burst_ratio,
            burst_fraction=args.burst_fraction,
            mean_dwell_us=args.dwell_us,
        ),
        keys=KeySpec(items=args.items, theta=args.theta),
        seed=args.seed,
    )
    params = ServiceParams(
        open_loop=spec,
        items=args.items,
        workers_per_core=args.workers,
        spans=getattr(args, "top", None) is not None,
        span_exemplars=getattr(args, "top", None) or 8,
    )
    window = MeasureWindow(warmup_us=args.warmup_us, measure_us=args.measure_us)
    return config, params, window


def _command_serve(args: argparse.Namespace, out, record=None) -> int:
    from repro.harness.service import run_service

    config, params, window = _service_inputs(args)
    result = run_service(
        config, params, window, check_invariants=args.check_invariants
    )
    if record is not None:
        record["config_digest"] = stable_digest(config, params, window)
        record["check_invariants"] = args.check_invariants
        record["results"] = result.payload()
    print(f"configuration : {config.describe()}", file=out)
    print(f"load          : {args.arrivals} arrivals, "
          f"{result.offered_per_core_us:g} req/us/core offered, "
          f"zipf theta {args.theta:g}", file=out)
    print(f"achieved      : {result.achieved_per_us:.3f} req/us total "
          f"({result.completions} completions, "
          f"{result.arrivals} arrivals in window)", file=out)
    print(f"sojourn p50   : {result.p50_ns / units.US * units.NS:.2f} us",
          file=out)
    print(f"sojourn p99   : {result.p99_ns / units.US * units.NS:.2f} us",
          file=out)
    print(f"sojourn p999  : {result.p999_ns / units.US * units.NS:.2f} us",
          file=out)
    print(f"sojourn mean  : {result.mean_ns / units.US * units.NS:.2f} us, "
          f"jitter {result.jitter_ns / units.US * units.NS:.2f} us, "
          f"max {result.max_ns / units.US * units.NS:.2f} us", file=out)
    print(f"queue wait p99: {result.wait_p99_ns / units.US * units.NS:.2f} us",
          file=out)
    print(f"host queue    : {result.queue_depth_mean:.2f} mean / "
          f"{result.queue_depth_max:.0f} max requests waiting", file=out)
    return 0


def _command_explain(args: argparse.Namespace, out, record=None) -> int:
    import json

    from repro.harness.service import run_service
    from repro.obs import PID_SERVICE, TraceConfig, Tracer
    from repro.obs.spans import SEGMENTS, emit_exemplar_trace
    from repro.obs.validate import validate_trace

    config, params, window = _service_inputs(args)
    tracer = None
    if args.trace_out:
        tracer = Tracer(
            TraceConfig(tracks=frozenset({"service", "swq", "spans"}))
        )
    result = run_service(
        config, params, window, tracer=tracer,
        check_invariants=args.check_invariants,
    )
    attribution = result.attribution
    exemplars = result.exemplars
    if record is not None:
        record["config_digest"] = stable_digest(config, params, window)
        record["check_invariants"] = args.check_invariants
        record["results"] = {
            "attribution": attribution,
            "exemplars_digest": runlog.digest_of(exemplars),
            "p99_ns": result.p99_ns,
        }

    def us(ns: float) -> float:
        return ns / units.US * units.NS

    conservation = attribution["conservation"]
    print(f"configuration : {config.describe()}", file=out)
    print(f"load          : {args.arrivals} arrivals, "
          f"{result.offered_per_core_us:g} req/us/core offered, "
          f"zipf theta {args.theta:g}", file=out)
    print(f"requests      : {attribution['requests']} completed in the "
          f"measurement window ({conservation['in_flight']} still in "
          f"flight at end)", file=out)
    sojourn = attribution["sojourn"]
    print(f"sojourn       : p99 {us(sojourn['p99_ns']):.2f} us, "
          f"mean {us(sojourn['mean_ns']):.2f} us", file=out)
    print("", file=out)
    print("layer attribution (measurement window):", file=out)
    print(f"  {'segment':<8} {'mean/req':>10} {'p99':>10} "
          f"{'total':>11} {'share':>7}", file=out)
    for name in SEGMENTS:
        row = attribution["segments"][name]
        print(f"  {name:<8} {us(row['mean_ns']):>7.2f} us "
              f"{us(row['p99_ns']):>7.2f} us {us(row['total_ns']):>8.1f} us "
              f"{row['share']:>6.1%}", file=out)
    for core, rows in attribution["per_core"].items():
        shares = "  ".join(
            f"{name} {rows[name]['share']:.1%}" for name in SEGMENTS
        )
        print(f"  {core:<8} {shares}", file=out)
    print(f"conservation  : segment sums equal measured sojourn on all "
          f"{conservation['checked']}/{conservation['closed']} closed "
          f"requests ({conservation['segments_ticks']} == "
          f"{conservation['sojourn_ticks']} ticks aggregate)", file=out)
    print("", file=out)
    print(f"tail exemplars ({len(exemplars['slowest'])} slowest):", file=out)
    for rank, tree in enumerate(exemplars["slowest"], start=1):
        totals = dict.fromkeys(SEGMENTS, 0)
        for name, begin, end in tree["segments"]:
            totals[name] += end - begin
        breakdown = " + ".join(
            f"{name} {units.to_us(ticks):.2f}" for name, ticks in totals.items()
        )
        print(f"  #{rank} seq={tree['seq']} core{tree['core']} "
              f"key={tree['key']}: {units.to_us(tree['sojourn_ticks']):.2f} us"
              f" = {breakdown}", file=out)
    stratified = ", ".join(
        f"{label} seq={tree['seq']} {units.to_us(tree['sojourn_ticks']):.2f} us"
        for label, tree in exemplars["stratified"].items()
    )
    print(f"stratified    : {stratified}", file=out)
    if args.exemplars_out:
        with open(args.exemplars_out, "w") as handle:
            json.dump(exemplars, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"exemplars     : written to {args.exemplars_out}", file=out)
    if tracer is not None:
        trees = emit_exemplar_trace(tracer, exemplars, PID_SERVICE)
        tracer.write(args.trace_out)
        summary = tracer.summary()
        if record is not None:
            record["trace_digest"] = runlog.digest_of(tracer.to_dict())
        print(f"trace written : {args.trace_out}  ({trees} exemplar span "
              f"trees over {summary['events']} events; open at "
              f"https://ui.perfetto.dev)", file=out)
        errors = validate_trace(tracer.to_dict())
        if errors:
            print(f"INVALID trace : {len(errors)} schema error(s); "
                  f"first: {errors[0]}", file=out)
            return 1
    return 0


def _command_app(args: argparse.Namespace, out, record=None) -> int:
    config = SystemConfig(
        mechanism=_MECHANISMS[args.mechanism],
        cores=args.cores,
        threads_per_core=args.threads,
        device=DeviceConfig(total_latency_us=args.latency_us),
    )
    normalized, run = normalized_application(
        config, args.name, check_invariants=args.check_invariants
    )
    if record is not None:
        record["app"] = args.name
        record["config_digest"] = stable_digest(config)
        record["check_invariants"] = args.check_invariants
        record["results"] = {
            "normalized": normalized,
            "operations": run.operations,
            "ticks": run.ticks,
        }
    print(f"application   : {args.name}", file=out)
    print(f"configuration : {config.describe()}", file=out)
    print(f"operations    : {run.operations}", file=out)
    print(f"ns / operation: {units.to_ns(run.ticks_per_operation):.1f}", file=out)
    print(f"normalized    : {normalized:.4f}  (vs 1-thread DRAM baseline)", file=out)
    return 0


def _command_profile(args: argparse.Namespace, out, record=None) -> int:
    import cProfile
    import pstats

    from repro.sim import collect_kernel_stats

    if args.target == "microbench":
        from repro.harness.experiment import run_microbench

        config = _system_config(args)
        spec = MicrobenchSpec(
            work_count=args.work,
            reads_per_batch=args.mlp,
            writes_per_batch=args.writes,
        )
        window = MeasureWindow(
            warmup_us=args.warmup_us, measure_us=args.measure_us
        )
        label = f"microbench: {config.describe()}"

        def workload():
            run_microbench(
                config, spec, window,
                check_invariants=args.check_invariants,
            )
    else:
        # jobs=1 + no cache keeps every simulation in this process, where
        # the profiler and the stats collector can see it.
        engine = SweepEngine(
            jobs=1, use_cache=False, check_invariants=args.check_invariants
        )
        label = f"{args.target} --scale {args.scale}"

        def workload():
            ALL_FIGURES[args.target](args.scale, engine=engine)
    if record is not None:
        record["profiled"] = label
        record["check_invariants"] = args.check_invariants

    profiler = cProfile.Profile()
    with collect_kernel_stats() as kernel:
        started = time.perf_counter()
        profiler.enable()
        workload()
        profiler.disable()
        wall = time.perf_counter() - started

    stats = kernel.stats()
    events_per_sec = stats["events_fired"] / wall if wall > 0 else 0.0
    print(f"profiled      : {label}", file=out)
    print(f"simulators    : {stats['simulators']}", file=out)
    print(f"wall time     : {wall:.3f} s", file=out)
    print(f"events fired  : {stats['events_fired']}", file=out)
    print(f"heap ops      : {stats['heap_pushes']} pushes, "
          f"{stats['heap_pops']} pops", file=out)
    print(f"runq bypasses : {stats['runq_bypasses']} "
          f"(bypass ratio {kernel.bypass_ratio:.3f})", file=out)
    print(f"resumes       : {stats['process_resumes']} "
          f"({stats['processes_spawned']} processes spawned)", file=out)
    print(f"scheduler     : {stats['overflow_spills']} spills, "
          f"{stats['overflow_migrations']} migrations, "
          f"{stats['mode_switches']} mode switches", file=out)
    print(f"calendar      : bucket width {stats['bucket_width']}, "
          f"{stats['bucket_resizes']} resizes, "
          f"{stats['buckets_skipped']} empty buckets skipped "
          f"({stats['bucket_skip_spans']} spans)", file=out)
    print(f"due batches   : {stats['window_advances']} advances, "
          f"max {stats['due_batch_max']}; "
          f"1={stats['due_batch_1']} 2-7={stats['due_batch_2_7']} "
          f"8-63={stats['due_batch_8_63']} "
          f"64+={stats['due_batch_64_plus']}", file=out)
    print(f"events/sec    : {events_per_sec:,.0f}", file=out)
    print(file=out)
    pstats.Stats(profiler, stream=out).strip_dirs().sort_stats(
        args.sort
    ).print_stats(args.top)
    return 0


def _command_runs(args: argparse.Namespace, out) -> int:
    import json

    ledger = runlog.RunLedger()
    if args.runs_command == "list":
        entries = ledger.entries()
        if not entries:
            print(f"no runs recorded in {ledger.path}", file=out)
            return 0
        start = max(0, len(entries) - max(args.limit, 0))
        for index in range(start, len(entries)):
            entry = entries[index]
            stamp = time.strftime(
                "%Y-%m-%d %H:%M:%S",
                time.localtime(entry.get("timestamp", 0)),
            )
            argv = " ".join(str(arg) for arg in entry.get("argv", []))
            print(f"{index:>4}  {entry.get('run_id', '?'):<12}  {stamp}  "
                  f"status={entry.get('status')}  "
                  f"{entry.get('wall_s', 0.0):7.2f}s  repro {argv}", file=out)
        return 0
    if args.runs_command == "show":
        from repro.errors import ConfigError

        entry = ledger.resolve(args.ref)
        json.dump(entry, out, indent=2, sort_keys=True)
        out.write("\n")
        root = ((entry.get("sweep") or {}).get("queue") or {}).get("dir")
        if root:
            from repro.harness.coordinator import WorkQueue

            try:
                manifest = WorkQueue.attach(root).manifest()
            except (ConfigError, OSError):
                print(f"experiment manifest at {root} is gone or "
                      f"unreadable", file=out)
            else:
                print(f"experiment manifest ({root}):", file=out)
                json.dump(manifest, out, indent=2, sort_keys=True)
                out.write("\n")
        return 0
    base = ledger.resolve(args.a)
    current = ledger.resolve(args.b)
    return _diff_runs(base, current, args.rtol, args.atol, out)


def _diff_runs(base: dict, current: dict, rtol: float, atol: float,
               out) -> int:
    """Diff the deterministic sections of two ledger entries.

    Wall time, timestamps and cache-hit counts legitimately differ
    between identical runs, so the comparison covers only what must
    reproduce: figure series (with tolerance), kernel event counts,
    result numbers, and the config/metrics/trace digests.
    """
    from repro.errors import ConfigError
    from repro.harness.regression import (
        compare_mappings,
        compare_to_baseline,
        figure_from_dict,
    )

    for role, entry in (("base", base), ("current", current)):
        argv = " ".join(str(arg) for arg in entry.get("argv", []))
        print(f"{role:<7} : {entry.get('run_id', '?')}  repro {argv}",
              file=out)
    notes: list[str] = []
    for key in ("command", "model_version", "git_sha", "config_digest",
                "metrics_digest", "trace_digest", "status"):
        if base.get(key) != current.get(key):
            notes.append(f"{key}: {base.get(key)!r} -> {current.get(key)!r}")
    deviations = []
    base_fig = (base.get("figure") or {}).get("payload")
    current_fig = (current.get("figure") or {}).get("payload")
    if base_fig and current_fig:
        try:
            deviations += compare_to_baseline(
                figure_from_dict(current_fig), figure_from_dict(base_fig),
                rtol=rtol, atol=atol,
            )
        except ConfigError as error:
            notes.append(str(error))
    elif bool(base_fig) != bool(current_fig):
        notes.append("figure series recorded in only one of the runs")
    deviations += compare_mappings(
        current.get("kernel_stats") or {}, base.get("kernel_stats") or {},
        rtol=rtol, atol=atol, label="kernel_stats",
    )
    deviations += compare_mappings(
        (current.get("sweep") or {}).get("kernel_stats") or {},
        (base.get("sweep") or {}).get("kernel_stats") or {},
        rtol=rtol, atol=atol, label="sweep.kernel_stats",
    )
    deviations += compare_mappings(
        current.get("results") or {}, base.get("results") or {},
        rtol=rtol, atol=atol, label="results",
    )
    for note in notes:
        print(f"  {note}", file=out)
    for deviation in deviations:
        print(f"  {deviation.describe()}", file=out)
    total = len(notes) + len(deviations)
    if total:
        print(f"{total} deviation(s)", file=out)
        return 1
    print("runs match: no deviations", file=out)
    return 0


def _command_list(out) -> int:
    print("figures:", file=out)
    for name in sorted(ALL_FIGURES):
        print(f"  {name}", file=out)
    print("applications:", file=out)
    for name in sorted(APPLICATIONS):
        print(f"  {name}", file=out)
    return 0


#: Commands that append a provenance record to the run ledger.
_RECORDED_COMMANDS = frozenset(
    {"run", "serve", "explain", "trace", "figure", "sweep", "sweep-worker",
     "app", "profile"}
)


def _dispatch(args: argparse.Namespace, out, record) -> int:
    if args.command == "run":
        return _command_run(args, out, record)
    if args.command == "serve":
        return _command_serve(args, out, record)
    if args.command == "explain":
        return _command_explain(args, out, record)
    if args.command == "trace":
        return _command_trace(args, out, record)
    if args.command == "figure":
        return _command_figure(args, out, record)
    if args.command == "sweep":
        return _command_sweep(args, out, record)
    if args.command == "sweep-worker":
        return _command_sweep_worker(args, out, record)
    if args.command == "app":
        return _command_app(args, out, record)
    if args.command == "profile":
        return _command_profile(args, out, record)
    if args.command == "runs":
        return _command_runs(args, out)
    if args.command == "lint":
        from repro.analysis import run_from_args

        return run_from_args(args, out)
    if args.command == "list":
        return _command_list(out)
    if args.command == "table1":
        from repro.taxonomy import render_table_i

        print(render_table_i(), file=out)
        return 0
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    if out is None:
        out = sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if (args.command not in _RECORDED_COMMANDS
                or not runlog.RunLedger.enabled()):
            return _dispatch(args, out, None)
        from repro.sim import collect_kernel_stats

        record = {
            "command": args.command,
            "argv": (list(argv) if argv is not None
                     else list(sys.argv[1:])),
            "model_version": MODEL_VERSION,
            "git_sha": runlog.git_sha(),
        }
        started = time.perf_counter()
        try:
            with collect_kernel_stats() as kernel:
                status = _dispatch(args, out, record)
        except Exception as error:
            # Failed runs are part of the provenance story too; record
            # the failure, then let the error propagate unchanged.
            record["status"] = "error"
            record["error"] = f"{type(error).__name__}: {error}"
            record["wall_s"] = round(time.perf_counter() - started, 6)
            runlog.link_manifests(runlog.RunLedger().record(record))
            raise
        record["status"] = status
        record["wall_s"] = round(time.perf_counter() - started, 6)
        record["kernel_stats"] = kernel.stats()
        runlog.link_manifests(runlog.RunLedger().record(record))
        return status
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: exit quietly, like a
        # well-behaved Unix tool.
        return 0
