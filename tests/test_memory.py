"""Unit tests for the functional memory."""

import pytest

from repro.errors import AddressError
from repro.memory import WORD_BYTES, FlatMemory


def test_unwritten_words_read_zero():
    memory = FlatMemory()
    assert memory.read_word(0x1000) == 0


def test_write_read_roundtrip():
    memory = FlatMemory()
    memory.write_word(0x88, 0xDEADBEEF)
    assert memory.read_word(0x88) == 0xDEADBEEF


def test_values_truncate_to_64_bits():
    memory = FlatMemory()
    memory.write_word(0, (1 << 64) + 5)
    assert memory.read_word(0) == 5


def test_unaligned_access_rejected():
    memory = FlatMemory()
    with pytest.raises(AddressError):
        memory.read_word(0x3)
    with pytest.raises(AddressError):
        memory.write_word(0x7, 1)
    with pytest.raises(AddressError):
        memory.read_word(-8)


def test_line_read_packs_words_little_endian():
    memory = FlatMemory()
    for i in range(8):
        memory.write_word(0x100 + i * WORD_BYTES, i + 1)
    line = memory.read_line(0x100)
    assert len(line) == 64
    for i in range(8):
        assert int.from_bytes(line[i * 8 : (i + 1) * 8], "little") == i + 1


def test_line_read_requires_alignment():
    memory = FlatMemory()
    with pytest.raises(AddressError):
        memory.read_line(0x108)


def test_word_from_line():
    memory = FlatMemory()
    memory.write_word(0x120, 777)
    line = memory.read_line(0x100)
    assert FlatMemory.word_from_line(0x100, line, 0x120) == 777
    with pytest.raises(AddressError):
        FlatMemory.word_from_line(0x100, line, 0x200)
    with pytest.raises(AddressError):
        FlatMemory.word_from_line(0x100, line, 0x104)


def test_sparse_footprint():
    memory = FlatMemory()
    memory.write_word(0, 1)
    memory.write_word(1 << 40, 2)
    assert memory.word_count() == 2


def test_line_size_must_be_word_multiple():
    with pytest.raises(AddressError):
        FlatMemory(line_bytes=60)


def test_line_address_helper():
    memory = FlatMemory()
    assert memory.line_address(0) == 0
    assert memory.line_address(63) == 0
    assert memory.line_address(64) == 64
    assert memory.line_address(130) == 128
    with pytest.raises(AddressError):
        memory.line_address(-1)
