"""Every example script must at least parse, import-check, and expose
a ``main()`` (full executions are exercised manually / in CI's slow
lane; simulating them all would dominate the unit suite)."""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    assert len(EXAMPLES) >= 8


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_structure(path):
    tree = ast.parse(path.read_text())
    # A module docstring explaining what it shows...
    assert ast.get_docstring(tree), path.name
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    # ...and a main() guarded by __main__.
    assert "main" in names, path.name
    assert any(
        isinstance(node, ast.If) and "__main__" in ast.dump(node)
        for node in tree.body
    ), path.name


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Imports at the top of each example must be importable."""
    tree = ast.parse(path.read_text())
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module:
            module = __import__(node.module, fromlist=[a.name for a in node.names])
            for alias in node.names:
                assert hasattr(module, alias.name), (path.name, alias.name)
