"""Unit tests for the physical address map."""

import pytest

from repro.cpu.uncore import AddressSpace
from repro.errors import AddressError, ConfigError
from repro.host.addressmap import DEVICE_BASE, AddressMap


def test_space_routing():
    amap = AddressMap(cores=2, bar_bytes=1 << 20)
    assert amap.space_of(0x1000) is AddressSpace.DRAM
    assert amap.space_of(DEVICE_BASE) is AddressSpace.DEVICE
    assert amap.space_of(DEVICE_BASE + (1 << 20) - 64) is AddressSpace.DEVICE
    assert amap.space_of(amap.doorbell_addr(1)) is AddressSpace.DEVICE


def test_unmapped_address_rejected():
    amap = AddressMap(cores=1, bar_bytes=1 << 20)
    with pytest.raises(AddressError):
        amap.space_of(DEVICE_BASE + (1 << 20) + 4096)
    with pytest.raises(AddressError):
        amap.space_of(-1)


def test_bar_offset_roundtrip():
    amap = AddressMap(cores=1, bar_bytes=1 << 20)
    addr = DEVICE_BASE + 0x4540
    assert amap.host_addr(amap.bar_offset(addr)) == addr
    with pytest.raises(AddressError):
        amap.bar_offset(0x1000)
    with pytest.raises(AddressError):
        amap.host_addr(1 << 20)


def test_partitions_tile_the_bar():
    amap = AddressMap(cores=4, bar_bytes=1 << 20)
    assert amap.partition_bytes == (1 << 20) // 4
    for core in range(4):
        base = amap.partition_base(core)
        assert amap.core_of_offset(amap.bar_offset(base)) == core
        last = amap.bar_offset(base) + amap.partition_bytes - 64
        assert amap.core_of_offset(last) == core


def test_partition_alignment_slack_goes_to_last_core():
    # 3 cores in 1 MiB: partitions are line-aligned; the tail slack
    # belongs to core 2.
    amap = AddressMap(cores=3, bar_bytes=1 << 20)
    assert amap.partition_bytes % 64 == 0
    assert amap.core_of_offset((1 << 20) - 64) == 2


def test_partition_offset_is_relative():
    amap = AddressMap(cores=2, bar_bytes=1 << 20)
    offset = amap.bar_offset(amap.partition_base(1)) + 0x240
    assert amap.partition_offset(1, offset) == 0x240
    with pytest.raises(AddressError):
        amap.partition_offset(0, offset)


def test_doorbell_addresses():
    amap = AddressMap(cores=4, bar_bytes=1 << 20)
    for core in range(4):
        addr = amap.doorbell_addr(core)
        assert amap.doorbell_core(addr) == core
    assert amap.doorbell_core(amap.control_base - 8) is None
    assert amap.doorbell_core(amap.control_base + 4) is None  # misaligned
    assert amap.doorbell_core(amap.control_base + 8 * 4) is None  # past end


def test_invalid_core_rejected():
    amap = AddressMap(cores=2, bar_bytes=1 << 20)
    with pytest.raises(AddressError):
        amap.partition_base(2)
    with pytest.raises(AddressError):
        amap.doorbell_addr(-1)


def test_invalid_construction():
    with pytest.raises(ConfigError):
        AddressMap(cores=0, bar_bytes=1 << 20)
    with pytest.raises(ConfigError):
        AddressMap(cores=1024, bar_bytes=1024)  # less than a line per core
