"""Unit tests for the host bridge (root complex)."""

import pytest

from repro.config import PcieConfig
from repro.device.fetcher import DmaReadRequest, DmaWriteRequest
from repro.errors import ProtocolError
from repro.host.addressmap import DEVICE_BASE, AddressMap
from repro.host.bridge import DramTarget, HostBridge
from repro.interconnect.dram import DramChannel
from repro.interconnect.packets import Tlp, TlpKind
from repro.interconnect.pcie import PcieLink
from repro.memory import FlatMemory
from repro.sim import Simulator
from repro.units import ns


def build(sim):
    link = PcieLink(sim, PcieConfig(propagation_ns=50.0))
    dram = DramChannel(sim, ns(60), 25.6e9)
    amap = AddressMap(cores=1, bar_bytes=1 << 20)
    bridge = HostBridge(sim, link, dram, amap)
    return link, dram, amap, bridge


def test_mmio_read_matched_by_tag():
    sim = Simulator()
    link, _dram, _amap, bridge = build(sim)
    served = []

    def device(tlp):
        served.append(tlp.tag)
        link.upstream.send(
            Tlp(TlpKind.COMPLETION, tlp.address, 64, tag=tlp.tag, data=b"\x07" * 64)
        )

    link.downstream.set_receiver(device)
    done = bridge.mmio_read_line(DEVICE_BASE)
    data = sim.run(done)
    assert data == b"\x07" * 64
    assert bridge.mmio_reads == 1
    assert served


def test_mmio_read_outside_bar_rejected():
    sim = Simulator()
    _link, _dram, _amap, bridge = build(sim)
    with pytest.raises(Exception):
        bridge.mmio_read_line(0x1000)


def test_unknown_completion_tag_raises():
    sim = Simulator()
    link, _dram, _amap, bridge = build(sim)
    link.downstream.set_receiver(lambda tlp: None)
    link.upstream.send(Tlp(TlpKind.COMPLETION, 0, 64, tag=999999))
    with pytest.raises(ProtocolError):
        sim.run()


def test_dma_read_returns_memory_at_read_time():
    """The descriptor snapshot is taken when host DRAM is read, not
    when the request was sent."""
    sim = Simulator()
    link, _dram, _amap, bridge = build(sim)
    state = {"value": "early"}
    replies = []
    link.downstream.set_receiver(lambda tlp: replies.append(tlp))

    context = DmaReadRequest(reply_bytes=64, read_fn=lambda: state["value"])
    link.upstream.send(
        Tlp(TlpKind.MEM_READ, 0x2000, 0, requester="fetcher0", context=context)
    )
    state["value"] = "late"  # changed before the DRAM read completes
    sim.run()
    assert len(replies) == 1
    assert replies[0].data == "late"
    assert replies[0].requester == "fetcher0"
    assert bridge.dma_reads == 1


def test_dma_read_without_context_raises():
    sim = Simulator()
    link, _dram, _amap, _bridge = build(sim)
    link.downstream.set_receiver(lambda tlp: None)
    link.upstream.send(Tlp(TlpKind.MEM_READ, 0x2000, 0))
    with pytest.raises(ProtocolError):
        sim.run()


def test_dma_write_commit_runs_after_dram_write():
    sim = Simulator()
    link, _dram, _amap, bridge = build(sim)
    commits = []
    link.upstream.send(
        Tlp(
            TlpKind.MEM_WRITE,
            0x3000,
            64,
            context=DmaWriteRequest(lambda: commits.append(sim.now)),
        )
    )
    sim.run()
    assert len(commits) == 1
    # Wire time + propagation + DRAM write latency all elapsed.
    assert commits[0] > ns(60)
    assert bridge.dma_writes == 1


def test_posted_mmio_write_forwards_downstream():
    sim = Simulator()
    link, _dram, amap, bridge = build(sim)
    seen = []
    link.downstream.set_receiver(lambda tlp: seen.append((tlp.kind, tlp.address)))
    bridge.post_mmio_write(amap.doorbell_addr(0), 8)
    sim.run()
    assert seen == [(TlpKind.MEM_WRITE, amap.doorbell_addr(0))]


def test_dram_target_returns_functional_data():
    sim = Simulator()
    world = FlatMemory()
    world.write_word(0x500 * 64, 42)
    dram = DramChannel(sim, ns(60), 25.6e9)
    target = DramTarget(dram, world)
    data = sim.run(target.read_line(0x500 * 64))
    assert FlatMemory.word_from_line(0x500 * 64, data, 0x500 * 64) == 42
