"""Integration-level tests of the System builder."""

import pytest

from repro.config import (
    AccessMechanism,
    BackingStore,
    DeviceConfig,
    SystemConfig,
    UncoreConfig,
)
from repro.cpu.uncore import AddressSpace
from repro.errors import ConfigError, SimulationError
from repro.host.driver import PlatformConfig
from repro.host.system import System
from repro.units import ns, to_ns, us


def one_read(addr, work=200):
    def factory(ctx):
        def body():
            value = yield from ctx.read(addr)
            yield from ctx.work(work)
            return value
        return body()
    return factory


def test_all_mechanisms_build_and_run():
    for mechanism in AccessMechanism:
        config = SystemConfig(mechanism=mechanism)
        system = System(config)
        addr = system.alloc_data(0, 64)
        system.world.write_word(addr, 1234)
        handle = system.spawn(0, one_read(addr))
        system.run_to_completion(limit_ticks=10**9)
        assert handle.result == 1234


def test_baseline_reads_route_to_dram():
    config = SystemConfig(backing=BackingStore.DRAM)
    system = System(config)
    addr = system.alloc_data(0, 64)
    assert system.map.space_of(addr) is AddressSpace.DRAM
    system.world.write_word(addr, 7)
    handle = system.spawn(0, one_read(addr))
    ticks = system.run_to_completion(limit_ticks=10**9)
    assert handle.result == 7
    # DRAM access + 200 work instructions: well under a microsecond.
    assert ticks < ns(400)
    assert system.device.requests_served == 0


def test_device_read_hits_configured_latency():
    config = SystemConfig(
        mechanism=AccessMechanism.ON_DEMAND,
        device=DeviceConfig(total_latency_us=2.0),
    )
    system = System(config)
    addr = system.alloc_data(0, 64)
    handle = system.spawn(0, one_read(addr, work=0))
    ticks = system.run_to_completion(limit_ticks=10**9)
    assert handle.result == 0
    # End-to-end within ~3% of the configured 2 us.
    assert abs(to_ns(ticks) - 2000) < 60


def test_too_low_device_latency_rejected():
    config = SystemConfig(device=DeviceConfig(total_latency_us=0.5))
    with pytest.raises(ConfigError, match="below"):
        System(config)


def test_platform_validation_enforced():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    with pytest.raises(ConfigError):
        System(config, platform=PlatformConfig(bar_cacheable=False))
    with pytest.raises(ConfigError):
        System(config, platform=PlatformConfig(isolated_cores=(0, 0)))
    # Software queues do not need a cacheable BAR.
    System(
        SystemConfig(mechanism=AccessMechanism.SOFTWARE_QUEUE),
        platform=PlatformConfig(bar_cacheable=False),
    )


def test_device_partition_allocation_is_per_core():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, cores=2)
    system = System(config)
    a = system.alloc_device(0, 128)
    b = system.alloc_device(1, 128)
    assert system.map.core_of_offset(system.map.bar_offset(a)) == 0
    assert system.map.core_of_offset(system.map.bar_offset(b)) == 1


def test_device_partition_exhaustion():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        device=DeviceConfig(bar_bytes=1 << 20),
    )
    system = System(config)
    system.alloc_device(0, 1 << 20)
    with pytest.raises(ConfigError, match="exhausted"):
        system.alloc_device(0, 64)


def test_allocations_are_line_aligned_and_disjoint():
    system = System(SystemConfig())
    a = system.alloc_data(0, 10)
    b = system.alloc_data(0, 100)
    assert a % 64 == 0 and b % 64 == 0
    assert b >= a + 64


def test_run_window_measures_steady_state():
    from repro.workloads.microbench import MicrobenchSpec, install_microbench

    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, threads_per_core=10)
    system = System(config)
    install_microbench(system, MicrobenchSpec(work_count=200), 10)
    stats = system.run_window(us(20), us(50))
    assert stats.ticks == us(50)
    assert stats.work_instructions > 0
    assert stats.work_ipc == pytest.approx(
        stats.work_instructions / stats.cycles
    )
    assert stats.accesses > 100


def test_run_to_completion_timeout():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH)
    system = System(config)

    def forever(ctx):
        def body():
            while True:
                yield from ctx.work(100)
        return body()

    system.spawn(0, forever)
    with pytest.raises(SimulationError, match="did not finish"):
        system.run_to_completion(limit_ticks=us(10))


def test_report_contains_diagnostics():
    config = SystemConfig(mechanism=AccessMechanism.PREFETCH, cores=2)
    system = System(config)
    addr = system.alloc_data(0, 64)
    system.spawn(0, one_read(addr))
    system.run_to_completion(limit_ticks=10**9)
    report = system.report()
    assert len(report["lfb_max_per_core"]) == 2
    assert report["device_requests"] == 1
    assert report["uncore_pcie_max"] == 1


def test_chip_queue_config_respected():
    config = SystemConfig(
        mechanism=AccessMechanism.PREFETCH,
        uncore=UncoreConfig(pcie_queue_entries=5),
    )
    system = System(config)
    assert system.uncore.queue(AddressSpace.DEVICE).capacity == 5


def test_latency_report_prefers_measurement_window():
    from repro.sim.trace import LatencyStat

    stat = LatencyStat("sojourn")
    for _ in range(10):
        stat.record(1_000_000)  # warmup pollution
    stat.active = True
    for value in (100, 200, 300, 400):
        stat.record(value)
    report = System._latency_report(stat)
    # Every field comes from the window: count/mean/max as well as the
    # percentiles (they used to disagree -- lifetime mean, windowed p99).
    assert report["count"] == 4
    assert report["mean"] == to_ns(250)
    assert report["max"] == to_ns(400)
    assert report["p50"] <= report["p99"] <= report["p999"] <= report["max"]
    assert report["jitter"] >= 0


def test_latency_report_falls_back_to_lifetime_then_none():
    from repro.sim.trace import LatencyStat

    stat = LatencyStat("sojourn")
    assert System._latency_report(stat) is None
    stat.record(500)
    report = System._latency_report(stat)
    assert report["count"] == 1
    assert report["mean"] == report["p50"] == report["max"] == to_ns(500)
