"""The ``repro lint`` / ``python -m repro.analysis`` surface: exit
codes, report formats, the tree-clean gate, and the wall-time budget."""

import io
import json
import time
from pathlib import Path

import repro
from repro.analysis import analyze_paths
from repro.analysis.main import main
from repro.analysis.reporting import REPORT_FORMAT
from repro.cli import main as repro_main

FIXTURES = Path(__file__).parent / "fixtures"
PACKAGE = Path(repro.__file__).resolve().parent


def test_clean_file_exits_zero(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    out = io.StringIO()
    assert main([str(clean)], out) == 0
    assert "0 finding(s)" in out.getvalue()


def test_bad_fixture_exits_one():
    out = io.StringIO()
    assert main([str(FIXTURES / "sim101_bad.py"), "--no-baseline"], out) == 1
    assert "SIM101" in out.getvalue()


def test_missing_path_exits_two(tmp_path):
    assert main([str(tmp_path / "nope.py")], io.StringIO()) == 2


def test_corrupt_baseline_exits_two(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("X = 1\n")
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    assert main(
        [str(clean), "--baseline", str(bad)], io.StringIO()
    ) == 2


def test_json_report_schema():
    out = io.StringIO()
    main([str(FIXTURES / "sim101_bad.py"), "--format=json",
          "--no-baseline"], out)
    report = json.loads(out.getvalue())
    assert report["format"] == REPORT_FORMAT
    assert report["files_scanned"] == 1
    assert report["summary"] == {"SIM101": 1}
    (finding,) = report["findings"]
    assert finding["code"] == "SIM101"
    assert finding["line"] > 0
    assert finding["fingerprint"]
    assert "time.time" in finding["message"]


def test_repro_cli_lint_subcommand():
    out = io.StringIO()
    code = repro_main(
        ["lint", str(FIXTURES / "sim101_good.py"), "--no-baseline"], out=out
    )
    assert code == 0
    assert "0 finding(s)" in out.getvalue()


def test_tree_is_clean_without_any_baseline():
    """The committed policy: the whole package lints clean with an
    empty baseline (every real finding is fixed or pragma-annotated)."""
    out = io.StringIO()
    assert main([str(PACKAGE), "--no-baseline", "--strict"], out) == 0


def test_full_tree_lint_stays_fast():
    """simlint gates CI, so a full-tree run must stay well under an
    interactive budget."""
    start = time.perf_counter()
    result = analyze_paths([PACKAGE])
    elapsed = time.perf_counter() - start
    assert result.files_scanned > 50
    assert elapsed < 10.0, f"full-tree lint took {elapsed:.1f}s"
