"""Engine behavior: fingerprints, occurrence numbering, determinism."""

import textwrap

from repro.analysis import analyze_paths, analyze_source

_VIOLATION = textwrap.dedent('''
    import time


    def stamp():
        return time.time()
''')


def test_fingerprint_is_line_number_independent(tmp_path):
    """Shifting a finding down the file must not change its
    fingerprint, or baselines would churn on every edit."""
    first = tmp_path / "mod.py"
    first.write_text(_VIOLATION)
    shifted = tmp_path / "mod.py"
    before = analyze_paths([first]).findings
    shifted.write_text("# a new leading comment\n\n" + _VIOLATION)
    after = analyze_paths([shifted]).findings
    assert len(before) == len(after) == 1
    assert before[0].line != after[0].line
    assert before[0].fingerprint == after[0].fingerprint


def test_identical_findings_get_distinct_occurrences():
    findings = analyze_source(textwrap.dedent('''
        import time


        def first():
            return time.time()


        def second():
            return time.time()
    '''))
    assert len(findings) == 2
    assert findings[0].snippet == findings[1].snippet
    assert findings[0].fingerprint != findings[1].fingerprint
    assert {finding.occurrence for finding in findings} == {0, 1}


def test_syntax_error_is_sim003():
    findings = analyze_source("def broken(:\n    pass\n")
    assert [finding.code for finding in findings] == ["SIM003"]


def test_findings_are_sorted_and_stable(tmp_path):
    """Two runs over the same tree produce identical reports."""
    for name in ("b_mod.py", "a_mod.py"):
        (tmp_path / name).write_text(_VIOLATION)
    one = analyze_paths([tmp_path])
    two = analyze_paths([tmp_path])
    assert [f.describe() for f in one.findings] == [
        f.describe() for f in two.findings
    ]
    paths = [f.path for f in one.findings]
    assert paths == sorted(paths)


def test_directory_walk_skips_pycache(tmp_path):
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "stale.py").write_text(_VIOLATION)
    (tmp_path / "real.py").write_text("X = 1\n")
    result = analyze_paths([tmp_path])
    assert result.files_scanned == 1
    assert result.findings == []
