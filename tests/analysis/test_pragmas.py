"""Pragma parsing, suppression scopes, and hygiene diagnostics."""

import textwrap

from repro.analysis import analyze_source
from repro.analysis.pragmas import parse_pragmas


def _codes(findings):
    return sorted(finding.code for finding in findings)


def test_line_pragma_suppresses_same_line():
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp():
            return time.time()  # simlint: disable=SIM101 -- host-side log stamp
    '''))
    assert findings == []


def test_next_line_pragma_suppresses_following_line():
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp():
            # simlint: disable-next-line=SIM101 -- host-side log stamp
            return time.time()
    '''))
    assert findings == []


def test_next_line_pragma_skips_wrapped_justification_comments():
    """A justification wrapped over several comment lines still points
    the pragma at the first following code line."""
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp():
            # simlint: disable-next-line=SIM101 -- the justification of
            # this suppression wraps across three comment lines, which
            # must not unhook the pragma from the code below
            return time.time()
    '''))
    assert findings == []


def test_blank_line_breaks_next_line_pragma():
    """A pragma never suppresses at a distance: a blank line between
    pragma and code leaves the violation live (plus SIM002 for the now
    useless pragma)."""
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp():
            # simlint: disable-next-line=SIM101 -- orphaned

            return time.time()
    '''))
    assert _codes(findings) == ["SIM002", "SIM101"]


def test_file_pragma_suppresses_everywhere():
    findings = analyze_source(textwrap.dedent('''
        # simlint: disable-file=SIM101 -- host-side timing helpers
        import time


        def first():
            return time.time()


        def second():
            return time.monotonic()
    '''))
    assert findings == []


def test_missing_justification_is_sim001():
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp():
            return time.time()  # simlint: disable=SIM101
    '''))
    # The malformed pragma does not suppress, so the violation stays.
    assert _codes(findings) == ["SIM001", "SIM101"]


def test_unknown_code_is_sim001():
    findings = analyze_source(
        "X = 1  # simlint: disable=SIM999 -- no such code\n"
    )
    assert _codes(findings) == ["SIM001"]


def test_unparsable_pragma_is_sim001():
    findings = analyze_source(
        "X = 1  # simlint: disable SIM101 missing equals\n"
    )
    assert _codes(findings) == ["SIM001"]


def test_unused_pragma_is_sim002():
    findings = analyze_source(
        "X = 1  # simlint: disable=SIM101 -- nothing to suppress\n"
    )
    assert _codes(findings) == ["SIM002"]


def test_meta_codes_are_not_suppressible():
    """SIM001 cannot be silenced by a pragma naming SIM001."""
    findings = analyze_source(textwrap.dedent('''
        # simlint: disable-file=SIM001 -- trying to silence hygiene
        X = 1  # simlint: disable=SIM101
    '''))
    codes = _codes(findings)
    # The disable-file pragma is itself malformed (meta code), and the
    # justification-less line pragma still gets reported.
    assert codes.count("SIM001") == 2


def test_pragma_in_string_literal_is_ignored():
    findings = analyze_source(textwrap.dedent('''
        DOC = "example:  # simlint: disable=SIM101"
    '''))
    assert findings == []


def test_pragma_in_docstring_is_ignored():
    findings = analyze_source(textwrap.dedent('''
        def helper():
            """Mentions # simlint: disable=bogus inside a docstring."""
            return 1
    '''))
    assert findings == []


def test_multiple_codes_in_one_pragma():
    findings = analyze_source(textwrap.dedent('''
        import time


        def stamp(sim, deadline):
            # simlint: disable-next-line=SIM101, SIM202 -- host-side helper
            return sim.timeout(deadline - sim.now), time.time()
    '''))
    assert findings == []


def test_parse_pragmas_records_justification():
    pragmas = parse_pragmas(
        "X = 1  # simlint: disable=SIM301 -- seed stride, not a unit\n"
    ).pragmas
    assert len(pragmas) == 1
    assert pragmas[0].codes == ("SIM301",)
    assert pragmas[0].justification == "seed stride, not a unit"
    assert pragmas[0].problem == ""
