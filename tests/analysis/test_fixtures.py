"""The fixture meta-tests: every code demonstrably fires and every
good fixture is demonstrably clean.

Fixtures double as living documentation -- ``{code}_bad.py`` is the
smallest program that violates the contract, ``{code}_good.py`` the
idiomatic fix.  The meta-test keeps the registry honest: adding a code
to :mod:`repro.analysis.codes` without a firing fixture fails here.
"""

from pathlib import Path

import pytest

from repro.analysis import analyze_paths
from repro.analysis.codes import CODES, META_CODES

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.mark.parametrize("code", sorted(CODES))
def test_every_code_has_a_firing_bad_fixture(code):
    path = FIXTURES / f"{code.lower()}_bad.py"
    assert path.exists(), f"no bad fixture for {code}"
    result = analyze_paths([path])
    fired = {finding.code for finding in result.findings}
    assert code in fired, f"{path.name} does not fire {code} (got {fired})"


@pytest.mark.parametrize("code", sorted(set(CODES) - META_CODES))
def test_every_checker_code_has_a_clean_good_fixture(code):
    path = FIXTURES / f"{code.lower()}_good.py"
    assert path.exists(), f"no good fixture for {code}"
    result = analyze_paths([path])
    assert result.findings == [], [
        finding.describe() for finding in result.findings
    ]


def test_pragma_fixture_is_clean():
    result = analyze_paths([FIXTURES / "pragma_good.py"])
    assert result.findings == []


def test_bad_fixtures_fire_only_their_own_family():
    """A bad fixture may fire its code more than once but must not drag
    in unrelated codes (that would make the fixtures misleading)."""
    for path in sorted(FIXTURES.glob("sim*_bad.py")):
        expected = path.stem.split("_")[0].upper()
        result = analyze_paths([path])
        fired = {finding.code for finding in result.findings}
        assert fired == {expected}, (
            f"{path.name} fires {sorted(fired)}, expected only {expected}"
        )
