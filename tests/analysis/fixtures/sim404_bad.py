"""Bad: span emission with no liveness guard."""


class Worker:
    def __init__(self, spans):
        self.spans = spans
        self.span = None

    def serve(self, request, now):
        self.span = self.spans.open(request.key, 0, now)
        self.span.mark("work", now)
        self.spans.close(self.span, now)
