"""Good: the kernel's scheduler is the only timed queue -- each item
gets its own timeout and the payload rides in a closure."""


class ReleaseQueue:
    def __init__(self, sim, send):
        self.sim = sim
        self.send = send

    def submit(self, delay, payload):
        release = self.sim.timeout(delay)

        def _release(_event, payload=payload):
            self.send(payload)

        release.add_callback(_release)
