"""Bad: wall-clock read feeding a return value."""

import time


def stamp():
    return time.time()
