"""Good: every RNG carries an explicit seed."""

import random

import numpy as np


def draw(seed):
    rng = random.Random(seed)
    gen = np.random.default_rng(seed)
    return rng.random() + gen.random()
