"""Clean: a justified pragma suppressing an intentional violation."""

import time

# simlint: disable-next-line=SIM101 -- host-side stamp for a log
# file name; never feeds simulation state
STAMP = time.time()
