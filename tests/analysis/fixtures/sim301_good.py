"""Good: the conversion goes through repro.units."""

from repro import units


def to_us(ticks):
    return units.to_us(ticks)
