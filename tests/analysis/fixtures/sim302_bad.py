"""Bad: ns() returns integer ticks, but the name claims ns."""

from repro.units import ns

latency_ns = ns(35.0)
