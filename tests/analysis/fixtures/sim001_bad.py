"""Bad: one pragma with an unknown code, one with no justification."""

# simlint: disable=SIM999 -- there is no such code
FIRST = 1

SECOND = 2  # simlint: disable=SIM101
