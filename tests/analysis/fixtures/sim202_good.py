"""Good: the delta is clamped at zero."""


def wait_until(sim, deadline):
    yield sim.timeout(max(0, deadline - sim.now))
