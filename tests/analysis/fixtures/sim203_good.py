"""Good: waiting is modeled with simulated time."""


def worker(sim):
    yield sim.timeout(1)
