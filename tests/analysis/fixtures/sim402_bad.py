"""Bad: the same literal probe name registered twice."""


def install(metrics):
    metrics.register("core.retired", lambda: 1)
    metrics.register("core.retired", lambda: 2)
