"""Bad: a bare subtraction can schedule into the past."""


def wait_until(sim, deadline):
    yield sim.timeout(deadline - sim.now)
