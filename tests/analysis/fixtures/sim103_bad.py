"""Bad: iterating a set straight into event scheduling."""


def schedule_all(sim, events):
    pending = {event for event in events}
    for event in pending:
        sim.schedule(event)
