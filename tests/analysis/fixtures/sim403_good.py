"""Good: probe names derive from stable indices."""


def install(metrics, index):
    metrics.register(f"core{index}.retired", lambda: 1)
