"""Good: the set is sorted before iteration."""


def schedule_all(sim, events):
    pending = {event for event in events}
    for event in sorted(pending):
        sim.schedule(event)
