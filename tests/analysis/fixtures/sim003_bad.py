"""Bad: this file does not parse."""

def broken(:
    pass
