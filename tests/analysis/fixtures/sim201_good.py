"""Good: release from a finally, gated on grant.triggered."""


def fill(sim, queue):
    grant = queue.acquire()
    try:
        if not grant.fired:
            yield grant
        yield sim.timeout(10)
    finally:
        if grant.triggered:
            queue.release()
