"""Bad: a well-formed pragma that suppresses nothing."""

VALUE = 1  # simlint: disable=SIM101 -- nothing here reads the clock
