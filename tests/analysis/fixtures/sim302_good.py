"""Good: the binding's suffix matches the produced unit."""

from repro.units import ns

latency_ticks = ns(35.0)
