"""Bad: tracer emission with no liveness guard."""


class Widget:
    def __init__(self, tracer):
        self.tracer = tracer

    def sample(self, now):
        self.tracer.counter("w", 1, "w.occupancy", now, {"v": 1})
