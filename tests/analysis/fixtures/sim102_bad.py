"""Bad: seedless RNG construction and a global-RNG draw."""

import random

import numpy as np


def draw():
    rng = random.Random()
    return rng.random() + np.random.rand()
