"""Bad: a module-private priority queue shadowing the kernel's timed
tier -- a second ordering authority next to the scheduler."""

import heapq


class ReleaseQueue:
    def __init__(self, sim, send):
        self.sim = sim
        self.send = send
        self._heap = []
        self._seq = 0

    def submit(self, deadline, payload):
        self._seq += 1
        heapq.heappush(self._heap, (deadline, self._seq, payload))

    def release_due(self):
        while self._heap and self._heap[0][0] <= self.sim.now:
            _deadline, _seq, payload = heapq.heappop(self._heap)
            self.send(payload)
