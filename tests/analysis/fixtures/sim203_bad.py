"""Bad: a host-blocking sleep inside a simulation coroutine."""

import time


def worker(sim):
    time.sleep(0.1)
    yield sim.timeout(1)
