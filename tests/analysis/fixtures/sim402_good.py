"""Good: every probe name is distinct."""


def install(metrics):
    metrics.register("core.retired", lambda: 1)
    metrics.register("core.stalled", lambda: 2)
