"""Good: emission sits behind the zero-cost guard."""


class Widget:
    def __init__(self, tracer):
        self.tracer = tracer

    def sample(self, now):
        if self.tracer is not None:
            self.tracer.counter("w", 1, "w.occupancy", now, {"v": 1})
