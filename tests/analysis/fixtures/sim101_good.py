"""Good: simulated time comes from the kernel clock."""


def stamp(sim):
    return sim.now
