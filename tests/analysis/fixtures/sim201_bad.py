"""Bad: in-function release that is not exception-safe."""


def fill(sim, queue):
    grant = queue.acquire()
    if not grant.fired:
        yield grant
    yield sim.timeout(10)
    queue.release()
