"""Bad: a probe name built from a live object identity."""


def install(metrics, obj):
    metrics.register(f"core.{id(obj)}.retired", lambda: 1)
