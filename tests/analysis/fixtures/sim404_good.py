"""Good: span emission behind the zero-cost guard on a local."""


class Worker:
    def __init__(self, spans):
        self.spans = spans
        self.span = None

    def serve(self, request, now):
        spans = self.spans
        if spans is not None:
            self.span = spans.open(request.key, 0, now)
        span = self.span
        if span is not None:
            span.mark("work", now)
        if spans is not None:
            spans.close(self.span, now)
