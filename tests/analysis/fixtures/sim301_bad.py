"""Bad: a magic tick-scale literal in model arithmetic."""


def to_us(ticks):
    return ticks / 1e6
