"""Baseline round-trips, staleness, and the CLI baseline workflow."""

import io
import json
import textwrap

import pytest

from repro.analysis import analyze_paths
from repro.analysis.baseline import (
    BASELINE_FORMAT,
    load_baseline,
    save_baseline,
)
from repro.analysis.main import main
from repro.errors import ConfigError

_VIOLATION = textwrap.dedent('''
    import time


    def stamp():
        return time.time()
''')


def test_save_load_round_trip(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(_VIOLATION)
    findings = analyze_paths([source]).all_findings
    baseline_file = tmp_path / "baseline.json"
    save_baseline(baseline_file, findings)
    loaded = load_baseline(baseline_file)
    assert set(loaded) == {finding.fingerprint for finding in findings}
    assert loaded[findings[0].fingerprint]["code"] == "SIM101"


def test_baselined_findings_are_not_new(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(_VIOLATION)
    findings = analyze_paths([source]).all_findings
    baseline = {finding.fingerprint: {} for finding in findings}
    result = analyze_paths([source], baseline=baseline)
    assert result.findings == []
    assert len(result.baselined) == 1
    assert result.stale_baseline == []


def test_fixed_finding_becomes_stale(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(_VIOLATION)
    findings = analyze_paths([source]).all_findings
    baseline = {finding.fingerprint: {} for finding in findings}
    source.write_text("def stamp(sim):\n    return sim.now\n")
    result = analyze_paths([source], baseline=baseline)
    assert result.findings == []
    assert result.baselined == []
    assert len(result.stale_baseline) == 1


def test_missing_baseline_is_empty(tmp_path):
    assert load_baseline(tmp_path / "absent.json") == {}
    assert load_baseline(None) == {}


def test_corrupt_baseline_raises(tmp_path):
    bad = tmp_path / "baseline.json"
    bad.write_text("{not json")
    with pytest.raises(ConfigError):
        load_baseline(bad)
    bad.write_text(json.dumps({"format": "wrong-format", "findings": {}}))
    with pytest.raises(ConfigError):
        load_baseline(bad)


def test_update_baseline_then_strict_clean(tmp_path):
    """The workflow: --update-baseline accepts the backlog, the next
    --strict run passes, and fixing the violation flips --strict red
    until the stale entry is removed."""
    source = tmp_path / "mod.py"
    source.write_text(_VIOLATION)
    baseline_file = tmp_path / "baseline.json"

    out = io.StringIO()
    assert main(
        [str(source), "--baseline", str(baseline_file), "--update-baseline"],
        out,
    ) == 0
    assert json.loads(baseline_file.read_text())["format"] == BASELINE_FORMAT

    assert main(
        [str(source), "--baseline", str(baseline_file), "--strict"],
        io.StringIO(),
    ) == 0

    source.write_text("def stamp(sim):\n    return sim.now\n")
    assert main(
        [str(source), "--baseline", str(baseline_file)], io.StringIO()
    ) == 0
    assert main(
        [str(source), "--baseline", str(baseline_file), "--strict"],
        io.StringIO(),
    ) == 1


def test_no_baseline_flag_ignores_baseline(tmp_path):
    source = tmp_path / "mod.py"
    source.write_text(_VIOLATION)
    baseline_file = tmp_path / "baseline.json"
    save_baseline(baseline_file, analyze_paths([source]).all_findings)
    assert main(
        [str(source), "--baseline", str(baseline_file)], io.StringIO()
    ) == 0
    assert main(
        [str(source), "--baseline", str(baseline_file), "--no-baseline"],
        io.StringIO(),
    ) == 1
