"""Tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_list_command():
    code, text = run_cli("list")
    assert code == 0
    assert "fig3" in text and "memcached" in text


def test_run_command_prefetch():
    code, text = run_cli(
        "run", "--mechanism", "prefetch", "--threads", "10",
        "--warmup-us", "15", "--measure-us", "40",
    )
    assert code == 0
    assert "normalized" in text
    assert "LFB peak      : 10 / 10" in text


def test_run_command_with_overrides():
    code, text = run_cli(
        "run", "--mechanism", "prefetch", "--threads", "24", "--lfb", "20",
        "--chip-queue", "80", "--warmup-us", "15", "--measure-us", "40",
    )
    assert code == 0
    assert "/ 20" in text


def test_run_command_memory_bus():
    code, text = run_cli(
        "run", "--attachment", "memory-bus", "--threads", "10",
        "--warmup-us", "15", "--measure-us", "40",
    )
    assert code == 0
    assert "PCIe upstream : 0.00 GB/s" in text


def test_run_command_mlp_and_writes():
    code, text = run_cli(
        "run", "--mlp", "2", "--writes", "1",
        "--warmup-us", "15", "--measure-us", "40",
    )
    assert code == 0
    assert "MLP 2, 1 writes/iter" in text


def test_app_command():
    code, text = run_cli(
        "app", "bloom", "--mechanism", "prefetch", "--threads", "4"
    )
    assert code == 0
    assert "normalized" in text and "ns / operation" in text


def test_serve_command_reports_slo_metrics():
    code, text = run_cli(
        "serve", "--rate", "0.2", "--workers", "8", "--ring", "32",
        "--warmup-us", "10", "--measure-us", "60",
    )
    assert code == 0
    assert "sojourn p50" in text
    assert "sojourn p999" in text
    assert "queue wait p99" in text
    assert "poisson arrivals" in text


def test_serve_command_mmpp_and_zipf():
    code, text = run_cli(
        "serve", "--rate", "0.2", "--arrivals", "mmpp", "--theta", "0.9",
        "--warmup-us", "10", "--measure-us", "60",
    )
    assert code == 0
    assert "mmpp arrivals" in text
    assert "zipf theta 0.9" in text


def test_serve_runs_diff_identical_runs_match():
    # Acceptance: open-loop service runs are deterministic end to end,
    # ledger included -- two identical serves diff clean.
    args = (
        "serve", "--rate", "0.2", "--workers", "8",
        "--warmup-us", "10", "--measure-us", "60",
    )
    run_cli(*args)
    run_cli(*args)
    code, text = run_cli("runs", "diff", "0", "1")
    assert code == 0
    assert "runs match: no deviations" in text


def test_serve_run_records_slo_results():
    from repro.obs.runlog import RunLedger

    run_cli(
        "serve", "--rate", "0.2",
        "--warmup-us", "10", "--measure-us", "60",
    )
    entry = RunLedger().resolve("-1")
    assert entry["command"] == "serve"
    assert entry["status"] == 0
    assert len(entry["config_digest"]) == 64
    results = entry["results"]
    assert results["completions"] > 0
    assert results["p50_ns"] <= results["p99_ns"] <= results["p999_ns"]


def test_serve_rejects_bad_ring():
    import pytest as _pytest

    from repro.errors import ConfigError

    with _pytest.raises(ConfigError, match="power of 2"):
        run_cli(
            "serve", "--ring", "12",
            "--warmup-us", "5", "--measure-us", "10",
        )


_EXPLAIN_ARGS = (
    "explain", "--rate", "0.2", "--workers", "8",
    "--warmup-us", "10", "--measure-us", "60",
)


def test_explain_reports_layer_attribution():
    code, text = run_cli(*_EXPLAIN_ARGS)
    assert code == 0
    assert "layer attribution (measurement window):" in text
    for segment in ("queue", "sq", "device", "cq", "work"):
        assert segment in text
    assert "ticks aggregate" in text  # the conservation line
    assert "tail exemplars" in text
    assert "stratified" in text


def test_explain_writes_exemplars_and_valid_trace(tmp_path):
    import json

    from repro.obs.validate import validate_file

    exemplars_path = tmp_path / "exemplars.json"
    trace_path = tmp_path / "trace.json"
    code, text = run_cli(
        *_EXPLAIN_ARGS, "--top", "3",
        "--exemplars-out", str(exemplars_path),
        "--trace-out", str(trace_path),
    )
    assert code == 0
    assert "INVALID trace" not in text
    exemplars = json.loads(exemplars_path.read_text())
    assert 1 <= len(exemplars["slowest"]) <= 3
    assert set(exemplars["stratified"]) == {"p50", "p90", "p99"}
    for tree in exemplars["slowest"]:
        total = sum(end - begin for _n, begin, end in tree["segments"])
        assert total == tree["sojourn_ticks"]
    assert validate_file(str(trace_path)) == []


def test_explain_records_attribution_in_ledger():
    from repro.obs.runlog import RunLedger

    run_cli(*_EXPLAIN_ARGS)
    entry = RunLedger().resolve("-1")
    assert entry["command"] == "explain"
    assert entry["status"] == 0
    attribution = entry["results"]["attribution"]
    conservation = attribution["conservation"]
    assert conservation["sojourn_ticks"] == conservation["segments_ticks"]
    shares = sum(
        row["share"] for row in attribution["segments"].values()
    )
    assert shares == pytest.approx(1.0)


def test_explain_with_invariants_clean():
    code, text = run_cli(*_EXPLAIN_ARGS, "--check-invariants")
    assert code == 0
    assert "layer attribution" in text


def test_figure_command_with_csv(tmp_path):
    csv_path = tmp_path / "fig.csv"
    code, text = run_cli("figure", "fig3", "--scale", "quick",
                         "--csv", str(csv_path))
    assert code == 0
    assert "fig3" in text
    assert csv_path.exists()
    assert csv_path.read_text().startswith("figure,series,x,y")


def test_sweep_command_cold_then_warm_cache(tmp_path):
    cache_dir = str(tmp_path / "cache")
    code, text = run_cli(
        "sweep", "fig3", "--scale", "quick", "--jobs", "2",
        "--cache-dir", cache_dir,
    )
    assert code == 0
    assert "fig3" in text
    assert "0 hits" in text
    assert "workers       : 2" in text
    code, warm = run_cli(
        "sweep", "fig3", "--scale", "quick", "--jobs", "2",
        "--cache-dir", cache_dir,
    )
    assert code == 0
    assert "0 misses" in warm
    assert "simulated     : 0 jobs" in warm


def test_figure_command_no_cache_flag(tmp_path):
    cache_dir = tmp_path / "cache"
    code, text = run_cli(
        "figure", "fig3", "--scale", "quick", "--no-cache",
        "--cache-dir", str(cache_dir),
    )
    assert code == 0
    assert "fig3" in text
    assert not cache_dir.exists()  # --no-cache wins over --cache-dir


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "fig99"])


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_figure_command_with_chart():
    code, text = run_cli("figure", "fig3", "--scale", "quick", "--chart")
    assert code == 0
    assert "o = 1us" in text


def test_table1_command():
    code, text = run_cli("table1")
    assert code == 0
    assert "Overlapping" in text and "User-mode context switch" in text


def test_profile_command_microbench():
    code, text = run_cli(
        "profile", "microbench", "--threads", "4",
        "--warmup-us", "5", "--measure-us", "10", "--top", "5",
    )
    assert code == 0
    assert "events fired" in text
    assert "bypass ratio" in text
    assert "events/sec" in text
    # cProfile output made it through, with the kernel on top.
    assert "cumtime" in text
    assert "kernel.py" in text


def test_profile_command_figure():
    code, text = run_cli("profile", "fig3", "--scale", "quick", "--top", "3")
    assert code == 0
    assert "profiled      : fig3 --scale quick" in text
    assert "events fired" in text
    assert "events/sec" in text


def test_profile_rejects_unknown_target():
    with pytest.raises(SystemExit):
        run_cli("profile", "not-a-figure")


# ---------------------------------------------------------------------------
# Provenance ledger: recording + runs list/show/diff
# ---------------------------------------------------------------------------

def test_recorded_commands_append_ledger_entries():
    from repro.obs.runlog import RunLedger

    run_cli("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    entries = RunLedger().entries()
    assert len(entries) == 1
    entry = entries[0]
    assert entry["command"] == "run"
    assert entry["status"] == 0
    assert entry["kernel_stats"]["events_fired"] > 0
    assert entry["results"]["work_ipc"] > 0
    assert len(entry["config_digest"]) == 64
    assert entry["model_version"]


def test_no_ledger_env_disables_recording(monkeypatch):
    from repro.obs.runlog import RunLedger

    monkeypatch.setenv("REPRO_NO_LEDGER", "1")
    run_cli("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    assert RunLedger().entries() == []


def test_runs_list_and_show():
    run_cli("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    code, text = run_cli("runs", "list")
    assert code == 0
    assert "repro run --threads 2" in text
    assert "status=0" in text
    code, text = run_cli("runs", "show", "-1")
    assert code == 0
    assert '"command": "run"' in text


def test_runs_list_empty_ledger():
    code, text = run_cli("runs", "list")
    assert code == 0
    assert "no runs recorded" in text


def test_runs_diff_identical_runs_match():
    args = ("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    run_cli(*args)
    run_cli(*args)
    code, text = run_cli("runs", "diff", "0", "1")
    assert code == 0
    assert "runs match: no deviations" in text


def test_runs_diff_flags_changed_config_and_counters():
    run_cli("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    run_cli("run", "--threads", "4", "--warmup-us", "2", "--measure-us", "8")
    code, text = run_cli("runs", "diff", "0", "1")
    assert code == 1
    assert "config_digest" in text
    assert "kernel_stats.events_fired" in text
    assert "deviation(s)" in text


def test_runs_diff_tolerance_relaxes_value_checks():
    run_cli("run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8")
    run_cli("run", "--threads", "4", "--warmup-us", "2", "--measure-us", "8")
    strict = run_cli("runs", "diff", "0", "1")[1]
    loose = run_cli("runs", "diff", "0", "1", "--rtol", "1e9")[1]
    assert len(loose) < len(strict)  # value deviations suppressed


def test_failed_run_is_recorded_as_error():
    from repro.obs.runlog import RunLedger

    with pytest.raises(ValueError, match="unknown trace tracks"):
        run_cli("trace", "--figure", "fig3", "--tracks", "bogus")
    entries = RunLedger().entries()
    assert len(entries) == 1
    assert entries[0]["status"] == "error"
    assert "ValueError" in entries[0]["error"]


def test_check_invariants_flag_accepted_on_run_and_figure(tmp_path):
    code, _ = run_cli(
        "run", "--threads", "2", "--warmup-us", "2", "--measure-us", "8",
        "--check-invariants",
    )
    assert code == 0
    code, _ = run_cli(
        "figure", "fig3", "--check-invariants",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0


def test_figure_run_records_series_digests():
    from repro.obs.runlog import RunLedger

    run_cli("figure", "fig3", "--no-cache")
    entry = RunLedger().resolve("-1")
    figure = entry["figure"]
    assert figure["name"] == "fig3"
    assert figure["payload"]["series"]
    assert set(figure["series_digests"]) == set(figure["payload"]["series"])
    assert entry["sweep"]["kernel_stats"]["events_fired"] > 0


def test_sweep_with_queue_is_resumable(tmp_path):
    queue_dir = str(tmp_path / "queue")
    code, text = run_cli(
        "sweep", "fig3", "--scale", "quick", "--jobs", "2",
        "--queue", queue_dir, "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0
    assert "queue         : " in text
    assert "manifest      : spec " in text
    # Re-entering the same queue with a cold cache replays done
    # records; nothing simulates again.
    code, replay = run_cli(
        "sweep", "fig3", "--scale", "quick", "--jobs", "2",
        "--queue", queue_dir, "--cache-dir", str(tmp_path / "cache2"),
    )
    assert code == 0
    assert "simulated     : 0 jobs" in replay
    assert "jobs served from queue records" in replay


def test_sweep_queue_manifest_links_ledger_runs(tmp_path):
    from repro.harness.coordinator import find_queues
    from repro.obs.runlog import RunLedger

    queue_dir = tmp_path / "queue"
    code, _ = run_cli(
        "sweep", "fig3", "--scale", "quick",
        "--queue", str(queue_dir), "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0
    [queue] = find_queues(queue_dir)
    entry = RunLedger().resolve("-1")
    assert queue.manifest()["runs"] == [entry["run_id"]]
    # runs show renders the experiment manifest alongside the entry.
    code, text = run_cli("runs", "show", "-1")
    assert code == 0
    assert "experiment manifest" in text
    assert "spec_digest" in text


def test_resume_flag_defaults_to_local_queue_dir(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code, _ = run_cli(
        "sweep", "fig3", "--scale", "quick", "--resume",
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0
    assert (tmp_path / ".repro_queue").is_dir()


def test_sweep_worker_drains_a_standalone_queue(tmp_path):
    from repro.config import SystemConfig
    from repro.harness.coordinator import WorkQueue
    from repro.harness.experiment import MeasureWindow
    from repro.harness.sweep import MODEL_VERSION, SweepJob, job_digest
    from repro.workloads.microbench import MicrobenchSpec

    job = SweepJob(
        config=SystemConfig(threads_per_core=2),
        spec=MicrobenchSpec(work_count=10),
        window=MeasureWindow(warmup_us=2.0, measure_us=8.0),
    )
    key = job_digest(job, "salt+metrics")
    queue = WorkQueue.ensure(
        tmp_path / "queue" / "unit", name="unit", salt="salt+metrics",
        model_version=MODEL_VERSION, keys=[key],
    )
    queue.enqueue(key, job)
    code, text = run_cli(
        "sweep-worker", "--queue", str(tmp_path / "queue"),
        "--cache-dir", str(tmp_path / "cache"),
    )
    assert code == 0
    assert "queues        : 1 drained" in text
    assert "claims        : 1 (1 done, 0 failed, 0 cache hits)" in text
    assert queue.unresolved() == 0


def test_sweep_surfaces_failed_jobs_in_exit_code(monkeypatch):
    from repro.harness import sweep as sweep_mod

    def _always_fails(job, collect_metrics, check_invariants):
        raise ValueError("injected CLI fault")

    monkeypatch.setattr(sweep_mod, "_execute_job", _always_fails)
    code, text = run_cli("sweep", "fig3", "--scale", "quick", "--no-cache")
    assert code == 1
    assert "FAILED" in text
    assert "ValueError: injected CLI fault" in text


def test_engine_flags_accept_failure_tuning(tmp_path):
    code, _ = run_cli(
        "sweep", "fig3", "--scale", "quick", "--no-cache",
        "--timeout-s", "120", "--retries", "2",
    )
    assert code == 0
