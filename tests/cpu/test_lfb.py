"""Unit tests for the line-fill buffer model."""

import pytest

from repro.cpu.lfb import LineFillBuffers
from repro.errors import SimulationError
from repro.sim import Simulator


def alloc(sim, lfb, line):
    """Run an allocation to completion and return the entry."""

    def body():
        entry = yield from lfb.allocate(line)
        return entry

    return sim.run(sim.process(body()))


def test_allocate_and_complete_roundtrip():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=2)
    entry = alloc(sim, lfb, 0x1000)
    assert lfb.in_flight == 1
    lfb.complete(entry, b"\xab" * 64)
    sim.run()
    assert entry.data_ready.fired
    assert entry.data_ready.value == b"\xab" * 64
    assert lfb.in_flight == 0
    assert lfb.fills == 1


def test_lookup_merges_and_counts():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=2)
    entry = alloc(sim, lfb, 0x40)
    assert lfb.lookup(0x40) is entry
    assert lfb.lookup(0x80) is None
    assert lfb.merges == 1
    assert entry.merged_loads == 1


def test_contains_does_not_count_as_merge():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=2)
    alloc(sim, lfb, 0x40)
    assert lfb.contains(0x40)
    assert not lfb.contains(0x80)
    assert lfb.merges == 0


def test_allocation_blocks_when_full():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=1)
    granted = []

    def body():
        first = yield from lfb.allocate(0x0)
        second_started = sim.now

        def release_later():
            yield sim.timeout(500)
            lfb.complete(first, b"\x00" * 64)

        sim.process(release_later())
        second = yield from lfb.allocate(0x40)
        granted.append((second_started, sim.now))
        lfb.complete(second, b"\x00" * 64)

    sim.process(body())
    sim.run()
    assert granted == [(0, 500)]


def test_max_in_flight_statistic():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=4)
    entries = [alloc(sim, lfb, i * 64) for i in range(3)]
    assert lfb.max_in_flight == 3
    for entry in entries:
        lfb.complete(entry, b"\x00" * 64)
    sim.run()
    assert lfb.max_in_flight == 3
    assert lfb.in_flight == 0


def test_duplicate_allocation_rejected():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=2)
    alloc(sim, lfb, 0x40)

    def body():
        yield from lfb.allocate(0x40)

    with pytest.raises(SimulationError):
        sim.run(sim.process(body()))


def test_completion_of_unknown_entry_rejected():
    sim = Simulator()
    lfb = LineFillBuffers(sim, entries=2)
    entry = alloc(sim, lfb, 0x40)
    lfb.complete(entry, b"\x00" * 64)
    with pytest.raises(SimulationError):
        lfb.complete(entry, b"\x00" * 64)
