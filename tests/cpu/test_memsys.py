"""Unit tests for the per-core memory subsystem."""

import pytest

from repro.config import CacheConfig, UncoreConfig
from repro.cpu.memsys import CoreMemorySystem
from repro.cpu.uncore import AddressSpace, Uncore
from repro.memory import FlatMemory
from repro.sim import Simulator
from repro.testing import FixedLatencyTarget
from repro.units import gigahertz, ns


def build(sim, lfb_entries=10, pcie_q=14, hop_ns=10.0, target_latency=ns(500)):
    uncore = Uncore(sim, UncoreConfig(pcie_queue_entries=pcie_q, hop_ns=hop_ns))
    memory = FlatMemory()
    memory.write_word(0x1000, 0xDEADBEEF)
    target = FixedLatencyTarget(sim, target_latency, memory)
    uncore.attach_target(AddressSpace.DEVICE, target)
    memsys = CoreMemorySystem(
        sim,
        core_id=0,
        cache_config=CacheConfig(),
        lfb_entries=lfb_entries,
        uncore=uncore,
        frequency=gigahertz(1.0),  # 1 ns cycles for easy arithmetic
    )
    return memsys, target, memory


def run_load(sim, memsys, addr):
    def body():
        event = memsys.load_line(addr, AddressSpace.DEVICE)
        data = yield event
        return data

    return sim.run(sim.process(body()))


def test_miss_latency_is_hops_plus_target():
    sim = Simulator()
    memsys, _target, _memory = build(sim, hop_ns=10.0, target_latency=ns(500))
    run_load(sim, memsys, 0x1000)
    assert sim.now == ns(10 + 500 + 10)


def test_loaded_data_comes_from_functional_memory():
    sim = Simulator()
    memsys, _target, memory = build(sim)
    data = run_load(sim, memsys, 0x1000)
    assert FlatMemory.word_from_line(0x1000, data, 0x1000) == 0xDEADBEEF


def test_second_load_hits_l1():
    sim = Simulator()
    memsys, target, _memory = build(sim)
    run_load(sim, memsys, 0x1000)
    t_miss = sim.now
    run_load(sim, memsys, 0x1008)  # same line, different word
    assert target.reads == 1
    # Hit latency: 4 cycles at 1 GHz = 4 ns.
    assert sim.now - t_miss == ns(4)


def test_l1_hit_returns_cached_line_data():
    sim = Simulator()
    memsys, _target, _memory = build(sim)
    first = run_load(sim, memsys, 0x1000)
    second = run_load(sim, memsys, 0x1008)
    assert first == second


def test_concurrent_loads_to_same_line_merge():
    sim = Simulator()
    memsys, target, _memory = build(sim)
    times = []

    def loader(addr):
        event = memsys.load_line(addr, AddressSpace.DEVICE)
        yield event
        times.append(sim.now)

    sim.process(loader(0x1000))
    sim.process(loader(0x1008))
    sim.run()
    assert target.reads == 1
    assert memsys.lfb.merges == 1
    assert times[0] == times[1]


def test_prefetch_then_load_hits():
    sim = Simulator()
    memsys, target, _memory = build(sim)

    def body():
        memsys.prefetch_line(0x1000, AddressSpace.DEVICE)
        yield sim.timeout(ns(1000))  # plenty for the fill
        event = memsys.load_line(0x1000, AddressSpace.DEVICE)
        yield event
        return sim.now

    sim.run(sim.process(body()))
    assert target.reads == 1
    assert memsys.l1.hits == 1


def test_load_soon_after_prefetch_merges_with_fill():
    sim = Simulator()
    memsys, target, _memory = build(sim, target_latency=ns(500))

    def body():
        memsys.prefetch_line(0x1000, AddressSpace.DEVICE)
        event = memsys.load_line(0x1000, AddressSpace.DEVICE)
        yield event
        return sim.now

    done_at = sim.run(sim.process(body()))
    assert target.reads == 1
    assert done_at == ns(520)


def test_prefetch_to_resident_line_is_noop():
    sim = Simulator()
    memsys, target, _memory = build(sim)
    run_load(sim, memsys, 0x1000)

    memsys.prefetch_line(0x1000, AddressSpace.DEVICE)
    sim.run()
    assert target.reads == 1
    assert memsys.lfb.in_flight == 0


def test_lfb_capacity_limits_inflight_fills():
    sim = Simulator()
    memsys, target, _memory = build(sim, lfb_entries=2, target_latency=ns(500))

    for i in range(4):
        memsys.prefetch_line(i * 64, AddressSpace.DEVICE)
    sim.run()
    assert target.max_in_flight <= 2
    assert memsys.lfb.max_in_flight == 2
    assert target.reads == 4


def test_uncore_queue_limits_inflight_chipwide():
    sim = Simulator()
    memsys, target, _memory = build(sim, lfb_entries=32, pcie_q=3)

    for i in range(8):
        memsys.prefetch_line(i * 64, AddressSpace.DEVICE)
    sim.run()
    assert target.max_in_flight <= 3
    assert memsys.uncore.max_occupancy(AddressSpace.DEVICE) == 3


def test_fill_latency_stat_records():
    sim = Simulator()
    memsys, _target, _memory = build(sim, hop_ns=0.0, target_latency=ns(100))
    run_load(sim, memsys, 0x1000)
    assert memsys.fill_latency.count == 1
    assert memsys.fill_latency.mean == pytest.approx(ns(100))
