"""Unit tests for the reorder buffer model."""

import pytest

from repro.errors import SimulationError
from repro.cpu.rob import ReorderBuffer
from repro.sim import Simulator


def test_allocate_within_capacity_does_not_stall():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=8)

    def frontend():
        yield from rob.allocate(5)
        return sim.now

    assert sim.run(sim.process(frontend())) == 0
    assert rob.used == 5


def test_allocate_blocks_until_retirement():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=4)
    grants = []

    def frontend():
        yield from rob.allocate(4)
        rob.commit(4, sim.timeout(100))
        yield from rob.allocate(2)
        grants.append(sim.now)

    sim.process(frontend())
    sim.run()
    assert grants == [100]


def test_retirement_is_in_order():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=10)
    retired = []

    def frontend():
        # Older group finishes LATE, younger finishes early.
        yield from rob.allocate(3)
        rob.commit(3, sim.timeout(100), on_retire=lambda: retired.append(("old", sim.now)))
        yield from rob.allocate(3)
        rob.commit(3, sim.timeout(10), on_retire=lambda: retired.append(("young", sim.now)))

    sim.process(frontend())
    sim.run()
    # The young group may complete at t=10 but retires behind the old one.
    assert retired == [("old", 100), ("young", 100)]


def test_long_latency_head_blocks_slot_reuse():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=4)
    times = []

    def frontend():
        yield from rob.allocate(4)
        rob.commit(4, sim.timeout(1000))
        yield from rob.allocate(1)  # must wait for the head to retire
        times.append(sim.now)

    sim.process(frontend())
    sim.run()
    assert times == [1000]


def test_oversized_allocation_rejected():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=4)

    def frontend():
        yield from rob.allocate(5)

    with pytest.raises(SimulationError):
        sim.run(sim.process(frontend()))


def test_nonpositive_allocation_rejected():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=4)

    def frontend():
        yield from rob.allocate(0)

    with pytest.raises(SimulationError):
        sim.run(sim.process(frontend()))


def test_free_slots_accounting():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=16)

    def frontend():
        yield from rob.allocate(6)
        rob.commit(6, sim.timeout(10))
        yield from rob.allocate(4)
        rob.commit(4, sim.timeout(20))

    sim.process(frontend())
    sim.run()
    assert rob.free == 16
    assert rob.max_used == 10
    assert rob.retired_groups == 2


def test_already_fired_completion_retires_immediately():
    sim = Simulator()
    rob = ReorderBuffer(sim, capacity=4)
    retired = []

    def frontend():
        yield from rob.allocate(2)
        done = sim.event()
        done.succeed(None)
        rob.commit(2, done, on_retire=lambda: retired.append(sim.now))
        yield sim.timeout(5)

    sim.process(frontend())
    sim.run()
    assert retired == [0]
    assert rob.free == 4
