"""Unit tests for the shared uncore fabric."""

import pytest

from repro.config import UncoreConfig
from repro.cpu.uncore import AddressSpace, Uncore
from repro.errors import ConfigError
from repro.sim import Simulator
from repro.testing import FixedLatencyTarget
from repro.units import ns


def test_per_path_queue_capacities():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig(pcie_queue_entries=14, dram_queue_entries=48))
    assert uncore.queue(AddressSpace.DEVICE).capacity == 14
    assert uncore.queue(AddressSpace.DRAM).capacity == 48


def test_device_queue_override_for_memory_bus_attach():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig(), device_queue_entries=48)
    assert uncore.queue(AddressSpace.DEVICE).capacity == 48


def test_hop_latency_conversion():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig(hop_ns=12.5))
    assert uncore.hop_ticks == ns(12.5)


def test_target_attachment_and_lookup():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig())
    target = FixedLatencyTarget(sim, ns(10))
    uncore.attach_target(AddressSpace.DEVICE, target)
    assert uncore.target(AddressSpace.DEVICE) is target


def test_double_attachment_rejected():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig())
    uncore.attach_target(AddressSpace.DRAM, FixedLatencyTarget(sim, ns(10)))
    with pytest.raises(ConfigError):
        uncore.attach_target(AddressSpace.DRAM, FixedLatencyTarget(sim, ns(10)))


def test_missing_target_rejected():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig())
    with pytest.raises(ConfigError):
        uncore.target(AddressSpace.DEVICE)


def test_max_occupancy_tracks_peak():
    sim = Simulator()
    uncore = Uncore(sim, UncoreConfig(pcie_queue_entries=4))
    queue = uncore.queue(AddressSpace.DEVICE)

    def user(hold):
        yield queue.acquire()
        yield sim.timeout(hold)
        queue.release()

    for _ in range(3):
        sim.process(user(ns(100)))
    sim.run()
    assert uncore.max_occupancy(AddressSpace.DEVICE) == 3
    assert uncore.max_occupancy(AddressSpace.DRAM) == 0
