"""Unit tests for the out-of-order core model.

These use a 1 GHz clock (1 ns cycles) and simple fixed-latency targets
so expected times can be computed by hand.
"""

import pytest

from repro.config import CacheConfig, CpuConfig, UncoreConfig
from repro.cpu import AddressSpace, CoreMemorySystem, OutOfOrderCore, Uncore
from repro.memory import FlatMemory
from repro.sim import Simulator
from repro.sim.trace import Counter
from repro.testing import FixedLatencyTarget
from repro.units import ns


def build_core(
    sim,
    rob=64,
    lfb=10,
    width=4,
    ipc=1.0,
    chunk=8,
    target_latency=ns(500),
    hop_ns=0.0,
    pcie_q=14,
):
    config = CpuConfig(
        frequency_ghz=1.0,
        dispatch_width=width,
        rob_entries=rob,
        work_ipc=ipc,
        work_chunk_instructions=chunk,
        lfb_entries=lfb,
    )
    uncore = Uncore(sim, UncoreConfig(hop_ns=hop_ns, pcie_queue_entries=pcie_q))
    memory = FlatMemory()
    target = FixedLatencyTarget(sim, target_latency, memory)
    uncore.attach_target(AddressSpace.DEVICE, target)
    uncore.attach_target(AddressSpace.DRAM, FixedLatencyTarget(sim, ns(80), memory))
    memsys = CoreMemorySystem(
        sim, 0, CacheConfig(), lfb, uncore, config.frequency
    )
    work = Counter("work")
    work.active = True
    core = OutOfOrderCore(sim, 0, config, memsys, work)
    return core, target, memory


def run(sim, gen):
    return sim.run(sim.process(gen))


def test_work_block_time_is_dispatch_then_execute():
    sim = Simulator()
    core, _t, _m = build_core(sim, width=4, ipc=1.0, chunk=8)
    times = {}

    def body():
        done = yield from core.dispatch_work(8)
        times["dispatched"] = sim.now
        yield done
        times["executed"] = sim.now

    run(sim, body())
    # Dispatch: 8 instructions / width 4 = 2 cycles = 2 ns.
    assert times["dispatched"] == ns(2)
    # Execution starts at dispatch end and runs 8 / IPC 1.0 = 8 ns.
    assert times["executed"] == ns(10)


def test_work_chunks_chain_serially():
    sim = Simulator()
    core, _t, _m = build_core(sim, width=4, ipc=1.0, chunk=8)

    def body():
        done = yield from core.dispatch_work(24)  # three 8-instr chunks
        yield done
        return sim.now

    finished = run(sim, body())
    # Chunks execute back to back: dispatch of chunk0 (2ns) + 3 * 8ns,
    # with later chunks' dispatch hidden under execution.
    assert finished == ns(2 + 24)


def test_work_waits_for_dependency():
    sim = Simulator()
    core, _t, _m = build_core(sim)
    gate = sim.event()

    def opener():
        yield sim.timeout(ns(100))
        gate.succeed(None)

    def body():
        done = yield from core.dispatch_work(8, deps=[gate])
        yield done
        return sim.now

    sim.process(opener())
    assert run(sim, body()) == ns(108)


def test_fired_dependency_adds_no_delay():
    sim = Simulator()
    core, _t, _m = build_core(sim)
    gate = sim.event()
    gate.succeed(None)
    sim.run()

    def body():
        done = yield from core.dispatch_work(8, deps=[gate])
        yield done
        return sim.now

    assert run(sim, body()) == ns(10)


def test_zero_work_completes_instantly():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        done = yield from core.dispatch_work(0)
        yield done
        return sim.now

    assert run(sim, body()) == 0


def test_work_counter_counts_retired_instructions():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        done = yield from core.dispatch_work(24)
        yield done

    run(sim, body())
    sim.run()
    assert core.work.total == 24
    assert core.instructions.total == 24


def test_overhead_instructions_not_counted_as_work():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        yield from core.run_instructions(16)

    run(sim, body())
    sim.run()
    assert core.work.total == 0
    assert core.instructions.total == 16


def test_load_token_returns_line_data_and_word():
    sim = Simulator()
    core, _t, memory = build_core(sim)
    memory.write_word(0x2008, 777)

    def body():
        token = yield from core.issue_load(0x2008, AddressSpace.DEVICE)
        yield from core.wait_data(token)
        return token.word()

    assert run(sim, body()) == 777


def test_on_demand_load_serializes_dependent_work():
    sim = Simulator()
    core, _t, _m = build_core(sim, target_latency=ns(1000))

    def body():
        token = yield from core.issue_load(0x0, AddressSpace.DEVICE)
        done = yield from core.dispatch_work(8, deps=[token.event])
        yield done
        return sim.now

    finished = run(sim, body())
    # ~load latency + work execution; small dispatch overheads on top.
    assert ns(1008) <= finished <= ns(1015)


def test_rob_allows_overlap_of_independent_loads():
    """Two iterations' loads overlap when both fit in the ROB."""
    sim = Simulator()
    core, target, _m = build_core(sim, rob=64, target_latency=ns(1000))

    def body():
        for i in range(2):
            token = yield from core.issue_load(i * 64, AddressSpace.DEVICE)
            yield from core.dispatch_work(16, deps=[token.event])
        yield from core.drain()
        return sim.now

    finished = run(sim, body())
    # Both loads issue within a few ns of each other; total well under
    # the 2 * 1000 ns a serial execution would take.
    assert finished < ns(1100)
    assert target.max_in_flight == 2


def test_full_rob_blocks_next_iteration_load():
    """With work >> ROB, iterations serialize (Figure 2's regime)."""
    sim = Simulator()
    core, target, _m = build_core(sim, rob=32, chunk=8, target_latency=ns(1000))

    def body():
        for i in range(2):
            token = yield from core.issue_load(i * 64, AddressSpace.DEVICE)
            # 64 instructions cannot coexist with the next load in a
            # 32-entry ROB, and they all depend on the load.
            yield from core.dispatch_work(64, deps=[token.event])
        yield from core.drain()
        return sim.now

    finished = run(sim, body())
    assert finished > ns(2000)
    assert target.max_in_flight == 1


def test_prefetch_retires_without_data():
    sim = Simulator()
    core, _t, _m = build_core(sim, target_latency=ns(1000))

    def body():
        yield from core.issue_prefetch(0x0, AddressSpace.DEVICE)
        return sim.now

    # The prefetch dispatches in ~1 cycle and does not wait for data.
    assert run(sim, body()) <= ns(2)


def test_prefetch_beyond_lfbs_queues_but_does_not_stall_dispatch():
    """A prefetch with every LFB busy waits in the reservation station:
    dispatch continues, in-flight fills stay capped, and the queued
    prefetch issues when a buffer frees."""
    sim = Simulator()
    core, target, _m = build_core(sim, lfb=2, target_latency=ns(1000))
    stamps = []

    def body():
        for i in range(3):
            yield from core.issue_prefetch(i * 64, AddressSpace.DEVICE)
            stamps.append(sim.now)

    run(sim, body())
    sim.run()
    # All three prefetches dispatch promptly -- none blocks the front end.
    assert all(stamp <= ns(3) for stamp in stamps)
    # But only two fills are ever in flight; the third starts after a
    # buffer frees (a full fill latency later).
    assert target.max_in_flight == 2
    assert core.memsys.lfb.max_in_flight == 2
    assert target.reads == 3


def test_queued_prefetch_blocks_retirement_until_issued():
    """The RS-waiting prefetch cannot retire, so ROB backpressure kicks
    in roughly one ROB's worth of instructions later."""
    sim = Simulator()
    core, _t, _m = build_core(sim, rob=32, lfb=1, chunk=8, target_latency=ns(1000))
    stamps = []

    def body():
        yield from core.issue_prefetch(0, AddressSpace.DEVICE)    # takes the LFB
        yield from core.issue_prefetch(64, AddressSpace.DEVICE)   # queues in RS
        stamps.append(sim.now)
        # Independent filler work: dispatch proceeds until the ROB
        # fills behind the unretirable prefetch.
        yield from core.dispatch_work(64)
        stamps.append(sim.now)

    run(sim, body())
    sim.run()
    assert stamps[0] <= ns(3)           # second prefetch did not stall
    assert stamps[1] >= ns(1000)        # but the ROB eventually did


def test_mmio_write_requires_sink():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        yield from core.mmio_write(0x10, 4, cost_ticks=ns(50))

    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        run(sim, body())


def test_mmio_write_charges_cost_and_posts():
    sim = Simulator()
    core, _t, _m = build_core(sim)
    posted = []
    core.set_mmio_sink(lambda addr, size: posted.append((addr, size, sim.now)))

    def body():
        yield from core.mmio_write(0x10, 4, cost_ticks=ns(50))
        return sim.now

    assert run(sim, body()) == ns(50)
    assert posted == [(0x10, 4, ns(50))]


def test_busy_occupies_frontend():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        yield from core.busy(ns(35))
        return sim.now

    assert run(sim, body()) == ns(35)


def test_negative_work_rejected():
    sim = Simulator()
    core, _t, _m = build_core(sim)

    def body():
        yield from core.dispatch_work(-1)

    from repro.errors import SimulationError

    with pytest.raises(SimulationError):
        run(sim, body())
