"""Unit tests for the L1 presence cache."""

import pytest

from repro.config import CacheConfig
from repro.cpu.cache import L1Cache
from repro.errors import AddressError


def small_cache(sets=2, ways=2):
    return L1Cache(CacheConfig(sets=sets, ways=ways))


def test_miss_then_hit():
    cache = small_cache()
    assert not cache.lookup(0x0)
    cache.install(0x0)
    assert cache.lookup(0x0)
    assert cache.hits == 1 and cache.misses == 1


def test_unaligned_address_rejected():
    cache = small_cache()
    with pytest.raises(AddressError):
        cache.lookup(0x7)


def test_lru_eviction_order():
    cache = small_cache(sets=1, ways=2)
    cache.install(0x0)
    cache.install(0x40)
    cache.lookup(0x0)  # make 0x0 most-recently-used
    victim = cache.install(0x80)
    assert victim == 0x40
    assert cache.contains(0x0) and cache.contains(0x80)
    assert not cache.contains(0x40)
    assert cache.evictions == 1


def test_sets_are_independent():
    cache = small_cache(sets=2, ways=1)
    cache.install(0x0)    # set 0
    cache.install(0x40)   # set 1
    assert cache.contains(0x0) and cache.contains(0x40)
    # A third line in set 0 evicts only from set 0.
    victim = cache.install(0x80)
    assert victim == 0x0
    assert cache.contains(0x40)


def test_reinstall_refreshes_lru_without_eviction():
    cache = small_cache(sets=1, ways=2)
    cache.install(0x0)
    cache.install(0x40)
    assert cache.install(0x0) is None  # refresh, no eviction
    victim = cache.install(0x80)
    assert victim == 0x40


def test_contains_does_not_touch_stats():
    cache = small_cache()
    cache.contains(0x0)
    assert cache.hits == 0 and cache.misses == 0


def test_invalidate_all():
    cache = small_cache()
    cache.install(0x0)
    cache.install(0x40)
    cache.invalidate_all()
    assert cache.resident_lines == 0
    assert not cache.contains(0x0)


def test_capacity_property():
    config = CacheConfig(sets=64, ways=8, line_bytes=64)
    assert config.capacity_bytes == 32 * 1024


def test_hit_rate():
    cache = small_cache()
    cache.install(0x0)
    cache.lookup(0x0)
    cache.lookup(0x40)
    assert cache.hit_rate() == pytest.approx(0.5)
