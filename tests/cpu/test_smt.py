"""Tests of the SMT (multi-context) core model."""

from repro.config import AccessMechanism, CpuConfig, DeviceConfig, SystemConfig
from repro.host.system import System
from repro.units import to_us
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def run_system(smt, mechanism=AccessMechanism.ON_DEMAND, iterations=40):
    config = SystemConfig(
        mechanism=mechanism,
        threads_per_core=1,
        cpu=CpuConfig(smt_contexts=smt),
        device=DeviceConfig(total_latency_us=1.0),
    )
    system = System(config)
    spec = MicrobenchSpec(work_count=200, iterations=iterations)
    install_microbench(system, spec, 1)
    ticks = system.run_to_completion(limit_ticks=10**12)
    return system, ticks


def test_smt_creates_logical_cores():
    system, _ = run_system(smt=2)
    assert system.logical_cores == 2
    assert len(system.cores) == 2
    assert len(system.runtimes) == 2
    # The contexts share one memory subsystem (L1 + LFBs).
    assert system.cores[0].memsys is system.cores[1].memsys


def test_smt_partitions_the_rob():
    system, _ = run_system(smt=2)
    assert system.cores[0].rob.capacity == 192 // 2


def test_two_contexts_overlap_on_demand_accesses():
    _system1, t1 = run_system(smt=1, iterations=40)
    _system2, t2 = run_system(smt=2, iterations=40)
    # Same total work per context; two contexts overlap their stalls,
    # so wall time stays roughly flat while work doubles.
    assert to_us(t2) < 1.15 * to_us(t1)


def test_contexts_contend_for_the_front_end():
    """Compute-bound contexts (DRAM-fast accesses) share dispatch: two
    contexts do NOT double throughput the way stall-bound ones do."""
    from repro.config import BackingStore

    def run(smt):
        config = SystemConfig(
            mechanism=AccessMechanism.ON_DEMAND,
            backing=BackingStore.DRAM,
            threads_per_core=1,
            cpu=CpuConfig(smt_contexts=smt),
        )
        system = System(config)
        install_microbench(
            system, MicrobenchSpec(work_count=400, iterations=50), 1
        )
        return system.run_to_completion(limit_ticks=10**12)

    t1, t2 = run(1), run(2)
    # Two compute-bound contexts take measurably longer than one
    # (shared front end) -- though far less than 2x, since execution
    # ports are not modeled -- unlike the stall-bound device case,
    # which stays flat.
    assert 1.1 * t1 < t2 < 1.9 * t1
