"""Tests for the hardware stride prefetcher (disabled in the paper)."""

import pytest

from repro.config import AccessMechanism, SystemConfig
from repro.errors import ConfigError
from repro.host.driver import PlatformConfig
from repro.host.system import System
from repro.units import to_us
from repro.workloads.microbench import MicrobenchSpec, install_microbench


def build(hw_prefetch, mechanism=AccessMechanism.ON_DEMAND, **overrides):
    return System(
        SystemConfig(mechanism=mechanism, **overrides),
        platform=PlatformConfig(hardware_prefetcher=hw_prefetch),
    )


def sequential_reader(system, lines=64):
    base = system.alloc_data(0, lines * 64)

    def factory(ctx):
        def body():
            for i in range(lines):
                yield from ctx.read(base + i * 64)
            return to_us(ctx.core.sim.now)
        return body()

    return factory


def test_parameters_validated():
    from repro.cpu.hwprefetch import StridePrefetcher

    with pytest.raises(ConfigError):
        StridePrefetcher(memsys=None, degree=0)


def test_stride_detection_prefetches_ahead():
    system = build(hw_prefetch=True)
    handle = system.spawn(0, sequential_reader(system))
    system.run_to_completion(limit_ticks=10**10)
    prefetcher = system.cores[0].memsys.hw_prefetcher
    assert prefetcher.issued > 10
    assert prefetcher.useful > 10
    assert prefetcher.coverage() > 0.5


def test_prefetcher_accelerates_sequential_on_demand():
    slow = build(hw_prefetch=False)
    fast = build(hw_prefetch=True)
    t_off = slow.spawn(0, sequential_reader(slow))
    slow.run_to_completion(limit_ticks=10**10)
    t_on = fast.spawn(0, sequential_reader(fast))
    fast.run_to_completion(limit_ticks=10**10)
    assert t_on.result < 0.75 * t_off.result


def test_random_pattern_trains_nothing():
    system = build(hw_prefetch=True)
    base = system.alloc_data(0, 1 << 16)

    def factory(ctx):
        def body():
            from repro.workloads.hashing import mix64

            for i in range(64):
                offset = (mix64(i) % 1024) * 64
                yield from ctx.read(base + offset)
            return None
        return body()

    system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**10)
    prefetcher = system.cores[0].memsys.hw_prefetcher
    assert prefetcher.observed == 64
    assert prefetcher.issued <= 4  # accidental short strides at most


def test_backward_strides_detected_too():
    system = build(hw_prefetch=True)
    base = system.alloc_data(0, 64 * 64)

    def factory(ctx):
        def body():
            for i in reversed(range(64)):
                yield from ctx.read(base + i * 64)
            return None
        return body()

    system.spawn(0, factory)
    system.run_to_completion(limit_ticks=10**10)
    assert system.cores[0].memsys.hw_prefetcher.issued > 10


def test_stream_table_is_bounded():
    from repro.cpu.hwprefetch import StridePrefetcher
    from repro.cpu.uncore import AddressSpace

    system = build(hw_prefetch=True)
    prefetcher = system.cores[0].memsys.hw_prefetcher
    for region in range(100):
        prefetcher.observe_miss(region * StridePrefetcher.REGION_BYTES,
                                AddressSpace.DEVICE)
    assert len(prefetcher._table) <= prefetcher.streams


def test_interference_with_software_prefetching():
    """The reason the paper disables it: on the (sequential-region)
    microbenchmark the stride prefetcher competes for LFBs with the
    software prefetches, and its droppable fills displace scheduled
    ones -- throughput must not improve, and usually degrades."""
    from repro.units import us

    def run(hw):
        system = build(
            hw, mechanism=AccessMechanism.PREFETCH, threads_per_core=10
        )
        install_microbench(system, MicrobenchSpec(work_count=200), 10)
        stats = system.run_window(us(20), us(60))
        return stats.work_ipc

    assert run(True) <= 1.02 * run(False)
