"""Additional edge-case tests for the core model."""

import pytest

from repro.config import CacheConfig, CpuConfig, UncoreConfig
from repro.cpu import AddressSpace, CoreMemorySystem, OutOfOrderCore, Uncore
from repro.sim import Resource, Simulator
from repro.sim.trace import Counter
from repro.testing import FixedLatencyTarget
from repro.units import ns


def build(sim, width=4, chunk=16, rob=192, ipc=1.0, front_end=None):
    config = CpuConfig(
        frequency_ghz=1.0,
        dispatch_width=width,
        rob_entries=rob,
        work_ipc=ipc,
        work_chunk_instructions=chunk,
    )
    uncore = Uncore(sim, UncoreConfig(hop_ns=0.0))
    uncore.attach_target(AddressSpace.DEVICE, FixedLatencyTarget(sim, ns(500)))
    uncore.attach_target(AddressSpace.DRAM, FixedLatencyTarget(sim, ns(80)))
    memsys = CoreMemorySystem(sim, 0, CacheConfig(), 10, uncore, config.frequency)
    return OutOfOrderCore(
        sim, 0, config, memsys, Counter("w"), front_end=front_end
    )


def run(sim, gen):
    return sim.run(sim.process(gen))


def test_dispatch_width_paces_the_front_end():
    def dispatch_time(width):
        sim = Simulator()
        core = build(sim, width=width)

        def body():
            yield from core.dispatch_work(64)
            return sim.now

        return run(sim, body())

    # Halving the width doubles front-end dispatch time.
    assert dispatch_time(2) == 2 * dispatch_time(4)


def test_non_chunk_multiple_work_count():
    sim = Simulator()
    core = build(sim, chunk=16)

    def body():
        done = yield from core.dispatch_work(37)  # 16 + 16 + 5
        yield done

    run(sim, body())
    sim.run()
    assert core.instructions.total == 37


def test_work_chunks_execute_back_to_back_at_ipc():
    sim = Simulator()
    core = build(sim, ipc=2.0, chunk=10)

    def body():
        done = yield from core.dispatch_work(40)
        yield done
        return sim.now

    finished = run(sim, body())
    # Dispatch of the first chunk (10/4 = 2.5 -> 3 ns) + 40/2.0 = 20 ns.
    assert finished == pytest.approx(ns(23), abs=ns(2))


def test_multiple_dependencies_gate_first_chunk():
    sim = Simulator()
    core = build(sim)
    slow = sim.timeout(ns(300))
    slower = sim.timeout(ns(700))

    def body():
        done = yield from core.dispatch_work(16, deps=[slow, slower])
        yield done
        return sim.now

    # Execution starts at the LAST dependency.
    assert run(sim, body()) == ns(700 + 16)


def test_wait_data_on_already_completed_load_is_instant():
    sim = Simulator()
    core = build(sim)

    def body():
        token = yield from core.issue_load(0x40, AddressSpace.DEVICE)
        yield sim.timeout(ns(2000))  # let it complete
        before = sim.now
        yield from core.wait_data(token)
        return sim.now - before

    assert run(sim, body()) == 0


def test_independent_work_blocks_execute_concurrently():
    """Two dep-free blocks from the same front end overlap execution."""
    sim = Simulator()
    core = build(sim, ipc=1.0, chunk=64)

    def body():
        first = yield from core.dispatch_work(64)
        second = yield from core.dispatch_work(64)
        yield first
        yield second
        return sim.now

    finished = run(sim, body())
    # Serial execution would be 128 ns; overlap brings it near
    # 64 ns + dispatch time (2 x 16 ns).
    assert finished < ns(100)


def test_rob_caps_total_in_flight_instructions():
    sim = Simulator()
    core = build(sim, rob=32, chunk=8)
    gate = sim.event()

    def body():
        # Everything depends on the gate: dispatch must stop at 32.
        for _ in range(10):
            yield from core.dispatch_work(8, deps=[gate])
        return sim.now

    def opener():
        yield sim.timeout(ns(5000))
        gate.succeed(None)

    sim.process(opener())
    finished = run(sim, body())
    # Dispatching 80 instructions through a 32-entry ROB requires
    # waiting for the gate (at 5 us), not just front-end time.
    assert finished >= ns(5000)
    assert core.rob.max_used <= 32


def test_exception_during_dispatch_timeout_releases_front_end():
    """Regression: an exception thrown into a process waiting on the
    dispatch timeout must release the shared front end, or the SMT
    sibling deadlocks on a slot that never frees."""
    sim = Simulator()
    front_end = Resource(sim, 1, name="frontend")
    core = build(sim, front_end=front_end)

    victim = core._dispatch(ns(10))
    victim.send(None)  # acquires the slot, yields the (unfired) grant
    assert front_end.in_use == 1
    victim.send(None)  # past the grant, now waiting on the timeout
    with pytest.raises(RuntimeError):
        victim.throw(RuntimeError("context torn down"))
    assert front_end.in_use == 0

    # End to end: a sibling dispatch completes -- before the fix it
    # deadlocked, and sim.run(done) raised "ran out of events".
    def sibling():
        yield from core._dispatch(ns(5))

    sim.run(sim.process(sibling()))


def test_exception_while_awaiting_grant_releases_iff_granted():
    """The cleanup keys on grant.triggered: an uncontended acquire owns
    its slot before the grant event fires, a queued one owns nothing."""
    sim = Simulator()
    front_end = Resource(sim, 1, name="frontend")
    core = build(sim, front_end=front_end)

    owner = core._dispatch(ns(10))
    owner.send(None)  # slot granted immediately, grant not yet fired
    assert front_end.in_use == 1
    with pytest.raises(RuntimeError):
        owner.throw(RuntimeError("torn down while grant pending"))
    assert front_end.in_use == 0  # released: the slot was granted

    holder = core._dispatch(ns(10))
    holder.send(None)
    assert front_end.in_use == 1
    waiter = core._dispatch(ns(10))
    waiter.send(None)  # queued behind holder, no slot owned
    with pytest.raises(RuntimeError):
        waiter.throw(RuntimeError("torn down while queued"))
    # The holder's slot must not have been stolen by the dying waiter.
    assert front_end.in_use == 1


def test_work_counter_shared_across_cores():
    sim = Simulator()
    shared = Counter("work")
    shared.active = True
    cores = []
    for core_id in range(2):
        config = CpuConfig(frequency_ghz=1.0)
        uncore = Uncore(sim, UncoreConfig())
        uncore.attach_target(
            AddressSpace.DEVICE, FixedLatencyTarget(sim, ns(100))
        )
        memsys = CoreMemorySystem(
            sim, core_id, CacheConfig(), 10, uncore, config.frequency
        )
        cores.append(OutOfOrderCore(sim, core_id, config, memsys, shared))

    def worker(core):
        done = yield from core.dispatch_work(50)
        yield done

    for core in cores:
        sim.process(worker(core))
    sim.run()
    assert shared.total == 100
