"""Unit tests for the instrumentation probes."""

import pytest

from repro.sim.trace import (
    Counter,
    LatencyStat,
    ProbeSet,
    TimeWeighted,
    percentile_of_sorted,
)


def test_counter_windowing():
    counter = Counter("c")
    counter.add(5)
    counter.active = True
    counter.add(3)
    counter.add(2)
    counter.active = False
    counter.add(7)
    assert counter.total == 17
    assert counter.windowed == 5
    counter.reset_window()
    assert counter.windowed == 0


def test_time_weighted_mean_and_max():
    stat = TimeWeighted("util")
    stat.update(0, 1.0)
    stat.update(100, 0.0)
    assert stat.mean(200) == pytest.approx(0.5)
    assert stat.maximum == 1.0


def test_time_weighted_rejects_backwards_time():
    stat = TimeWeighted("util")
    stat.update(100, 1.0)
    with pytest.raises(ValueError):
        stat.update(50, 0.0)


def test_latency_stat_basic_moments():
    stat = LatencyStat("lat")
    for value in (10, 20, 30, 40):
        stat.record(value)
    assert stat.count == 4
    assert stat.minimum == 10
    assert stat.maximum == 40
    assert stat.mean == 25
    assert stat.percentile(0) == 10
    assert stat.percentile(100) == 40
    assert stat.percentile(50) == pytest.approx(25)


def test_latency_stat_empty():
    import math

    stat = LatencyStat("lat")
    assert math.isnan(stat.mean)
    assert math.isnan(stat.percentile(50))


def test_time_weighted_anchors_at_first_update():
    # Regression: a probe created mid-run must average over
    # [first update, now], not [0, now] -- dividing by t-from-zero
    # understated every mid-run mean.
    stat = TimeWeighted("util")
    stat.update(1_000, 1.0)
    stat.update(2_000, 0.0)
    # Busy 1000 of the 2000 observed ticks: mean 0.5, not 1000/3000.
    assert stat.mean(3_000) == pytest.approx(0.5)


def test_time_weighted_mean_before_any_update_is_zero():
    stat = TimeWeighted("util")
    assert stat.mean(500) == 0.0
    stat.update(100, 1.0)
    # Zero elapsed observed time is still well-defined.
    assert stat.mean(100) == 0.0


def test_latency_stat_subsample_keeps_phase():
    # Regression: after halving, the next retained sample must come
    # exactly one (new) stride after the just-kept one.  The old
    # ``count % stride`` test lost phase because the count at overflow
    # is odd (1 + MAX_SAMPLES), so whole strides of samples could be
    # skipped or doubled.
    stat = LatencyStat("lat")
    n = LatencyStat.MAX_SAMPLES + 1  # first overflow halves to stride 2
    for value in range(1, n + 1):
        stat.record(value)
    assert stat._stride == 2
    kept = len(stat._samples)
    before = list(stat._samples)
    # The very next recorded values land one new stride apart.
    stat.record(n + 1)
    assert len(stat._samples) == kept  # n+1 is off-stride: not kept
    stat.record(n + 2)
    assert len(stat._samples) == kept + 1 and stat._samples[-1] == n + 2
    # Retained samples stay evenly spaced (every ``stride`` values).
    assert before[1] - before[0] == stat._stride


def test_latency_stat_window_excludes_warmup():
    import math

    probes = ProbeSet()
    stat = probes.latency("lat")
    stat.record(1_000_000)  # warmup sample: huge, must not pollute
    probes.set_window_active(True)
    stat.record(10)
    stat.record(20)
    probes.set_window_active(False)
    stat.record(2_000_000)  # cooldown sample
    assert stat.count == 4
    assert stat.windowed_count == 2
    assert stat.windowed_mean == pytest.approx(15)
    probes.reset_windows()
    assert stat.windowed_count == 0
    assert math.isnan(stat.windowed_mean)


def test_latency_stat_subsamples_beyond_cap():
    stat = LatencyStat("lat")
    n = LatencyStat.MAX_SAMPLES * 2 + 100
    for value in range(n):
        stat.record(value)
    assert stat.count == n
    assert len(stat._samples) <= LatencyStat.MAX_SAMPLES + 1
    # Percentiles stay approximately right after subsampling.
    assert stat.percentile(50) == pytest.approx(n / 2, rel=0.02)
    assert stat.minimum == 0 and stat.maximum == n - 1


def test_probe_set_dedupes_by_name():
    probes = ProbeSet()
    assert probes.counter("a") is probes.counter("a")
    assert probes.latency("l") is probes.latency("l")
    assert probes.time_weighted("w") is probes.time_weighted("w")


def test_probe_set_window_toggle():
    probes = ProbeSet()
    first = probes.counter("x")
    second = probes.counter("y")
    probes.set_window_active(True)
    first.add(1)
    second.add(2)
    probes.set_window_active(False)
    first.add(1)
    assert first.windowed == 1 and second.windowed == 2
    probes.reset_windows()
    assert first.windowed == 0


def test_latency_stat_windowed_percentile_excludes_warmup():
    # Regression: percentile() used the lifetime reservoir even inside
    # a measurement window, so warmup outliers polluted every reported
    # tail (p99 of a 40us-warmup run could be a warmup-era sample).
    probes = ProbeSet()
    stat = probes.latency("lat")
    for _ in range(100):
        stat.record(1_000_000)  # warmup: pathological queueing
    probes.set_window_active(True)
    for value in range(1, 101):
        stat.record(value)
    probes.set_window_active(False)
    # Window-aware default: all quantiles come from windowed samples.
    assert stat.percentile(50) == pytest.approx(50.5)
    assert stat.percentile(99) <= 100
    assert stat.windowed_percentile(99) <= 100
    # The lifetime view still sees the warmup mass.
    assert stat.lifetime_percentile(99) == 1_000_000
    assert stat.maximum == 1_000_000
    assert stat.windowed_max == 100


def test_latency_stat_percentile_falls_back_to_lifetime():
    # With no window ever active, percentile() behaves as before.
    stat = LatencyStat("lat")
    for value in (10, 20, 30, 40):
        stat.record(value)
    assert stat.windowed_count == 0
    assert stat.percentile(50) == pytest.approx(25)
    import math

    assert math.isnan(stat.windowed_percentile(50))


def test_latency_stat_windowed_reservoir_subsamples():
    probes = ProbeSet()
    stat = probes.latency("lat")
    probes.set_window_active(True)
    n = LatencyStat.MAX_SAMPLES * 2 + 100
    for value in range(n):
        stat.record(value)
    probes.set_window_active(False)
    assert len(stat._windowed_samples) <= LatencyStat.MAX_SAMPLES + 1
    assert stat.percentile(50) == pytest.approx(n / 2, rel=0.02)


def test_latency_stat_window_reset_clears_reservoir():
    probes = ProbeSet()
    stat = probes.latency("lat")
    probes.set_window_active(True)
    stat.record(7)
    probes.set_window_active(False)
    assert stat.windowed_count == 1
    probes.reset_windows()
    assert stat.windowed_count == 0
    assert stat._windowed_samples == []
    # A fresh window starts sampling from its first observation.
    probes.set_window_active(True)
    stat.record(42)
    probes.set_window_active(False)
    assert stat.percentile(50) == 42


def test_latency_stat_jitter_is_windowed_stddev():
    import statistics

    probes = ProbeSet()
    stat = probes.latency("lat")
    stat.record(10_000)  # warmup noise must not enter jitter
    probes.set_window_active(True)
    values = [10, 20, 30, 40, 50]
    for value in values:
        stat.record(value)
    probes.set_window_active(False)
    assert stat.jitter == pytest.approx(statistics.pstdev(values))
    # Without a window, jitter falls back to the lifetime population.
    lifetime = LatencyStat("lat2")
    for value in values:
        lifetime.record(value)
    assert lifetime.jitter == pytest.approx(statistics.pstdev(values))


def test_percentile_of_sorted_reference():
    import math

    assert math.isnan(percentile_of_sorted([], 50))
    assert percentile_of_sorted([5], 50) == 5
    assert percentile_of_sorted([1, 2, 3, 4], 50) == pytest.approx(2.5)
    assert percentile_of_sorted([1, 2, 3, 4], 0) == 1
    assert percentile_of_sorted([1, 2, 3, 4], 100) == 4


def test_percentile_of_sorted_clamps_out_of_range_p():
    ordered = [10, 20, 30]
    assert percentile_of_sorted(ordered, -5) == 10
    assert percentile_of_sorted(ordered, 0) == 10
    assert percentile_of_sorted(ordered, 100) == 30
    assert percentile_of_sorted(ordered, 250) == 30


def test_percentile_of_sorted_interpolates_between_neighbours():
    ordered = [0, 100]
    assert percentile_of_sorted(ordered, 25) == pytest.approx(25.0)
    assert percentile_of_sorted(ordered, 99.9) == pytest.approx(99.9)
    # Ranks landing exactly on a sample return it un-interpolated.
    assert percentile_of_sorted([1, 2, 3], 50) == 2.0


def test_percentile_of_sorted_single_sample_every_p():
    for p in (-1, 0, 37.5, 50, 99.9, 100, 1000):
        assert percentile_of_sorted([42], p) == 42.0


def test_percentile_of_sorted_returns_float_type():
    value = percentile_of_sorted([7], 50)
    assert isinstance(value, float) and value == 7.0


def test_latency_stat_percentile_empty_is_nan():
    import math

    stat = LatencyStat("empty")
    assert math.isnan(stat.percentile(50))
    assert math.isnan(stat.lifetime_percentile(99))
    assert math.isnan(stat.windowed_percentile(99))


def test_latency_stat_windowed_percentile_nan_before_window_samples():
    import math

    stat = LatencyStat("warming")
    stat.record(100)  # warmup only
    assert math.isnan(stat.windowed_percentile(50))
    # ...but the window-aware accessor falls back to lifetime.
    assert stat.percentile(50) == 100.0


def test_latency_stat_percentile_clamps_extreme_p():
    stat = LatencyStat("clamp")
    stat.active = True
    for value in (10, 20, 30, 40):
        stat.record(value)
    assert stat.percentile(-10) == 10.0
    assert stat.percentile(0) == 10.0
    assert stat.percentile(100) == 40.0
    assert stat.percentile(999) == 40.0


def test_latency_stat_switches_to_window_on_first_windowed_sample():
    stat = LatencyStat("switch")
    for _ in range(50):
        stat.record(1_000_000)  # warmup pollution
    stat.active = True
    stat.record(10)
    # One windowed observation flips every percentile to the window.
    assert stat.percentile(50) == 10.0
    assert stat.percentile(99.9) == 10.0
    assert stat.lifetime_percentile(50) == 1_000_000.0
